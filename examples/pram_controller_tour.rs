//! A guided tour of the PRAM subsystem: three-phase addressing, phase
//! skipping, the overlay-window write path, scheduler effects and the
//! boot-time initializer — §II/§III-B/§V of the paper, live.
//!
//! ```sh
//! cargo run --release --example pram_controller_tour
//! ```

use pram::overlay::regs;
use pram::{BufferId, BurstLen, PramModule, PramTiming, RowId};
use pram_ctrl::{Phy, PhyParams, PramController, SchedulerKind, SubsystemConfig};
use sim_core::{MemoryBackend, Picos};

fn main() {
    let timing = PramTiming::table2();
    println!("== Table II characterized parameters ==");
    println!(
        "tCK = {}, RL = {}, WL = {}, tRP = {}",
        timing.tck(),
        timing.rl(),
        timing.wl(),
        timing.trp()
    );
    println!(
        "tRCD = {}, tWRA = {}, tBURST(BL16) = {}",
        timing.trcd,
        timing.twra,
        timing.tburst(BurstLen::Bl16)
    );
    println!(
        "program: SET-only {}, overwrite {}, erase {}",
        timing.t_program_set,
        timing.t_program_overwrite(),
        timing.t_erase
    );

    // -- Boot: the initializer brings 32 modules up through the PHY.
    let phy = Phy::new(PhyParams::default());
    let boot = phy.boot(Picos::ZERO, 32, &timing);
    println!("\n== Initializer ==\n32 modules ready at {}", boot.ready_at);

    // -- Three-phase addressing on a bare module.
    let mut module = PramModule::new(timing, 7);
    let row = RowId::new(3, 1000);
    let lb = module.geometry().lower_row_bits;
    println!("\n== Three-phase read of {row} ==");
    let pre = module.pre_active(Picos::ZERO, BufferId::B3, row.upper(lb));
    println!(
        "pre-active : {} -> {} (latch upper row in RAB)",
        pre.start, pre.end
    );
    let act = module.activate(pre.end, BufferId::B3, row.lower(lb));
    println!(
        "activate   : {} -> {} (sense row into RDB)",
        act.start, act.end
    );
    let (rd, data) = module.read_burst(act.end, Picos::ZERO, BufferId::B3, 0, BurstLen::Bl16);
    println!(
        "read burst : {} -> {} ({} bytes)",
        rd.start,
        rd.end,
        data.len()
    );

    // -- The overlay-window write path (§V-B register sequence).
    println!("\n== Overlay-window write ==");
    let addr = module.geometry().encode(row);
    let t = module.write_overlay(rd.end, regs::COMMAND_CODE, &[0xE9]);
    let t = module.write_overlay(t.end, regs::DATA_ADDRESS, &addr.to_le_bytes());
    let t = module.write_overlay(t.end, regs::MULTI_PURPOSE, &[32]);
    let t = module.write_overlay(t.end, regs::PROGRAM_BUFFER, &[0xAB; 32]);
    let prog = module.execute_program(t.end);
    println!(
        "registers staged by {}, array program {} -> {} ({})",
        t.end,
        prog.start,
        prog.end,
        prog.duration()
    );
    println!("stored word now reads {:02x?}…", &module.peek(row)[..4]);

    // -- Phase skipping and scheduler effects through the controller.
    println!("\n== Controller streams, 64 KiB sequential read ==");
    for sched in SchedulerKind::ALL {
        let mut ctrl = PramController::new(SubsystemConfig::paper(sched, 7));
        let mut t = Picos::ZERO;
        for i in 0..128u64 {
            t = ctrl.read(t, i * 512, 512).end;
        }
        let s = ctrl.stats();
        println!(
            "{:<18} done at {:>10}  pre-active skips {:>4}  activate skips {:>4}",
            sched.label(),
            format!("{t}"),
            s.pre_active_skips,
            s.activate_skips
        );
    }

    // -- Selective erasing: announced overwrites become SET-only.
    println!("\n== Selective erasing ==");
    let mut ctrl = PramController::new(SubsystemConfig::paper(SchedulerKind::Final, 7));
    let w = ctrl.write(Picos::ZERO, 0, 512);
    let targets: Vec<u64> = (0..512).step_by(32).collect();
    ctrl.announce_overwrites(w.end, &targets);
    let t = w.end + Picos::from_ms(1); // idle window for background RESETs
    let w2 = ctrl.write(t, 0, 512);
    println!(
        "overwrite of 512 B accepted in {} with {} background pre-erase hits",
        w2.end - t,
        ctrl.stats().preerase_hits
    );
}
