//! Deterministic record/replay: checkpoint a run, resume it mid-cell.
//!
//! Records a faulted DRAM-less cell with a tight checkpoint cadence,
//! then (1) replays a window `[A..B)` of the backend-request stream
//! from the nearest checkpoint, (2) resumes mid-cell and runs to
//! completion — proving the resumed run lands on the exact report
//! bytes of the straight run — and (3) shows that a tampered
//! checkpoint is rejected loudly instead of replaying to a silently
//! different answer.
//!
//! The same flows are available from the CLI:
//! `dramless-sim record --out run.json` /
//! `dramless-sim replay run.json --window A..B`.
//!
//! Run with: `cargo run --release -p dramless --example record_replay`

use dramless::replay::{self, ReplayError};
use dramless::{FaultPlan, SystemId, SystemKind, SystemParams};
use util::json::ToJson;
use workloads::{Kernel, Scale, Workload};

fn main() {
    let params = SystemParams::default();
    let w = Workload::of(Kernel::Gemver, Scale(0.25));
    let mut spec = SystemKind::DramLess.spec();
    spec.faults = Some(FaultPlan::seeded(7));

    // Record: run the cell once, emitting a checkpoint (cursor +
    // backend state images) every 40 backend requests and a
    // fingerprint over the schedule, the request stream and the
    // final report.
    let rec = replay::record_cell(
        SystemId::Preset(SystemKind::DramLess),
        &spec,
        &w,
        &params,
        40,
    )
    .expect("record");
    let fp = rec.fingerprint;
    println!(
        "recorded {}: {} requests, {} checkpoints",
        rec.outcome.kernel.label(),
        fp.requests,
        rec.checkpoints.len()
    );
    println!(
        "  fingerprint: schedule={:#018x} stream={:#018x} report={:#018x}",
        fp.schedule, fp.stream, fp.report
    );
    if let Some(d) = &rec.outcome.degraded {
        println!("  faults: {}", d.to_json_string());
    }

    // Window replay: restore the nearest checkpoint at or before the
    // window start and re-execute through the end, re-verifying every
    // recorded checkpoint crossed on the way.
    let mid = rec.checkpoints[rec.checkpoints.len() / 2].requests;
    let rep = replay::replay_window(&rec, &params, mid..(mid + 60)).expect("window replay");
    println!(
        "window {mid}..{}: resumed at request {}, replayed to {}, re-verified {} checkpoint(s)",
        mid + 60,
        rep.resumed_at,
        rep.replayed_to,
        rep.verified_checkpoints
    );

    // Mid-cell resume to completion: the replay layer checks the final
    // stream digest and the report fingerprint — byte identity with
    // the straight run, faults included.
    let rep = replay::replay_window(&rec, &params, mid..u64::MAX).expect("resume");
    assert!(rep.completed);
    println!(
        "resume from request {mid}: ran to completion, report fingerprint re-verified ({:#018x})",
        fp.report
    );

    // Divergence is loud: flip one bit of a recorded stream digest and
    // a replay that crosses the tampered checkpoint refuses instead of
    // producing wrong bytes.
    let mut tampered = rec.clone();
    tampered.checkpoints[1].stream ^= 1;
    match replay::replay_window(&tampered, &params, 0..u64::MAX) {
        Err(ReplayError::Divergence { at_requests, .. }) => {
            println!("tampered checkpoint rejected at request {at_requests} (divergence)");
        }
        Err(e) => panic!("tampering must surface as divergence, got: {e}"),
        Ok(_) => panic!("tampering slipped through"),
    }
}
