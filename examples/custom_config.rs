//! Composing a system Table I never built.
//!
//! The paper evaluates twelve points of an architecture space whose
//! axes — storage medium, datapath, buffering, control — are
//! orthogonal. This example composes two off-table points with
//! [`SystemSpec`], round-trips one through JSON (exactly what
//! `dramless-sim --spec file.json` does), runs a kernel on each, and
//! compares them against the nearest Table I presets.
//!
//! Run with: `cargo run --release -p dramless --example custom_config`

use dramless::{
    simulate, simulate_spec, Buffer, Control, Datapath, Medium, SystemKind, SystemParams,
    SystemSpec,
};
use flash::CellKind;
use pram_ctrl::SchedulerKind;
use util::json::{FromJson, ToJson};
use workloads::{Kernel, Scale, Workload};

fn main() {
    let params = SystemParams::default();
    let w = Workload::of(Kernel::Gemver, Scale(0.5));

    // Off-table point 1: Heterodirect's P2P-DMA staging path, but with
    // a cheaper TLC-flash SSD behind it.
    let tlc_p2p = SystemSpec {
        name: Some("tlc-heterodirect".into()),
        medium: Medium::FlashSsd {
            cell: CellKind::Tlc,
        },
        datapath: Datapath::P2pDma,
        buffer: Buffer::DramPageCache { frames: None },
        control: Control::HardwareAutomated {
            scheduler: SchedulerKind::Final,
        },
        telemetry: None,
        faults: None,
        tier: Default::default(),
    };

    // Off-table point 2: a PALP-style staged PRAM — the 3x-nm sample as
    // an external device over P2P DMA, scheduled with Interleaving only.
    let staged_pram = SystemSpec {
        name: Some("palp-staged-pram".into()),
        medium: Medium::Pram3x,
        datapath: Datapath::P2pDma,
        buffer: Buffer::DramPageCache { frames: None },
        control: Control::HardwareAutomated {
            scheduler: SchedulerKind::Interleaving,
        },
        telemetry: None,
        faults: None,
        tier: Default::default(),
    };

    // Specs are plain data: serialize, reparse, and the reparsed spec
    // is what actually runs — the same path `--spec file.json` takes.
    let wire = tlc_p2p.to_json_pretty();
    println!("spec as JSON (what dramless-sim --spec consumes):\n{wire}\n");
    let tlc_p2p = SystemSpec::from_json_str(&wire).expect("spec round-trips");

    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "system", "bandwidth", "total time", "energy"
    );
    let mut rows = Vec::new();
    for spec in [&tlc_p2p, &staged_pram] {
        let out = simulate_spec(spec, &w, &params).expect("spec composes");
        assert!(
            out.bandwidth().is_finite() && out.bandwidth() > 0.0,
            "{} produced a degenerate bandwidth",
            spec.display_name()
        );
        rows.push((spec.display_name(), out.bandwidth()));
        println!(
            "{:<22} {:>8.1} MB/s {:>12} {:>10}",
            out.system.name(),
            out.bandwidth() / 1e6,
            format!("{}", out.total_time),
            format!("{}", out.total_energy())
        );
    }
    for kind in [SystemKind::Heterodirect, SystemKind::DramLess] {
        let out = simulate(kind, &w, &params);
        println!(
            "{:<22} {:>8.1} MB/s {:>12} {:>10}   (Table I preset)",
            kind.label(),
            out.bandwidth() / 1e6,
            format!("{}", out.total_time),
            format!("{}", out.total_energy())
        );
    }

    println!(
        "\nboth custom points ran end-to-end: {} at {:.1} MB/s, {} at {:.1} MB/s",
        rows[0].0,
        rows[0].1 / 1e6,
        rows[1].0,
        rows[1].1 / 1e6
    );
}
