//! Quickstart: run one kernel on the DRAM-less accelerator and a
//! conventional heterogeneous system, and compare them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dramless::{simulate, SystemKind, SystemParams};
use workloads::{Kernel, Scale, Workload};

fn main() {
    // A read-intensive Polybench kernel at the default evaluation scale.
    let workload = Workload::of(Kernel::Gemver, Scale::from_env());
    let params = SystemParams::default();

    println!("kernel: {} (n = {})", workload.kernel, workload.n);
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "system", "total time", "bandwidth", "energy", "IPC"
    );

    for kind in [
        SystemKind::Hetero,
        SystemKind::Heterodirect,
        SystemKind::IntegratedSlc,
        SystemKind::PageBuffer,
        SystemKind::DramLessFirmware,
        SystemKind::DramLess,
        SystemKind::Ideal,
    ] {
        let out = simulate(kind, &workload, &params);
        println!(
            "{:<22} {:>12} {:>9.1} MB/s {:>12} {:>10.3}",
            kind.label(),
            format!("{}", out.total_time),
            out.bandwidth() / 1e6,
            format!("{}", out.total_energy()),
            out.total_ipc()
        );
    }

    println!();
    println!("The proposed DRAM-less design reads its inputs directly from the");
    println!("accelerator-internal PRAM over load/store, so it avoids both the");
    println!("host storage stack (Hetero) and whole-page staging (Integrated/");
    println!("PAGE-buffer), at a fraction of the heterogeneous systems' energy.");
}
