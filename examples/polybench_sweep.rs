//! Sweep the full 15-kernel Polybench-derived suite across every
//! evaluated system configuration and print a Fig. 15-style normalized
//! bandwidth table, plus the Table III workload characteristics.
//!
//! ```sh
//! cargo run --release --example polybench_sweep
//! DRAMLESS_SCALE=1.5 cargo run --release --example polybench_sweep
//! ```

use dramless::{run_suite, SystemKind, SystemParams};
use workloads::{Scale, Workload};

fn main() {
    let scale = Scale::from_env();
    let suite = Workload::suite(scale);
    let params = SystemParams::default();

    println!(
        "building traces and simulating {} kernels x {} systems...",
        suite.len(),
        SystemKind::EVALUATED.len()
    );
    let r = run_suite(&SystemKind::EVALUATED, &suite, &params);

    // Table III-style characteristics.
    println!("\nworkload characteristics (Table III):");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>8}",
        "kernel", "footprint", "input", "output", "write%"
    );
    for w in &suite {
        let out = r
            .get(SystemKind::DramLess, w.kernel)
            .expect("outcome present");
        let _ = out;
        let c = w.build(params.agents).character;
        println!(
            "{:<10} {:>8}KB {:>8}KB {:>8}KB {:>7.1}%",
            w.kernel.label(),
            c.footprint / 1024,
            c.bytes_in / 1024,
            c.bytes_out / 1024,
            c.write_ratio * 100.0
        );
    }

    // Fig. 15-style normalized bandwidth.
    println!("\nbandwidth normalized to Hetero (Fig. 15):");
    print!("{:<10}", "kernel");
    for k in SystemKind::EVALUATED {
        print!(" {:>9}", &k.label()[..k.label().len().min(9)]);
    }
    println!();
    for w in &suite {
        print!("{:<10}", w.kernel.label());
        for k in SystemKind::EVALUATED {
            let norm = r
                .normalized_bandwidth(k, SystemKind::Hetero, w.kernel)
                .unwrap_or(f64::NAN);
            print!(" {norm:>8.2}x");
        }
        println!();
    }

    println!("\ngeometric means vs Hetero:");
    for k in SystemKind::EVALUATED {
        println!(
            "  {:<22} {:>6.2}x bandwidth, {:>6.2}x energy",
            k.label(),
            r.mean_normalized_bandwidth(k, SystemKind::Hetero),
            r.mean_relative_energy(k, SystemKind::Hetero)
        );
    }
}
