//! Multi-application execution (§IV), promoted to the fleet serving
//! path: two tenants share ONE DRAM-less accelerator, each firing its
//! own kernel mix through a seeded open-loop arrival process. The
//! per-tenant QoS rows show what sharing a resident PRAM image costs at
//! the tail — and the whole run is byte-deterministic from the seed.
//!
//! ```sh
//! cargo run --release --example multi_app
//! ```

use dramless::{run_fleet, ArrivalProcess, BalancerKind, ClassMix, FleetSpec};
use sim_core::time::Picos;
use util::json::ToJson;
use workloads::Kernel;

fn main() {
    // Two applications packed onto one accelerator: a solver tenant and
    // a stencil tenant, arrivals bursty enough that they collide.
    let spec = FleetSpec {
        name: Some("two-tenant-cell".into()),
        accelerators: 1,
        slots_per_accel: 2,
        balancer: BalancerKind::RoundRobin,
        tenants: 2,
        class_mix: ClassMix::default(),
        arrivals: ArrivalProcess::Bursty {
            base_per_s: 500.0,
            burst_per_s: 5_000.0,
            mean_burst_ms: 10.0,
            mean_calm_ms: 40.0,
        },
        kernels: vec![Kernel::Trisolv, Kernel::Jaco2d],
        requests: 600,
        ..FleetSpec::example()
    };
    let report = run_fleet(&spec).expect("the example cell serves");

    println!("two tenants on one resident PRAM image:");
    for t in &report.per_tenant {
        println!(
            "  tenant {} ({:<17}) {:>4} offered, {:>4} completed, \
             p50 {:>10}, p99.9 {:>10}",
            t.tenant,
            t.class.key(),
            t.offered,
            t.completed,
            format!("{}", Picos::from_ns(t.latency.quantile_ns(0.50))),
            format!("{}", Picos::from_ns(t.latency.quantile_ns(0.999)))
        );
    }
    println!(
        "\ncell completes at {} — {} request(s), {:.0} offered req/s",
        Picos::from_ps(report.makespan_ps),
        report.completed,
        report.offered_rate_per_s()
    );
    let accel = &report.accels[0];
    println!(
        "accelerator: busy {}, partition wait {}, {} erase window(s) ({} blocked)",
        Picos::from_ps(accel.busy_ps),
        Picos::from_ps(accel.partition_wait_ps),
        accel.erase_windows,
        Picos::from_ps(accel.erase_blocked_ps)
    );
    if let Some(worst) = report.top_request() {
        println!(
            "worst request: tenant {}, request {}, {} end to end",
            worst.tenant.expect("fleet entries carry their tenant"),
            worst.index,
            Picos::from_ps(worst.dur_ps)
        );
    }

    // The contracts the fleet path is built on, checked live: the QoS
    // ledger balances, and a re-run from the same seed is byte-equal.
    report.check_conservation().expect("conservation ledger");
    let rerun = run_fleet(&spec).expect("the example cell serves again");
    assert_eq!(report.to_json(), rerun.to_json());
    println!(
        "\nconservation holds; re-run from seed {} is byte-identical",
        spec.seed
    );
}
