//! Multi-application execution (§IV): one image carries several kernels;
//! the server dispatches each across the agents while everything stays
//! resident in the accelerator's PRAM — with the §VII controller
//! extensions (start-gap wear leveling + write pausing) switched on.
//!
//! ```sh
//! cargo run --release --example multi_app
//! ```

use accel::exec::{AccelConfig, Accelerator};
use pram_ctrl::{PramController, SchedulerKind, SubsystemConfig};
use sim_core::Picos;
use workloads::{Kernel, Scale, Workload};

fn main() {
    let accel = Accelerator::new(AccelConfig::default());
    let agents = accel.agents();

    // Three applications packed into one offload: a solver, a stencil
    // and a factorization, each split across the agents.
    let apps = [Kernel::Trisolv, Kernel::Jaco2d, Kernel::Lu];
    let jobs: Vec<_> = apps
        .iter()
        .map(|&k| Workload::of(k, Scale::small()).build(agents))
        .collect();

    // The DRAM-less platform with both §VII extensions enabled.
    let cfg = SubsystemConfig {
        write_pausing: true,
        wear_leveling: Some(128),
        ..SubsystemConfig::paper(SchedulerKind::Final, 7)
    };
    let mut pram = PramController::new(cfg);

    let traces: Vec<Vec<accel::Trace>> = jobs.iter().map(|b| b.traces.clone()).collect();
    let report = accel.run_jobs(Picos::ZERO, &traces, &mut pram);

    println!("three applications on one resident PRAM image:");
    for ((app, job), done) in apps.iter().zip(&report.reports).zip(&report.job_done) {
        println!(
            "  {:<8} {:>10} instructions, done at {:>10}, IPC {:.2}",
            app.label(),
            job.instructions,
            format!("{done}"),
            job.total_ipc()
        );
    }
    println!(
        "\nqueue completes at {} ({} instructions total)",
        report.total_time(),
        report.instructions()
    );
    let (max_row, rows) = pram.endurance();
    println!(
        "endurance: {} rows touched, hottest row programmed {} times, {} gap moves",
        rows,
        max_row,
        pram.stats().gap_moves
    );
    println!(
        "controller: {} pre-erase hits, {} RAB skips, {} RDB skips",
        pram.stats().preerase_hits,
        pram.stats().pre_active_skips,
        pram.stats().activate_skips
    );

    // Functional spot check: the kernels really computed.
    for (app, built) in apps.iter().zip(&jobs) {
        let reference = Workload::of(*app, Scale::small()).reference();
        assert_eq!(reference.checksum, built.run.checksum);
        println!(
            "  {} checksum verified: {:.6}",
            app.label(),
            built.run.checksum
        );
    }
}
