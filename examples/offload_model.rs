//! The kernel offload and execution model (Figures 9b and 10): pack a
//! multi-application image with `packData`, push it to the accelerator,
//! unpack it server-side and schedule agents through the PSC.
//!
//! ```sh
//! cargo run --release --example offload_model
//! ```

use accel::exec::{AccelConfig, Accelerator};
use accel::kernel::{KernelImage, Segment};
use accel::psc::{PowerSleepController, PscParams};
use host::PcieLink;
use pram_ctrl::{PramController, SchedulerKind, SubsystemConfig};
use sim_core::{MemoryBackend, Picos};
use util::bytes::Bytes;
use workloads::{Kernel, Scale, Workload};

fn main() {
    // -- packData: code segments for three applications + shared code.
    let image = KernelImage::pack(vec![
        Segment {
            name: "shared".into(),
            load_addr: 0x0000,
            entry: None,
            payload: Bytes::from(vec![0x4E; 2048]),
        },
        Segment {
            name: "app0".into(),
            load_addr: 0x1000,
            entry: Some(0x1000),
            payload: Bytes::from(vec![0xA0; 4096]),
        },
        Segment {
            name: "app1".into(),
            load_addr: 0x3000,
            entry: Some(0x3000),
            payload: Bytes::from(vec![0xA1; 4096]),
        },
    ]);
    let wire = image.to_bytes();
    println!(
        "packData: {} segments, {} payload bytes, {} on the wire",
        image.segments().len(),
        image.payload_bytes(),
        wire.len()
    );

    // -- pushData: DMA the image over PCIe, interrupt the server.
    let mut link = PcieLink::new(Default::default());
    let dma = link.dma(Picos::ZERO, wire.len() as u64);
    let irq = link.message(dma.end);
    println!(
        "pushData: image DMA done at {}, server interrupted at {}",
        dma.end, irq.end
    );

    // -- unpackData: the server parses metadata and loads each segment
    //    into the PRAM image space.
    let parsed = KernelImage::from_bytes(wire).expect("image parses");
    let mut pram = PramController::new(SubsystemConfig::paper(SchedulerKind::Final, 3));
    let mut t = irq.end;
    for seg in parsed.segments() {
        let a = pram.write(t, seg.load_addr, seg.payload.len() as u32);
        println!(
            "  load {:<8} -> {:#06x} ({} B), accepted at {}",
            seg.name,
            seg.load_addr,
            seg.payload.len(),
            a.end
        );
        t = a.end;
    }

    // -- PSC choreography: park, plant boot address, revoke.
    let mut psc = PowerSleepController::new(PscParams::default(), 8);
    println!(
        "\nPSC: scheduling {} executable segment(s) onto agents",
        parsed.executables().count()
    );
    for (i, seg) in parsed.executables().enumerate() {
        let agent = i + 1;
        let asleep = psc.sleep(t, agent);
        let awake = psc.wake(asleep, agent);
        println!(
            "  agent {agent}: boot address {:#06x} planted, awake at {awake}",
            seg.entry.expect("executable")
        );
        t = awake;
    }

    // -- Execute a real kernel on the woken agents.
    let accel = Accelerator::new(AccelConfig::default());
    let built = Workload::of(Kernel::Jaco2d, Scale::small()).build(accel.agents());
    let report = accel.run_at(t, &built.traces, &mut pram);
    println!(
        "\nexecution: {} instructions across {} agents in {}, total IPC {:.2}",
        report.instructions,
        built.traces.len(),
        report.total_time,
        report.total_ipc()
    );
    println!(
        "kernel result checksum {:.6} (matches reference: {})",
        built.run.checksum,
        (built.run.checksum
            - Workload::of(Kernel::Jaco2d, Scale::small())
                .reference()
                .checksum)
            .abs()
            < 1e-12
    );
}
