//! Start-gap wear leveling (§VII, "PRAM lifetime").
//!
//! The paper notes DRAM-less "can integrate traditional wear levellers in
//! our PRAM controller, such as start-gap, to improve the PRAM lifetime".
//! This module implements the start-gap algorithm of Qureshi et al.
//! (MICRO'09): the physical space holds one spare line (the *gap*); every
//! ψ writes the gap moves down one slot (copying one line), and once it
//! has swept the whole region the *start* pointer advances, so every
//! logical line slowly rotates over every physical line.
//!
//! The mapping is a bijection from the `n` logical lines onto the `n + 1`
//! physical slots minus the gap — property-tested in the repository's
//! `prop_invariants` suite as well as here.

/// A line copy the controller must perform because the gap moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapMove {
    /// Physical slot whose contents move…
    pub from: u64,
    /// …into this (previously gap) slot.
    pub to: u64,
}

util::json_struct!(GapMove { from, to });

/// Start-gap remapping state over `n` logical lines.
///
/// # Examples
///
/// ```
/// use pram_ctrl::wear::StartGap;
///
/// let mut sg = StartGap::new(8, 4); // 8 lines, gap moves every 4 writes
/// let before = sg.map(3);
/// for _ in 0..64 {
///     sg.on_write();
/// }
/// // After enough writes the line has physically moved.
/// assert_ne!(sg.map(3), before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartGap {
    lines: u64,
    /// Gap slot position in `0..=lines`.
    gap: u64,
    /// Rotation offset in `0..lines`.
    start: u64,
    writes_since_move: u64,
    interval: u64,
    total_moves: u64,
}

util::json_struct!(StartGap {
    lines,
    gap,
    start,
    writes_since_move,
    interval,
    total_moves
});

impl StartGap {
    /// Creates a leveler over `lines` logical lines, moving the gap every
    /// `interval` writes (ψ; Qureshi et al. use 100).
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `interval` is zero.
    pub fn new(lines: u64, interval: u64) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(interval > 0, "gap interval must be non-zero");
        StartGap {
            lines,
            gap: lines, // gap starts at the spare slot at the end
            start: 0,
            writes_since_move: 0,
            interval,
            total_moves: 0,
        }
    }

    /// Number of logical lines.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Number of physical slots (`lines + 1`).
    pub fn slots(&self) -> u64 {
        self.lines + 1
    }

    /// Total gap movements so far.
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    /// Maps a logical line to its current physical slot.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= lines`.
    pub fn map(&self, logical: u64) -> u64 {
        assert!(logical < self.lines, "logical line out of range");
        let rotated = (logical + self.start) % self.lines;
        if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        }
    }

    /// Records one write; if the gap interval elapses, moves the gap and
    /// returns the line copy the controller must perform.
    pub fn on_write(&mut self) -> Option<GapMove> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.interval {
            return None;
        }
        self.writes_since_move = 0;
        self.total_moves += 1;
        if self.gap == 0 {
            // Gap wrapped: advance the rotation and park the gap at the
            // spare slot again.
            self.start = (self.start + 1) % self.lines;
            self.gap = self.lines;
            // Moving the gap from slot 0 to the end: the line that maps
            // to the end slot (rotated == lines - 1 … now < gap) came
            // from slot 0's neighbourhood; physically this transition
            // copies nothing extra because slot 0 was the gap.
            None
        } else {
            let mv = GapMove {
                from: self.gap - 1,
                to: self.gap,
            };
            self.gap -= 1;
            Some(mv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_bijection(sg: &StartGap) {
        let mut seen = HashSet::new();
        for l in 0..sg.lines() {
            let p = sg.map(l);
            assert!(p < sg.slots(), "slot {p} out of range");
            assert_ne!(p, sg.gap, "line {l} mapped onto the gap");
            assert!(seen.insert(p), "collision at slot {p}");
        }
    }

    #[test]
    fn initial_mapping_is_identity() {
        let sg = StartGap::new(16, 4);
        for l in 0..16 {
            assert_eq!(sg.map(l), l);
        }
    }

    #[test]
    fn mapping_stays_bijective_across_many_moves() {
        let mut sg = StartGap::new(13, 3);
        for step in 0..1000 {
            sg.on_write();
            assert_bijection(&sg);
            let _ = step;
        }
    }

    #[test]
    fn gap_moves_every_interval_writes() {
        let mut sg = StartGap::new(8, 5);
        for _ in 0..4 {
            assert!(sg.on_write().is_none());
        }
        // Fifth write moves the gap.
        let mv = sg.on_write().unwrap();
        assert_eq!(mv, GapMove { from: 7, to: 8 });
        assert_eq!(sg.total_moves(), 1);
    }

    #[test]
    fn full_sweep_advances_start() {
        let n = 6u64;
        let mut sg = StartGap::new(n, 1);
        // n moves bring the gap to slot 0; one more wraps and bumps start.
        for _ in 0..n {
            sg.on_write();
        }
        assert_eq!(sg.gap, 0);
        sg.on_write();
        assert_eq!(sg.start, 1);
        assert_eq!(sg.gap, n);
        assert_bijection(&sg);
    }

    #[test]
    fn every_line_eventually_visits_every_slot() {
        let n = 5u64;
        let mut sg = StartGap::new(n, 1);
        let mut visited: Vec<HashSet<u64>> = vec![HashSet::new(); n as usize];
        for _ in 0..((n + 1) * (n + 1) * 2) {
            for l in 0..n {
                visited[l as usize].insert(sg.map(l));
            }
            sg.on_write();
        }
        for (l, slots) in visited.iter().enumerate() {
            assert!(
                slots.len() as u64 >= n,
                "line {l} only visited {} slots",
                slots.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "logical line out of range")]
    fn out_of_range_rejected() {
        StartGap::new(4, 1).map(4);
    }
}

#[cfg(test)]
mod endurance_tests {
    use super::*;

    /// A hot logical line's writes spread across physical slots as the
    /// gap sweeps — the §VII lifetime mechanism in miniature.
    #[test]
    fn hot_line_wear_spreads_over_slots() {
        let lines = 8u64;
        let mut sg = StartGap::new(lines, 1);
        let mut slot_writes = vec![0u64; sg.slots() as usize];
        // Hammer one logical line while the gap sweeps aggressively.
        for _ in 0..((lines + 1) * lines * 4) {
            slot_writes[sg.map(3) as usize] += 1;
            sg.on_write();
        }
        let touched = slot_writes.iter().filter(|&&w| w > 0).count();
        assert!(
            touched as u64 >= lines,
            "hot line should visit most slots, touched {touched}"
        );
        let max = *slot_writes.iter().max().expect("slots");
        let total: u64 = slot_writes.iter().sum();
        // Without leveling, max == total; with it, the hottest slot holds
        // only a fraction.
        assert!(
            max * 3 < total,
            "wear not spread: max {max} of total {total}"
        );
    }
}
