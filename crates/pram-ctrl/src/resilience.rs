//! Controller-side resilience: ECC classification, bounded
//! retry-with-backoff, and line retirement onto reserved spares.
//!
//! These are the mechanisms that absorb the faults a
//! [`sim_core::fault::FaultPlan`] injects. The contract, verified by the
//! chaos test tier, is that no injected fault escapes as a wrong result:
//! correctable errors are fixed in place by [`EccModel`], uncorrectable
//! ones pay a bounded [`RetryPolicy`] latency, and lines that keep
//! failing are remapped by [`RetireMap`] onto factory-reserved spare
//! lines — after which the access still succeeds.

use sim_core::time::Picos;
use std::collections::HashMap;

/// ECC classification of a word read carrying `flips` bit errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No bit errors.
    Clean,
    /// Correctable: fixed in place, data is good.
    Corrected(u32),
    /// Beyond symbol strength: data cannot be trusted, re-read required.
    Uncorrectable(u32),
}

/// A symbol-strength ECC model: up to `strength` bit errors per word are
/// corrected, more are flagged uncorrectable. Strength zero means
/// detect-only (every flip is uncorrectable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccModel {
    /// Maximum correctable bit errors per word.
    pub strength: u32,
}

util::json_struct!(EccModel { strength });

impl EccModel {
    /// Creates a model correcting up to `strength` bit flips per word.
    pub fn new(strength: u32) -> Self {
        EccModel { strength }
    }

    /// Classifies a word read carrying `flips` bit errors.
    ///
    /// Never "corrects" more flips than the configured strength: for any
    /// `flips > strength` the outcome is [`EccOutcome::Uncorrectable`].
    pub fn classify(&self, flips: u32) -> EccOutcome {
        if flips == 0 {
            EccOutcome::Clean
        } else if flips <= self.strength {
            EccOutcome::Corrected(flips)
        } else {
            EccOutcome::Uncorrectable(flips)
        }
    }
}

/// Bounded retry-with-backoff for uncorrectable reads and failed
/// programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry attempts before the line is declared failing.
    pub max_retries: u32,
    /// Base backoff; attempt `n` (0-based) waits `backoff << n`, with
    /// the shift capped at [`RetryPolicy::MAX_DOUBLINGS`].
    pub backoff: Picos,
}

util::json_struct!(RetryPolicy {
    max_retries,
    backoff
});

impl RetryPolicy {
    /// Exponential-backoff doublings are capped here so the wait stays
    /// bounded even for generous retry budgets.
    pub const MAX_DOUBLINGS: u32 = 8;

    /// Creates a policy of `max_retries` attempts with base `backoff`.
    pub fn new(max_retries: u32, backoff: Picos) -> Self {
        RetryPolicy {
            max_retries,
            backoff,
        }
    }

    /// The backoff wait before 0-based attempt `attempt`.
    pub fn backoff_for(&self, attempt: u32) -> Picos {
        self.backoff * (1u64 << attempt.min(Self::MAX_DOUBLINGS))
    }

    /// Upper bound on the total backoff any single request can accrue:
    /// the sum of every per-attempt wait. Retry loops terminate within
    /// `max_retries` attempts and this much accumulated backoff.
    pub fn total_backoff_bound(&self) -> Picos {
        (0..self.max_retries).map(|a| self.backoff_for(a)).sum()
    }
}

/// Logical line retirement onto spares reserved at the top of a
/// module's line space.
///
/// The remap applies *before* start-gap wear leveling, so a retired
/// line's replacement still participates in rotation. Spares are
/// allocated descending from the top of the usable line space and each
/// is used at most once, which keeps the composed
/// `retire ∘ start-gap` mapping injective by construction (the spare
/// region is factory-reserved: host traffic is assumed to stay below
/// it, as every workload in this repository does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetireMap {
    /// Usable line count (spares included at the top).
    lines: u64,
    /// First line of the reserved spare region.
    spare_base: u64,
    /// Next spare to hand out, descending from `lines - 1`.
    next_spare: u64,
    /// Active remaps: failing logical line → spare line.
    remap: HashMap<u64, u64>,
    retired: u64,
}

util::json_struct!(RetireMap {
    lines,
    spare_base,
    next_spare,
    remap,
    retired
});

impl RetireMap {
    /// Creates a map over `lines` lines with the top `spares` reserved.
    /// `spares` is clamped so at least one addressable line remains.
    pub fn new(lines: u64, spares: u64) -> Self {
        let spares = spares.min(lines.saturating_sub(1));
        RetireMap {
            lines,
            spare_base: lines - spares,
            next_spare: lines.saturating_sub(1),
            remap: HashMap::new(),
            retired: 0,
        }
    }

    /// The line the controller should actually address for `line`.
    pub fn resolve(&self, line: u64) -> u64 {
        self.remap.get(&line).copied().unwrap_or(line)
    }

    /// True if `line` falls in the reserved spare region.
    pub fn is_spare(&self, line: u64) -> bool {
        line >= self.spare_base
    }

    /// Retires `line`, remapping it to a fresh spare. Returns the spare,
    /// or `None` when spares are exhausted or `line` is itself in the
    /// spare region (the line then stays in service, paying the retry
    /// penalty on every access).
    pub fn retire(&mut self, line: u64) -> Option<u64> {
        if self.is_spare(line) || self.next_spare < self.spare_base {
            return None;
        }
        let spare = self.next_spare;
        self.next_spare = self.next_spare.wrapping_sub(1);
        self.remap.insert(line, spare);
        self.retired += 1;
        Some(spare)
    }

    /// Lines retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Spares still available.
    pub fn spares_left(&self) -> u64 {
        self.next_spare
            .wrapping_sub(self.spare_base)
            .wrapping_add(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ecc_classifies_by_strength() {
        let ecc = EccModel::new(2);
        assert_eq!(ecc.classify(0), EccOutcome::Clean);
        assert_eq!(ecc.classify(1), EccOutcome::Corrected(1));
        assert_eq!(ecc.classify(2), EccOutcome::Corrected(2));
        assert_eq!(ecc.classify(3), EccOutcome::Uncorrectable(3));
        // Detect-only: nothing is correctable.
        assert_eq!(EccModel::new(0).classify(1), EccOutcome::Uncorrectable(1));
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::new(20, Picos::from_ns(10));
        assert_eq!(p.backoff_for(0), Picos::from_ns(10));
        assert_eq!(p.backoff_for(1), Picos::from_ns(20));
        assert_eq!(p.backoff_for(3), Picos::from_ns(80));
        // Capped at MAX_DOUBLINGS.
        assert_eq!(p.backoff_for(12), p.backoff_for(RetryPolicy::MAX_DOUBLINGS));
        // The bound really bounds every partial sum.
        let total: Picos = (0..p.max_retries).map(|a| p.backoff_for(a)).sum();
        assert_eq!(total, p.total_backoff_bound());
    }

    #[test]
    fn retire_hands_out_distinct_spares() {
        let mut m = RetireMap::new(100, 4);
        assert_eq!(m.resolve(7), 7);
        let mut spares = HashSet::new();
        for line in [7, 20, 33, 41] {
            let s = m.retire(line).expect("spare available");
            assert!(m.is_spare(s));
            assert!(spares.insert(s), "spare reused");
            assert_eq!(m.resolve(line), s);
        }
        assert_eq!(m.retired(), 4);
        assert_eq!(m.spares_left(), 0);
        assert_eq!(m.retire(50), None, "spares exhausted");
    }

    #[test]
    fn spare_region_lines_are_never_retired() {
        let mut m = RetireMap::new(10, 3);
        assert!(m.is_spare(9) && m.is_spare(7) && !m.is_spare(6));
        assert_eq!(m.retire(8), None);
        assert_eq!(m.retired(), 0);
    }

    #[test]
    fn re_retirement_replaces_the_remap() {
        let mut m = RetireMap::new(50, 8);
        let s1 = m.retire(3).unwrap();
        let s2 = m.retire(3).unwrap();
        assert_ne!(s1, s2);
        assert_eq!(m.resolve(3), s2);
    }

    #[test]
    fn resolve_stays_injective_over_the_addressable_region() {
        let mut m = RetireMap::new(64, 16);
        for line in [0, 5, 9, 13, 21, 40] {
            m.retire(line);
        }
        let mut seen = HashSet::new();
        for line in 0..m.spare_base {
            assert!(seen.insert(m.resolve(line)), "collision at {line}");
        }
    }
}
