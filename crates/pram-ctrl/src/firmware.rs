//! The firmware-managed baseline ("DRAM-less (firmware)", Figs. 7 & 15).
//!
//! §VI: "'DRAM-less (firmware)' … replaces the hardware automated memory
//! control logic with traditional SSD firmware, used in block storage
//! devices. The SSD firmware is implemented on a 3-core 500 MHz embedded
//! ARM CPU, similar to the controllers of commercial SSDs."
//!
//! §III-B observes that "the conventional firmware can take longer
//! execution time than PRAM access latency" and that requests "have to be
//! serially processed by the traditional firmware, which suffers from
//! long delay". [`FirmwareController`] models exactly that: every request
//! first executes a firmware handler on one of the embedded cores (FTL
//! lookup, request parsing, completion bookkeeping), then flows through
//! the same PRAM datapath as the hardware-automated controller.

use crate::controller::PramController;
use sim_core::energy::{EnergyBook, Watts};
use sim_core::fault::FaultCounters;
use sim_core::mem::{Access, MemoryBackend};
use sim_core::probe::Probe;
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::time::{Freq, Picos};
use sim_core::timeline::TimelineBank;
use util::telemetry::MetricSet;

/// Firmware execution-cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirmwareParams {
    /// Embedded cores available to run request handlers.
    pub cores: usize,
    /// Core clock.
    pub clock: Freq,
    /// Instructions executed per read request (parse, map, issue,
    /// complete).
    pub instructions_per_read: u64,
    /// Instructions per write request (adds buffer management and
    /// wear-accounting work).
    pub instructions_per_write: u64,
    /// Active power of one busy core.
    pub core_power: Watts,
}

util::json_struct!(FirmwareParams {
    cores,
    clock,
    instructions_per_read,
    instructions_per_write,
    core_power,
});

impl Default for FirmwareParams {
    fn default() -> Self {
        FirmwareParams {
            cores: 3,
            clock: Freq::from_mhz(500),
            instructions_per_read: 750,
            instructions_per_write: 1_100,
            core_power: Watts::from_mw(450.0),
        }
    }
}

impl FirmwareParams {
    /// Firmware service time of one read request.
    pub fn read_exec(&self) -> Picos {
        self.clock.cycles_to_time(self.instructions_per_read)
    }

    /// Firmware service time of one write request.
    pub fn write_exec(&self) -> Picos {
        self.clock.cycles_to_time(self.instructions_per_write)
    }
}

/// The same PRAM subsystem fronted by SSD-style firmware.
#[derive(Debug, Clone)]
pub struct FirmwareController {
    inner: PramController,
    params: FirmwareParams,
    cores: TimelineBank,
    energy: EnergyBook,
    requests: u64,
}

impl FirmwareController {
    /// Wraps a PRAM controller behind the firmware cores.
    pub fn new(inner: PramController, params: FirmwareParams) -> Self {
        FirmwareController {
            cores: TimelineBank::new(params.cores),
            inner,
            params,
            energy: EnergyBook::new(),
            requests: 0,
        }
    }

    /// The parameters in effect.
    pub fn params(&self) -> &FirmwareParams {
        &self.params
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The wrapped hardware datapath (for stats inspection).
    pub fn inner(&self) -> &PramController {
        &self.inner
    }

    /// Dispatches the firmware handler on the earliest-free core.
    fn run_handler(&mut self, at: Picos, exec: Picos) -> Picos {
        let core = self.cores.first_free(at);
        let start = self.cores.get_mut(core).reserve(at, exec);
        self.energy
            .charge_power("fw.cpu", self.params.core_power, exec);
        self.requests += 1;
        start + exec
    }
}

/// Image tag for [`FirmwareController`] snapshots.
const FW_KIND: &str = "pram-ctrl/firmware";
/// Schema version of [`FW_KIND`] images.
const FW_VERSION: u32 = 1;

impl sim_core::Snapshot for FirmwareController {
    fn snapshot(&self) -> StateImage {
        use util::json::ToJson;
        let data = util::json::Json::Obj(vec![
            (
                "inner".to_string(),
                sim_core::Snapshot::snapshot(&self.inner).to_json(),
            ),
            ("params".to_string(), self.params.to_json()),
            ("cores".to_string(), self.cores.to_json()),
            ("energy".to_string(), self.energy.to_json()),
            ("requests".to_string(), self.requests.to_json()),
        ]);
        StateImage::new(FW_KIND, FW_VERSION, data)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        use util::json::field;
        let data = image.expect(FW_KIND, FW_VERSION)?;
        let m = |e| SnapshotError::malformed(FW_KIND, e);
        let inner_img: StateImage = field(data, "inner").map_err(m)?;
        self.inner.restore(&inner_img)?;
        self.params = field(data, "params").map_err(m)?;
        self.cores = field(data, "cores").map_err(m)?;
        self.energy = field(data, "energy").map_err(m)?;
        self.requests = field(data, "requests").map_err(m)?;
        Ok(())
    }
}

impl MemoryBackend for FirmwareController {
    fn read(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        let fw_done = self.run_handler(at, self.params.read_exec());
        let a = self.inner.read(fw_done, addr, len);
        Access {
            start: at,
            end: a.end,
        }
    }

    fn write(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        let fw_done = self.run_handler(at, self.params.write_exec());
        let a = self.inner.write(fw_done, addr, len);
        Access {
            start: at,
            end: a.end,
        }
    }

    fn announce_overwrites(&mut self, at: Picos, addrs: &[u64]) {
        self.inner.announce_overwrites(at, addrs);
    }

    fn energy(&self) -> EnergyBook {
        let mut book = self.energy.clone();
        book.merge(&self.inner.energy());
        book
    }

    fn label(&self) -> &'static str {
        "pram-ctrl/firmware"
    }

    fn set_probe(&mut self, probe: Probe) {
        self.inner.set_probe(probe);
    }

    fn collect_metrics(&self, out: &mut MetricSet) {
        out.add("fw.requests", self.requests);
        self.inner.collect_metrics(out);
    }

    fn collect_faults(&self, out: &mut FaultCounters) {
        self.inner.collect_faults(out);
    }

    fn snapshot_state(&self) -> Result<StateImage, SnapshotError> {
        Ok(sim_core::Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        sim_core::Snapshot::restore(self, image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::SubsystemConfig;
    use crate::sched::SchedulerKind;

    fn fw() -> FirmwareController {
        let inner = PramController::new(SubsystemConfig::paper(SchedulerKind::Final, 5));
        FirmwareController::new(inner, FirmwareParams::default())
    }

    #[test]
    fn firmware_adds_execution_latency() {
        let mut f = fw();
        let mut h = PramController::new(SubsystemConfig::paper(SchedulerKind::Final, 5));
        let rf = f.read(Picos::ZERO, 0, 512);
        let rh = h.read(Picos::ZERO, 0, 512);
        // Firmware path is slower by roughly the handler execution time.
        let overhead = rf.end - rh.end;
        assert!(
            overhead >= f.params().read_exec() / 2,
            "firmware overhead {overhead} too small"
        );
    }

    #[test]
    fn firmware_exec_time_exceeds_pram_read_latency() {
        // §III-B's key observation.
        let p = FirmwareParams::default();
        assert!(p.read_exec() > Picos::from_ns(200));
        assert!(p.write_exec() > p.read_exec());
    }

    #[test]
    fn three_cores_saturate_under_load() {
        let mut f = fw();
        // Issue 12 concurrent reads at t=0: with 3 cores and ~2.2 us
        // handlers, the last handler cannot start before ~6.6 us.
        let mut last = Picos::ZERO;
        for i in 0..12u64 {
            let a = f.read(Picos::ZERO, i * 512, 512);
            last = last.max(a.end);
        }
        let exec = f.params().read_exec();
        assert!(last >= exec * 4, "12 reqs / 3 cores = 4 serial handlers");
        assert_eq!(f.requests(), 12);
    }

    #[test]
    fn energy_charges_firmware_cpu() {
        let mut f = fw();
        f.read(Picos::ZERO, 0, 512);
        f.write(Picos::from_us(10), 0, 512);
        let e = f.energy();
        assert!(e.energy_of("fw.cpu").as_pj() > 0.0);
        // Device energy flows through too.
        assert!(e.energy_of("pram.sense").as_pj() > 0.0);
    }

    #[test]
    fn functional_path_still_works() {
        let mut f = fw();
        let w = f.write(Picos::ZERO, 2048, 64);
        let r = f.read(w.end, 2048, 64);
        assert!(r.end > w.end);
    }
}
