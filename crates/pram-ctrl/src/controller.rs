//! The hardware-automated PRAM controller (§III-B, §V-B).
//!
//! [`PramController`] owns the two LPDDR2-NVM channels and services plain
//! read/write requests from the accelerator's MCU:
//!
//! * **Reads** run the three-phase sequence with phase skipping
//!   ([`crate::cmdgen`]). Under an interleaving scheduler, word accesses
//!   overlap across partitions and row buffers (Fig. 12); under the noop
//!   (bare-metal) scheduler each channel services one word at a time.
//! * **Writes** run the §V-B overlay-window register sequence — command
//!   code → row address → burst size → program-buffer fill → execute —
//!   and are *posted*: the requester resumes once the execute register is
//!   accepted, while the 10–18 µs cell program proceeds in the module.
//!   Each module has a single program buffer, so writes to a module
//!   serialize at the cell-program rate; that is the PRAM write wall the
//!   selective-erasing optimization attacks.
//! * **Selective erasing** pre-RESETs announced overwrite targets during
//!   partition idle windows, making the following overwrite SET-only
//!   (10 µs instead of 18 µs).

use crate::addr::{AddressMap, Fragment};
use crate::cmdgen::plan_read;
use crate::phy::PhyParams;
use crate::resilience::{EccModel, EccOutcome, RetireMap, RetryPolicy};
use crate::sched::SchedulerKind;
use crate::wear::StartGap;
use pram::cell::WORD_BYTES;
use pram::overlay::regs;
use pram::timing::{BurstLen, PramTiming};
use pram::PramChannel;
use sim_core::energy::{EnergyAccount, EnergyBook, Joules};
use sim_core::fault::{domain, FaultCounters, FaultPlan};
use sim_core::mem::{Access, MemoryBackend};
use sim_core::probe::{AttrSpan, Cause, Probe};
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::time::Picos;
use util::fxhash::{FxHashMap, FxHashSet};
use util::rng::stream_unit;
use util::telemetry::{MetricSet, Track};

/// Per-word-operation FPGA logic energy (translator + command generator).
const E_CTRL_OP: Joules = Joules::from_pj(200);

/// Advances an optional latency-attribution span. A no-op when
/// attribution is off (`attr` is `None`), so the fragment paths pay one
/// predictable branch per site instead of a probe dispatch.
#[inline]
fn adv(attr: &mut Option<&mut AttrSpan>, cause: Cause, to: Picos) {
    if let Some(a) = attr {
        a.advance(cause, to);
    }
}

/// Construction parameters of the PRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsystemConfig {
    /// Device timing (Table II by default).
    pub timing: PramTiming,
    /// Channel/module striping layout.
    pub map: AddressMap,
    /// Scheduler variant (the Fig. 13 axis).
    pub scheduler: SchedulerKind,
    /// PHY parameters.
    pub phy: PhyParams,
    /// Write pausing (§VII extension): reads may suspend in-flight
    /// programs instead of queueing behind them.
    pub write_pausing: bool,
    /// Start-gap wear leveling (§VII): `Some(interval)` rotates each
    /// module's rows one slot every `interval` writes.
    pub wear_leveling: Option<u64>,
    /// Determinism seed.
    pub seed: u64,
}

util::json_struct!(SubsystemConfig {
    timing,
    map,
    scheduler,
    phy,
    write_pausing,
    wear_leveling,
    seed,
});

impl SubsystemConfig {
    /// The paper configuration: 2 channels × 16 modules, Table II timing.
    pub fn paper(scheduler: SchedulerKind, seed: u64) -> Self {
        SubsystemConfig {
            timing: PramTiming::table2(),
            map: AddressMap::paper(),
            scheduler,
            phy: PhyParams::default(),
            write_pausing: false,
            wear_leveling: None,
            seed,
        }
    }

    /// A small 1-channel × 4-module subsystem for fast unit tests.
    pub fn small(scheduler: SchedulerKind, seed: u64) -> Self {
        SubsystemConfig {
            timing: PramTiming::table2(),
            map: AddressMap {
                channels: 1,
                modules_per_channel: 4,
                word_bytes: 32,
            },
            scheduler,
            phy: PhyParams::default(),
            write_pausing: false,
            wear_leveling: None,
            seed,
        }
    }
}

/// Controller-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtrlStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// 32 B word reads issued to devices.
    pub words_read: u64,
    /// 32 B word writes issued to devices.
    pub words_written: u64,
    /// Pre-active phases skipped on RAB hits.
    pub pre_active_skips: u64,
    /// Activate phases skipped on RDB hits.
    pub activate_skips: u64,
    /// Background selective erases that made a write SET-only.
    pub preerase_hits: u64,
    /// Writes that were eligible for pre-erase but had no idle window.
    pub preerase_misses: u64,
    /// Start-gap relocations performed.
    pub gap_moves: u64,
    /// Word reads whose address phases overlapped an in-flight burst on
    /// the same channel — the multi-resource interleaving win (Fig. 12).
    pub overlap_wins: u64,
    /// Word accesses that stalled behind the channel serialization
    /// point because the scheduler does not interleave.
    pub overlap_losses: u64,
    /// Sum of read latencies (issue → data).
    pub read_latency_sum: Picos,
    /// Sum of write latencies (issue → posted).
    pub write_latency_sum: Picos,
}

util::json_struct!(CtrlStats {
    reads,
    writes,
    words_read,
    words_written,
    pre_active_skips,
    activate_skips,
    preerase_hits,
    preerase_misses,
    gap_moves,
    overlap_wins,
    overlap_losses,
    read_latency_sum,
    write_latency_sum,
});

/// Per-line fault bookkeeping: draw indices (incremented unconditionally
/// so fault decisions stay independent of the configured rates) plus the
/// accumulated error budget.
#[derive(Debug, Clone, Copy, Default)]
struct LineFaultState {
    reads: u64,
    writes: u64,
    reads_since_write: u64,
    errors: u32,
}

util::json_struct!(LineFaultState {
    reads,
    writes,
    reads_since_write,
    errors
});

/// Runtime fault-injection + resilience state for one controller.
///
/// Every fault decision is a stateless hash of
/// `(plan.seed, domain, channel, module, line, access index, attempt)`
/// through [`stream_unit`], so the same access draws the same outcome no
/// matter when — or on which sweep worker — it is simulated, and raising
/// a rate turns a superset of the same trials into faults (exact
/// monotonic degradation).
#[derive(Debug, Clone)]
struct FaultState {
    plan: FaultPlan,
    ecc: EccModel,
    retry: RetryPolicy,
    /// Per channel × module retirement maps over logical word lines.
    retire: Vec<Vec<RetireMap>>,
    /// Per channel × module per-logical-line bookkeeping.
    lines: Vec<Vec<FxHashMap<u64, LineFaultState>>>,
    /// Per channel × module program counts per *physical* slot — after
    /// start-gap rotation, so wear leveling genuinely delays stuck-at
    /// onset.
    slot_writes: Vec<Vec<FxHashMap<u64, u64>>>,
    counters: FaultCounters,
}

util::json_struct!(FaultState {
    plan,
    ecc,
    retry,
    retire,
    lines,
    slot_writes,
    counters
});

/// The FPGA PRAM controller: translator + command generator + datapath
/// over two channels of PRAM modules.
#[derive(Debug, Clone)]
pub struct PramController {
    cfg: SubsystemConfig,
    channels: Vec<PramChannel>,
    /// Per-channel serialization point for the noop scheduler.
    channel_serial: Vec<Picos>,
    /// Per-channel, per-module program-buffer availability.
    program_buffer_free: Vec<Vec<Picos>>,
    /// Global word indexes announced as overwrite targets.
    announced: FxHashSet<u64>,
    /// Last access completion per global word (selective-erase window
    /// detection). Touched once per word access under the
    /// selective-erasing schedulers, hence the cheap deterministic hash.
    last_touch: FxHashMap<u64, Picos>,
    /// Per-channel, per-module start-gap state (when wear leveling is
    /// enabled).
    wear: Option<Vec<Vec<StartGap>>>,
    /// Fault injection + resilience (when a plan is attached).
    faults: Option<Box<FaultState>>,
    stats: CtrlStats,
    /// FPGA per-operation energy, accumulated as a plain account: the
    /// controller charges once per word fragment, and string-keyed
    /// ledger lookups on that path showed up in profiles.
    ctrl_energy: EnergyAccount,
    probe: Probe,
}

impl PramController {
    /// Builds the paper configuration ([`SubsystemConfig::paper`]) with
    /// an explicit scheduler — the common case for system composition.
    pub fn paper(scheduler: SchedulerKind, seed: u64) -> Self {
        Self::new(SubsystemConfig::paper(scheduler, seed))
    }

    /// Builds the subsystem: channels, modules, PHY state.
    pub fn new(cfg: SubsystemConfig) -> Self {
        let mut channels: Vec<PramChannel> = (0..cfg.map.channels)
            .map(|c| {
                PramChannel::new(
                    cfg.timing,
                    cfg.map.modules_per_channel,
                    cfg.seed.wrapping_add(c as u64 * 1000),
                )
            })
            .collect();
        if cfg.write_pausing {
            for ch in &mut channels {
                for i in 0..ch.module_count() {
                    ch.module_mut(i).set_write_pausing(true);
                }
            }
        }
        let wear = cfg.wear_leveling.map(|interval| {
            let words = channels[0].module(0).geometry().module_bytes() / cfg.map.word_bytes;
            channels
                .iter()
                .map(|ch| {
                    (0..ch.module_count())
                        // one spare slot is reserved at the top of the
                        // module, so the leveler covers words - 1 lines.
                        .map(|_| StartGap::new(words - 1, interval))
                        .collect()
                })
                .collect()
        });
        let program_buffer_free = channels
            .iter()
            .map(|ch| vec![Picos::ZERO; ch.module_count()])
            .collect();
        PramController {
            channel_serial: vec![Picos::ZERO; channels.len()],
            program_buffer_free,
            channels,
            announced: FxHashSet::default(),
            last_touch: FxHashMap::default(),
            wear,
            faults: None,
            stats: CtrlStats::default(),
            ctrl_energy: EnergyAccount::default(),
            probe: Probe::disabled(),
            cfg,
        }
    }

    /// Attaches a seeded fault-injection plan. Injected bit errors never
    /// corrupt returned data: correctable ones are absorbed by ECC,
    /// uncorrectable ones pay a bounded retry latency, and lines that
    /// exhaust their error budget are retired onto reserved spares.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        let words = self.channels[0].module(0).geometry().module_bytes() / self.cfg.map.word_bytes;
        // With wear leveling the top line is the start-gap spare slot,
        // so the retirement line space stops one short of it.
        let usable = if self.wear.is_some() {
            words - 1
        } else {
            words
        };
        let retire = self
            .channels
            .iter()
            .map(|ch| {
                (0..ch.module_count())
                    .map(|_| RetireMap::new(usable, plan.resilience.spare_lines))
                    .collect()
            })
            .collect();
        let lines = self
            .channels
            .iter()
            .map(|ch| vec![FxHashMap::default(); ch.module_count()])
            .collect();
        let slot_writes = self
            .channels
            .iter()
            .map(|ch| vec![FxHashMap::default(); ch.module_count()])
            .collect();
        self.faults = Some(Box::new(FaultState {
            ecc: EccModel::new(plan.resilience.ecc_strength),
            retry: RetryPolicy::new(plan.resilience.max_retries, plan.resilience.retry_backoff),
            plan: plan.clone(),
            retire,
            lines,
            slot_writes,
            counters: FaultCounters::default(),
        }));
        self
    }

    /// The fault ledger, when a plan is attached.
    pub fn fault_counters(&self) -> Option<&FaultCounters> {
        self.faults.as_ref().map(|f| &f.counters)
    }

    /// Retirement-map resolution of a module byte address: failing lines
    /// are redirected to their spare before start-gap leveling applies.
    fn retire_resolve(&self, ch: usize, md: usize, module_addr: u64) -> u64 {
        let Some(fs) = self.faults.as_ref() else {
            return module_addr;
        };
        let wb = self.cfg.map.word_bytes;
        fs.retire[ch][md].resolve(module_addr / wb) * wb + module_addr % wb
    }

    /// Trace track for a module's row data buffer: one lane per module
    /// across both channels.
    fn rdb_track(&self, ch: usize, module: usize) -> Track {
        Track::new(
            "rdb",
            (ch * self.cfg.map.modules_per_channel + module) as u32,
        )
    }

    /// Applies the start-gap remap to a (retirement-resolved) module byte
    /// address and, on writes, advances the gap (performing the
    /// relocation copy).
    fn wear_remap(&mut self, at: Picos, frag: &Fragment, module_addr: u64, is_write: bool) -> u64 {
        let Some(wear) = self.wear.as_mut() else {
            return module_addr;
        };
        let wb = self.cfg.map.word_bytes;
        let sg = &mut wear[frag.target.channel][frag.target.module];
        let word = module_addr / wb;
        let offset = module_addr % wb;
        let mapped = sg.map(word) * wb + offset;
        if is_write {
            if let Some(mv) = sg.on_write() {
                // The gap move copies one physical line.
                let module = self.channels[frag.target.channel].module_mut(frag.target.module);
                let from = module.geometry().decode(mv.from * wb).0;
                let to = module.geometry().decode(mv.to * wb).0;
                module.relocate(at, from, to);
                self.stats.gap_moves += 1;
            }
        }
        mapped
    }

    /// The configuration.
    pub fn config(&self) -> &SubsystemConfig {
        &self.cfg
    }

    /// Controller statistics.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Total byte capacity of the subsystem.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.capacity_bytes()).sum()
    }

    /// Channel access for inspection.
    pub fn channel(&self, i: usize) -> &PramChannel {
        &self.channels[i]
    }

    /// Subsystem endurance summary: `(max programs on any row across all
    /// modules, total rows ever touched)` — what wear leveling flattens.
    pub fn endurance(&self) -> (u32, usize) {
        let mut max = 0u32;
        let mut rows = 0usize;
        for ch in &self.channels {
            for m in ch.modules() {
                let (m_max, m_rows) = m.endurance();
                max = max.max(m_max);
                rows += m_rows;
            }
        }
        (max, rows)
    }

    /// Functional write carrying real bytes (integration tests and the
    /// kernel-image download path use this; the timing-only
    /// [`MemoryBackend::write`] uses a non-zero filler pattern).
    pub fn write_bytes(&mut self, at: Picos, addr: u64, data: &[u8]) -> Access {
        assert!(!data.is_empty(), "empty write");
        let attr_on = self.probe.attr_on();
        let map = self.cfg.map;
        let mut start = Picos::MAX;
        let mut end = Picos::ZERO;
        let mut worst: Option<AttrSpan> = None;
        let mut off = 0usize;
        for frag in map.frags(addr, data.len() as u32) {
            let chunk = &data[off..off + frag.len as usize];
            let mut span = if attr_on {
                Some(AttrSpan::new(at))
            } else {
                None
            };
            let a = self.write_frag(at, &frag, Some(chunk), span.as_mut());
            start = start.min(a.start);
            if a.end > end || worst.is_none() {
                worst = span;
            }
            end = end.max(a.end);
            off += frag.len as usize;
        }
        self.stats.writes += 1;
        self.stats.write_latency_sum += end.saturating_sub(at);
        self.probe.latency("pram.write", end.saturating_sub(at));
        if let Some(span) = &worst {
            self.probe.attr_record("pram.write", span);
        }
        Access { start, end }
    }

    /// Functional read returning the stored bytes.
    pub fn read_bytes(&mut self, at: Picos, addr: u64, len: u32) -> (Access, Vec<u8>) {
        let attr_on = self.probe.attr_on();
        let map = self.cfg.map;
        let mut out = Vec::with_capacity(len as usize);
        let mut start = Picos::MAX;
        let mut end = Picos::ZERO;
        let mut worst: Option<AttrSpan> = None;
        for frag in map.frags(addr, len) {
            let mut span = if attr_on {
                Some(AttrSpan::new(at))
            } else {
                None
            };
            let a = self.read_frag(at, &frag, Some(&mut out), span.as_mut());
            start = start.min(a.start);
            if a.end > end || worst.is_none() {
                worst = span;
            }
            end = end.max(a.end);
        }
        self.stats.reads += 1;
        self.stats.read_latency_sum += end.saturating_sub(at);
        self.probe.latency("pram.read", end.saturating_sub(at));
        if let Some(span) = &worst {
            self.probe.attr_record("pram.read", span);
        }
        (Access { start, end }, out)
    }

    /// One word-fragment read through the three-phase protocol.
    ///
    /// With `out: Some(buf)` the fragment's bytes are appended to `buf`
    /// (functional read); with `None` only timing advances — the device
    /// still runs the identical burst (same RNG preamble draw, stats and
    /// energy), it just skips materializing the data copy.
    fn read_frag(
        &mut self,
        at: Picos,
        frag: &Fragment,
        out: Option<&mut Vec<u8>>,
        mut attr: Option<&mut AttrSpan>,
    ) -> Access {
        let interleaves = self.cfg.scheduler.interleaves();
        let ch_idx = frag.target.channel;
        if !interleaves && self.channel_serial[ch_idx] > at {
            // The word is ready to issue but the channel services one
            // access at a time — an overlap the scheduler left on the
            // table.
            self.stats.overlap_losses += 1;
        }
        let earliest = if interleaves {
            at
        } else {
            at.max(self.channel_serial[ch_idx])
        };
        adv(&mut attr, Cause::QueueWait, earliest);
        let md = frag.target.module;
        let rdb_track = self.rdb_track(ch_idx, md);
        let sync = self.cfg.phy.sync_latency;
        let tck = self.cfg.timing.tck();
        let wb = self.cfg.map.word_bytes;
        let line = frag.target.module_addr / wb;
        let resolved = self.retire_resolve(ch_idx, md, frag.target.module_addr);
        let mapped_addr = self.wear_remap(earliest, frag, resolved, false);
        let phys_slot = mapped_addr / wb;
        let lower_bits;
        let row;
        {
            let ch = &mut self.channels[ch_idx];
            let (module, _, _) = ch.module_and_buses(frag.target.module);
            lower_bits = module.geometry().lower_row_bits;
            let (r, _off) = module.geometry().decode(mapped_addr);
            row = r;
        }

        let plan = {
            let module = self.channels[ch_idx].module(frag.target.module);
            plan_read(module.buffers(), row, lower_bits, interleaves)
        };
        let ba = plan.ba();
        let mut t = earliest + sync;
        adv(&mut attr, Cause::ArrayAccess, t);

        let ch = &mut self.channels[ch_idx];
        let (module, _cmd_bus, dq_bus) = ch.module_and_buses(frag.target.module);

        // Command issue costs one interface clock per 20-bit packet; the
        // command bus runs well under 20% utilized even on streams, so it
        // is modeled as fixed latency rather than a contended resource.
        let part_track = Track::new("partition", row.partition.0 as u32);
        if plan.skips_pre_active() {
            self.stats.pre_active_skips += 1;
            self.probe.instant(part_track, "rab_hit", t);
        } else {
            let pre = module.pre_active(t + tck, ba, row.upper(lower_bits));
            adv(&mut attr, Cause::ArrayAccess, t + tck);
            adv(&mut attr, Cause::PartitionConflict, pre.start);
            adv(&mut attr, Cause::ArrayAccess, pre.end);
            self.probe
                .span(part_track, "pre_active", pre.start, pre.end);
            t = pre.end;
        }
        if plan.skips_activate() {
            self.stats.activate_skips += 1;
            self.probe.instant(part_track, "rdb_hit", t);
        } else {
            let act = module.activate(t + tck, ba, row.lower(lower_bits));
            adv(&mut attr, Cause::ArrayAccess, t + tck);
            adv(&mut attr, Cause::PartitionConflict, act.start);
            adv(&mut attr, Cause::ArrayAccess, act.end);
            self.probe.span(part_track, "activate", act.start, act.end);
            t = act.end;
        }

        // Read phase: the burst arbitrates the shared dq bus; its preamble
        // (RL + tDQSCK) hides behind the previous burst.
        let col_off = (frag.global_addr % WORD_BYTES as u64) as u32;
        let bl = BurstLen::covering(col_off + frag.len);
        let bus_free = dq_bus.probe(Picos::ZERO);
        if interleaves && bus_free > earliest {
            // This word's address phases (tRCD work) ran while an
            // earlier burst still held the channel's DQ bus — the
            // overlap the multi-resource scheduler exists to create.
            self.stats.overlap_wins += 1;
        }
        let (rt, word) = if out.is_some() {
            let (rt, word) = module.read_burst(t + tck, bus_free, ba, 0, bl);
            (rt, Some(word))
        } else {
            (module.read_burst_timed(t + tck, bus_free, ba, 0, bl), None)
        };
        let tburst = self.cfg.timing.tburst(bl);
        dq_bus.reserve(rt.end - tburst, tburst);
        // Full RAB+RDB hit ⇒ the pre-burst window is buffer read-out, not
        // an array sense; otherwise the sense amps are doing the work.
        let sense = if plan.skips_pre_active() && plan.skips_activate() {
            Cause::BufferHit
        } else {
            Cause::ArrayAccess
        };
        adv(&mut attr, Cause::ArrayAccess, t + tck);
        adv(&mut attr, Cause::BurstWait, rt.start);
        adv(&mut attr, sense, rt.end - tburst);
        adv(&mut attr, Cause::DataBurst, rt.end);
        self.probe.span_args(
            rdb_track,
            "read",
            rt.start,
            rt.end,
            &[("bytes", frag.len as u64)],
        );

        // Fault injection + resilience: ECC classification, bounded
        // retry-with-backoff, retirement of lines over their error
        // budget. Faults only cost time — the returned word is never
        // corrupted (correctable flips are fixed in place, uncorrectable
        // reads re-sense until the data lands).
        let mut data_ready = rt.end;
        if let Some(fs) = self.faults.as_mut() {
            let st = fs.lines[ch_idx][md].entry(line).or_default();
            st.reads += 1;
            let read_idx = st.reads;
            let rsw = st.reads_since_write;
            st.reads_since_write += 1;

            let pf = &fs.plan.pram;
            let seed = fs.plan.seed;
            let ecc = fs.ecc;
            let retry = fs.retry;
            let budget = fs.plan.resilience.line_error_budget;
            let pmul = pf.partition_multiplier(row.partition.0 as usize);
            let p_drift = (pf.drift_rate * pmul).min(1.0);
            let ramp = if pf.disturb_window == 0 {
                1.0
            } else {
                rsw.min(pf.disturb_window) as f64 / pf.disturb_window as f64
            };
            let p_disturb = (pf.read_disturb_rate * pmul * ramp).min(1.0);
            let p_rdb = pf.rdb_corruption_rate.min(1.0);
            let stuck = pf.stuck_at_threshold > 0
                && fs.slot_writes[ch_idx][md]
                    .get(&phys_slot)
                    .copied()
                    .unwrap_or(0)
                    >= pf.stuck_at_threshold;
            let (chn, mdn) = (ch_idx as u64, md as u64);
            let draw_flips = |attempt: u64| -> u32 {
                let mut flips = 0u32;
                if p_drift > 0.0 {
                    for trial in 0..u64::from(ecc.strength) + 2 {
                        let labels = [domain::DRIFT, chn, mdn, line, read_idx, attempt, trial];
                        if stream_unit(seed, &labels) < p_drift {
                            flips += 1;
                        }
                    }
                }
                let labels = [domain::DISTURB, chn, mdn, line, read_idx, attempt];
                if p_disturb > 0.0 && stream_unit(seed, &labels) < p_disturb {
                    flips += 1;
                }
                flips
            };
            let rdb_corrupt = |attempt: u64| -> bool {
                let labels = [domain::RDB, chn, mdn, line, read_idx, attempt];
                p_rdb > 0.0 && stream_unit(seed, &labels) < p_rdb
            };

            let flips = draw_flips(0);
            let corrupt = rdb_corrupt(0);
            fs.counters.injected += u64::from(flips) + u64::from(corrupt) + u64::from(stuck);
            let failed =
                stuck || corrupt || matches!(ecc.classify(flips), EccOutcome::Uncorrectable(_));
            if !failed {
                if let EccOutcome::Corrected(_) = ecc.classify(flips) {
                    fs.counters.ecc_corrected += 1;
                }
            } else {
                fs.counters.ecc_uncorrectable += 1;
                let service = rt.end - rt.start;
                let mut recovered = false;
                for attempt in 0..retry.max_retries {
                    fs.counters.retries += 1;
                    data_ready = data_ready + retry.backoff_for(attempt) + service;
                    self.ctrl_energy.charge(E_CTRL_OP);
                    if stuck {
                        continue; // a worn-out line fails every re-sense
                    }
                    let a = u64::from(attempt) + 1;
                    let corrupt2 = rdb_corrupt(a);
                    let flips2 = draw_flips(a);
                    fs.counters.injected += u64::from(flips2) + u64::from(corrupt2);
                    if corrupt2 || matches!(ecc.classify(flips2), EccOutcome::Uncorrectable(_)) {
                        fs.counters.ecc_uncorrectable += 1;
                        continue;
                    }
                    if let EccOutcome::Corrected(_) = ecc.classify(flips2) {
                        fs.counters.ecc_corrected += 1;
                    }
                    recovered = true;
                    break;
                }
                if !recovered {
                    // The line burned its retry budget: charge its error
                    // budget and retire it onto a spare once exceeded.
                    let st = fs.lines[ch_idx][md].entry(line).or_default();
                    st.errors += 1;
                    if st.errors >= budget {
                        st.errors = 0;
                        if let Some(spare) = fs.retire[ch_idx][md].retire(line) {
                            fs.counters.retired_lines += 1;
                            let spare_slot = match self.wear.as_ref() {
                                Some(w) => w[ch_idx][md].map(spare),
                                None => spare,
                            };
                            let to = module.geometry().decode(spare_slot * wb).0;
                            let rel = module.relocate(data_ready, row, to);
                            data_ready = rel.end;
                        }
                    }
                    // Deep recovery (a stronger sense pulse) still lands
                    // the data: faults cost time, never bytes.
                    data_ready += service;
                }
            }
        }
        if data_ready > rt.end {
            let stall = data_ready - rt.end;
            if let Some(fs) = self.faults.as_mut() {
                fs.counters.retry_stall_ps += stall.as_ps();
            }
            adv(&mut attr, Cause::RetryStall, data_ready);
        }

        self.stats.words_read += 1;
        self.ctrl_energy.charge(E_CTRL_OP);
        if !interleaves {
            self.channel_serial[ch_idx] = data_ready;
        }
        // Touch tracking only feeds the selective-erase window search in
        // `write_frag`; schedulers without the optimization skip the
        // per-op hash insert entirely (the map stays empty).
        if self.cfg.scheduler.selective_erase() {
            let wi = self.cfg.map.word_index(frag.global_addr);
            self.last_touch.insert(wi, data_ready);
        }

        if let Some(buf) = out {
            let word = word.expect("functional read ran the data burst");
            let lo = col_off as usize;
            buf.extend_from_slice(&word[lo..lo + frag.len as usize]);
        }
        Access {
            start: earliest,
            end: data_ready,
        }
    }

    /// One word-fragment write through the overlay-window sequence.
    fn write_frag(
        &mut self,
        at: Picos,
        frag: &Fragment,
        data: Option<&[u8]>,
        mut attr: Option<&mut AttrSpan>,
    ) -> Access {
        let ch_idx = frag.target.channel;
        let md = frag.target.module;
        let interleaves = self.cfg.scheduler.interleaves();
        let selective = self.cfg.scheduler.selective_erase();
        if !interleaves && self.channel_serial[ch_idx] > at {
            self.stats.overlap_losses += 1;
        }
        let earliest = if interleaves {
            at
        } else {
            at.max(self.channel_serial[ch_idx])
        };
        let rdb_track = self.rdb_track(ch_idx, md);
        let sync = self.cfg.phy.sync_latency;
        let tck = self.cfg.timing.tck();
        let treset = self.cfg.timing.t_reset_extra + self.cfg.timing.twra;
        let wi = self.cfg.map.word_index(frag.global_addr);

        adv(&mut attr, Cause::QueueWait, earliest);

        // The module's single program buffer gates the next write.
        let pb_free = self.program_buffer_free[ch_idx][md];
        let t0 = earliest.max(pb_free) + sync;
        // Waiting on the previous cell program to release the buffer is
        // the PRAM write wall — the erase/program-blocked bucket.
        adv(&mut attr, Cause::EraseBlocked, earliest.max(pb_free));
        adv(&mut attr, Cause::ArrayAccess, t0);

        let wb = self.cfg.map.word_bytes;
        let line = frag.target.module_addr / wb;
        let resolved = self.retire_resolve(ch_idx, md, frag.target.module_addr);
        let mapped_addr = self.wear_remap(t0, frag, resolved, true);
        let phys_slot = mapped_addr / wb;
        let word_addr = mapped_addr & !(WORD_BYTES as u64 - 1);
        let row = {
            let module = self.channels[ch_idx].module(md);
            module.geometry().decode(word_addr).0
        };

        // Selective erasing: if this word was announced as an overwrite
        // target, holds stale data, and both the word and its partition
        // had an idle window long enough for a background RESET, the
        // pre-erase already happened — the coming program is SET-only.
        if selective {
            let module = self.channels[ch_idx].module(md);
            let eligible = self.announced.contains(&wi) && !module.is_pristine(row);
            if eligible {
                let lane_free = module.partition_free_at(row.partition);
                let touch = self.last_touch.get(&wi).copied().unwrap_or(Picos::ZERO);
                let window_start = lane_free.max(touch);
                if window_start + treset <= t0 {
                    let module = self.channels[ch_idx].module_mut(md);
                    let pe = module.pre_erase(window_start, row);
                    debug_assert!(pe.end <= t0 + treset);
                    self.stats.preerase_hits += 1;
                    self.probe.span(
                        Track::new("partition", row.partition.0 as u32),
                        "pre_erase",
                        pe.start,
                        pe.end,
                    );
                } else {
                    self.stats.preerase_misses += 1;
                }
            }
        }

        // §V-B register sequence: command code (0x80), row address (0x8B),
        // burst size (0x93), program buffer (0x800), execute (0xC0).
        let ch = &mut self.channels[ch_idx];
        let (module, _cmd_bus, dq_bus) = ch.module_and_buses(md);

        let mut t = t0;
        let cmd = [0xE9u8];
        let addr_bytes = word_addr.to_le_bytes();
        let mp = [WORD_BYTES as u8];
        let reg_writes: [(u64, &[u8]); 3] = [
            (regs::COMMAND_CODE, &cmd),
            (regs::DATA_ADDRESS, &addr_bytes),
            (regs::MULTI_PURPOSE, &mp),
        ];
        for (offset, bytes) in reg_writes {
            let issue = (t + tck).max(dq_bus.probe(Picos::ZERO));
            let w = module.write_overlay(issue, offset, bytes);
            adv(&mut attr, Cause::BurstWait, issue);
            adv(&mut attr, Cause::DataBurst, w.end);
            let bl = BurstLen::covering(bytes.len() as u32);
            let tburst = self.cfg.timing.tburst(bl);
            dq_bus.reserve(w.end - tburst, tburst);
            t = w.end;
        }

        // Program-buffer fill: read-modify-write semantics for partial
        // words (the device merges against current contents).
        let mut word = module.peek(row);
        let lo = (frag.global_addr % WORD_BYTES as u64) as usize;
        match data {
            Some(bytes) => word[lo..lo + frag.len as usize].copy_from_slice(bytes),
            None => {
                // Timing-only filler: a non-zero pattern derived from the
                // address (zeros would alias the selective-erase path).
                for (i, b) in word[lo..lo + frag.len as usize].iter_mut().enumerate() {
                    *b = 0xA5u8.wrapping_add((frag.global_addr as u8).wrapping_add(i as u8));
                    if *b == 0 {
                        *b = 0xA5;
                    }
                }
            }
        }
        let issue = (t + tck).max(dq_bus.probe(Picos::ZERO));
        let fill = module.write_overlay(issue, regs::PROGRAM_BUFFER, &word);
        adv(&mut attr, Cause::BurstWait, issue);
        adv(&mut attr, Cause::DataBurst, fill.end);
        let tburst = self.cfg.timing.tburst(BurstLen::Bl16);
        dq_bus.reserve(fill.end - tburst, tburst);
        t = fill.end;

        // Execute: one more command packet, then the array program runs in
        // the background; the program buffer frees when it completes.
        let exec_accepted = t + tck * 2;
        adv(&mut attr, Cause::ArrayAccess, exec_accepted);
        let prog = module.execute_program(exec_accepted);

        // Fault injection: SET/RESET program failures and stuck-at wear.
        // Writes are posted, so a failing program costs *background* time
        // (the program buffer stays busy through the re-pulses), not
        // requester latency — until buffer pressure surfaces it.
        let mut prog_end = prog.end;
        if let Some(fs) = self.faults.as_mut() {
            let st = fs.lines[ch_idx][md].entry(line).or_default();
            st.writes += 1;
            st.reads_since_write = 0;
            let write_idx = st.writes;
            let slot_w = fs.slot_writes[ch_idx][md].entry(phys_slot).or_insert(0);
            *slot_w += 1;
            let threshold = fs.plan.pram.stuck_at_threshold;
            let stuck = threshold > 0 && *slot_w >= threshold;
            let p_fail = fs.plan.pram.program_failure_rate.min(1.0);
            let seed = fs.plan.seed;
            let retry = fs.retry;
            let budget = fs.plan.resilience.line_error_budget;
            let service = prog.end - prog.start;
            let (chn, mdn) = (ch_idx as u64, md as u64);
            let fails = |attempt: u64| -> bool {
                if stuck {
                    return true; // worn-out cells reject every pulse
                }
                let labels = [domain::PROGRAM, chn, mdn, line, write_idx, attempt];
                p_fail > 0.0 && stream_unit(seed, &labels) < p_fail
            };
            if fails(0) {
                fs.counters.injected += 1;
                let mut recovered = false;
                for attempt in 0..retry.max_retries {
                    fs.counters.retries += 1;
                    prog_end = prog_end + retry.backoff_for(attempt) + service;
                    self.ctrl_energy.charge(E_CTRL_OP);
                    if !fails(u64::from(attempt) + 1) {
                        recovered = true;
                        break;
                    }
                    fs.counters.injected += 1;
                }
                if !recovered {
                    let st = fs.lines[ch_idx][md].entry(line).or_default();
                    st.errors += 1;
                    if st.errors >= budget {
                        st.errors = 0;
                        if let Some(spare) = fs.retire[ch_idx][md].retire(line) {
                            fs.counters.retired_lines += 1;
                            let spare_slot = match self.wear.as_ref() {
                                Some(w) => w[ch_idx][md].map(spare),
                                None => spare,
                            };
                            let to = module.geometry().decode(spare_slot * wb).0;
                            // Copy the just-programmed line onto its
                            // spare so later reads round-trip.
                            let rel = module.relocate(prog_end, row, to);
                            prog_end = rel.end;
                        }
                    }
                    // The final margin-boosted pulse always lands.
                    prog_end += service;
                }
            }
        }

        self.program_buffer_free[ch_idx][md] = prog_end;
        self.probe.span_args(
            rdb_track,
            "write",
            t0,
            exec_accepted,
            &[("bytes", frag.len as u64)],
        );
        self.probe
            .span(rdb_track, "program", exec_accepted, prog_end);

        self.stats.words_written += 1;
        self.ctrl_energy.charge(E_CTRL_OP);
        if !interleaves {
            self.channel_serial[ch_idx] = exec_accepted;
        }
        // As in `read_frag`: touch tracking exists for selective erasing.
        if selective {
            self.last_touch.insert(wi, prog_end);
        }

        // Posted write: the requester resumes at execute-accept.
        Access {
            start: earliest,
            end: exec_accepted,
        }
    }
}

/// Image tag for [`PramController`] snapshots.
const CTRL_KIND: &str = "pram-ctrl/controller";
/// Schema version of [`CTRL_KIND`] images.
const CTRL_VERSION: u32 = 1;

impl sim_core::Snapshot for PramController {
    fn snapshot(&self) -> StateImage {
        use util::json::ToJson;
        let mut announced: Vec<u64> = self.announced.iter().copied().collect();
        announced.sort_unstable();
        let faults = match &self.faults {
            Some(fs) => FaultState::to_json(fs),
            None => util::json::Json::Null,
        };
        let data = util::json::Json::Obj(vec![
            ("cfg".to_string(), self.cfg.to_json()),
            ("channels".to_string(), self.channels.to_json()),
            ("channel_serial".to_string(), self.channel_serial.to_json()),
            (
                "program_buffer_free".to_string(),
                self.program_buffer_free.to_json(),
            ),
            ("announced".to_string(), announced.to_json()),
            (
                "last_touch".to_string(),
                sim_core::snapshot::sorted_pairs(self.last_touch.iter().map(|(k, v)| (*k, *v))),
            ),
            ("wear".to_string(), self.wear.to_json()),
            ("faults".to_string(), faults),
            ("stats".to_string(), self.stats.to_json()),
            ("ctrl_energy".to_string(), self.ctrl_energy.to_json()),
        ]);
        StateImage::new(CTRL_KIND, CTRL_VERSION, data)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        use util::json::field;
        let data = image.expect(CTRL_KIND, CTRL_VERSION)?;
        let m = |e| SnapshotError::malformed(CTRL_KIND, e);
        let cfg: SubsystemConfig = field(data, "cfg").map_err(m)?;
        if cfg != self.cfg {
            return Err(SnapshotError::shape(
                CTRL_KIND,
                "image was recorded under a different subsystem configuration",
            ));
        }
        let channels: Vec<PramChannel> = field(data, "channels").map_err(m)?;
        if channels.len() != self.channels.len() {
            return Err(SnapshotError::shape(CTRL_KIND, "channel count differs"));
        }
        let announced: Vec<u64> = field(data, "announced").map_err(m)?;
        let last_touch = sim_core::snapshot::pairs_from::<Picos>(
            data.get("last_touch").unwrap_or(&util::json::Json::Null),
        )
        .map_err(m)?;
        let faults: Option<FaultState> = field(data, "faults").map_err(m)?;
        self.channels = channels;
        self.channel_serial = field(data, "channel_serial").map_err(m)?;
        self.program_buffer_free = field(data, "program_buffer_free").map_err(m)?;
        self.announced = announced.into_iter().collect();
        self.last_touch = last_touch.into_iter().collect();
        self.wear = field(data, "wear").map_err(m)?;
        self.faults = faults.map(Box::new);
        self.stats = field(data, "stats").map_err(m)?;
        self.ctrl_energy = field(data, "ctrl_energy").map_err(m)?;
        // `probe` is a runtime attachment, deliberately left untouched.
        Ok(())
    }
}

impl MemoryBackend for PramController {
    fn read(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        // Timing-only: identical device walk to `read_bytes` (same burst,
        // RNG draws, stats and energy), minus the data materialization —
        // this is the accurate engine's hot path.
        let attr_on = self.probe.attr_on();
        let map = self.cfg.map;
        let mut start = Picos::MAX;
        let mut end = Picos::ZERO;
        let mut worst: Option<AttrSpan> = None;
        for frag in map.frags(addr, len) {
            let mut span = if attr_on {
                Some(AttrSpan::new(at))
            } else {
                None
            };
            let a = self.read_frag(at, &frag, None, span.as_mut());
            start = start.min(a.start);
            if a.end > end || worst.is_none() {
                worst = span;
            }
            end = end.max(a.end);
        }
        self.stats.reads += 1;
        self.stats.read_latency_sum += end.saturating_sub(at);
        self.probe.latency("pram.read", end.saturating_sub(at));
        if let Some(span) = &worst {
            self.probe.attr_record("pram.read", span);
        }
        Access { start, end }
    }

    fn write(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        assert!(len > 0, "empty write");
        let attr_on = self.probe.attr_on();
        let map = self.cfg.map;
        let mut start = Picos::MAX;
        let mut end = Picos::ZERO;
        let mut worst: Option<AttrSpan> = None;
        for frag in map.frags(addr, len) {
            let mut span = if attr_on {
                Some(AttrSpan::new(at))
            } else {
                None
            };
            let a = self.write_frag(at, &frag, None, span.as_mut());
            start = start.min(a.start);
            if a.end > end || worst.is_none() {
                worst = span;
            }
            end = end.max(a.end);
        }
        self.stats.writes += 1;
        self.stats.write_latency_sum += end.saturating_sub(at);
        self.probe.latency("pram.write", end.saturating_sub(at));
        if let Some(span) = &worst {
            self.probe.attr_record("pram.write", span);
        }
        Access { start, end }
    }

    fn announce_overwrites(&mut self, _at: Picos, addrs: &[u64]) {
        if !self.cfg.scheduler.selective_erase() {
            return;
        }
        for &a in addrs {
            self.announced.insert(self.cfg.map.word_index(a));
        }
    }

    fn energy(&self) -> EnergyBook {
        let mut book = EnergyBook::new();
        if self.ctrl_energy.events > 0 {
            book.charge_many(
                "ctrl.fpga",
                self.ctrl_energy.energy,
                self.ctrl_energy.events,
            );
        }
        for ch in &self.channels {
            for m in ch.modules() {
                book.merge(&m.energy());
            }
        }
        book
    }

    fn label(&self) -> &'static str {
        match self.cfg.scheduler {
            SchedulerKind::BareMetal => "pram-ctrl/bare-metal",
            SchedulerKind::Interleaving => "pram-ctrl/interleaving",
            SchedulerKind::SelectiveErasing => "pram-ctrl/selective-erasing",
            SchedulerKind::Final => "pram-ctrl/final",
        }
    }

    fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    fn probe(&self) -> &Probe {
        &self.probe
    }

    fn collect_metrics(&self, out: &mut MetricSet) {
        let s = &self.stats;
        out.add("pram.reads", s.reads);
        out.add("pram.writes", s.writes);
        out.add("pram.words_read", s.words_read);
        out.add("pram.words_written", s.words_written);
        out.add("pram.rab_hits", s.pre_active_skips);
        out.add("pram.rdb_hits", s.activate_skips);
        // Address phases actually driven over the wire — what the
        // three-phase protocol's phase skipping saves.
        out.add(
            "pram.address_phases",
            (s.words_read - s.pre_active_skips) + (s.words_read - s.activate_skips),
        );
        out.add("pram.preerase_hits", s.preerase_hits);
        out.add("pram.preerase_misses", s.preerase_misses);
        out.add("pram.overlap_wins", s.overlap_wins);
        out.add("pram.overlap_losses", s.overlap_losses);
        out.add("pram.gap_moves", s.gap_moves);
        if let Some(fs) = &self.faults {
            let f = &fs.counters;
            out.add("fault.injected", f.injected);
            out.add("pram.ecc_corrected", f.ecc_corrected);
            out.add("pram.ecc_uncorrectable", f.ecc_uncorrectable);
            out.add("pram.retries", f.retries);
            out.add("pram.retired_lines", f.retired_lines);
            out.add("pram.retry_stall_ns", f.retry_stall_ps / 1000);
        }
    }

    fn collect_faults(&self, out: &mut FaultCounters) {
        if let Some(fs) = &self.faults {
            out.merge(&fs.counters);
        }
    }

    fn snapshot_state(&self) -> Result<StateImage, SnapshotError> {
        Ok(sim_core::Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        sim_core::Snapshot::restore(self, image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(s: SchedulerKind) -> PramController {
        PramController::new(SubsystemConfig::paper(s, 7))
    }

    #[test]
    fn functional_round_trip() {
        let mut c = ctrl(SchedulerKind::Final);
        let data: Vec<u8> = (0..1024).map(|i| (i % 251 + 1) as u8).collect();
        let w = c.write_bytes(Picos::ZERO, 4096, &data);
        let (_, back) = c.read_bytes(w.end + Picos::from_us(100), 4096, 1024);
        assert_eq!(back, data);
    }

    #[test]
    fn unaligned_round_trip() {
        let mut c = ctrl(SchedulerKind::Final);
        let data: Vec<u8> = (1..=100).collect();
        let w = c.write_bytes(Picos::ZERO, 12345, &data);
        let (_, back) = c.read_bytes(w.end + Picos::from_us(100), 12345, 100);
        assert_eq!(back, data);
    }

    #[test]
    fn read_is_fast_write_is_posted() {
        let mut c = ctrl(SchedulerKind::Final);
        let w = c.write(Picos::ZERO, 0, 32);
        // Posted write: accepted in well under a microsecond.
        assert!(w.end < Picos::from_us(1), "{}", w.end);
        let r = c.read(Picos::from_ms(1), 0, 32);
        // Three-phase read of one word lands near 150 ns.
        assert!(
            r.latency_from(Picos::from_ms(1)) < Picos::from_ns(400),
            "{:?}",
            r
        );
    }

    #[test]
    fn run_stream_matches_per_op_reference_on_the_real_controller() {
        // Property: the batched backend entry is purely a dispatch
        // optimization — for any request stream, its clock, write-queue
        // state, internal stats and energy ledger are identical to the
        // per-op reference walk, op for op.
        use sim_core::mem::StreamOp;
        util::for_each_case!(16, |rng| {
            let ops: Vec<StreamOp> = (0..rng.range_u64(1, 48))
                .map(|_| StreamOp {
                    advance: Picos::from_ns(rng.range_u64(0, 40)),
                    addr: rng.range_u64(0, 2048) * 64,
                    write: rng.chance(0.4),
                })
                .collect();
            let line = 64u32;
            let xbar = Picos::from_ns(30);
            let kind = if rng.chance(0.5) {
                SchedulerKind::Final
            } else {
                SchedulerKind::Interleaving
            };

            // Reference: the pinned per-op semantics (blocking fills,
            // posted writes through the first earliest-free slot).
            let mut reference = ctrl(kind);
            let mut ref_wq = [Picos::ZERO; 4];
            let mut ref_now = Picos::ZERO;
            // Batched path, driven one op at a time so every
            // intermediate clock is compared, then re-run as one slice.
            let mut stepped = ctrl(kind);
            let mut stepped_wq = [Picos::ZERO; 4];
            let mut stepped_now = Picos::ZERO;
            for (i, op) in ops.iter().enumerate() {
                ref_now += op.advance;
                if op.write {
                    let slot = (0..ref_wq.len()).min_by_key(|&i| ref_wq[i]).unwrap();
                    let free_at = ref_wq[slot];
                    ref_wq[slot] = reference.write(ref_now.max(free_at), op.addr, line).end;
                    ref_now = ref_now.max(free_at);
                } else {
                    ref_now = reference.read(ref_now, op.addr, line).end + xbar;
                }
                stepped_now = stepped.run_stream(
                    stepped_now,
                    line,
                    xbar,
                    std::slice::from_ref(op),
                    &mut stepped_wq,
                );
                assert_eq!(stepped_now, ref_now, "clock diverged at op {i}");
                assert_eq!(stepped_wq, ref_wq, "write queue diverged at op {i}");
            }
            assert_eq!(stepped.energy(), reference.energy());

            let mut batched = ctrl(kind);
            let mut wq = [Picos::ZERO; 4];
            let now = batched.run_stream(Picos::ZERO, line, xbar, &ops, &mut wq);
            assert_eq!(now, ref_now);
            assert_eq!(wq, ref_wq);
            assert_eq!(batched.energy(), reference.energy());
        });
    }

    #[test]
    fn interleaving_beats_bare_metal_on_streaming_reads() {
        let mut results = Vec::new();
        for s in [SchedulerKind::BareMetal, SchedulerKind::Interleaving] {
            let mut c = ctrl(s);
            let mut t = Picos::ZERO;
            // Stream 64 KiB in 512 B requests.
            for i in 0..128u64 {
                let a = c.read(t, i * 512, 512);
                t = a.end;
            }
            results.push(t);
        }
        let (bare, inter) = (results[0], results[1]);
        assert!(
            inter.as_ps() * 2 < bare.as_ps(),
            "interleaving {inter} should be >2x faster than bare-metal {bare}"
        );
    }

    #[test]
    fn overlap_counters_split_by_scheduler() {
        // The same streaming read pattern: the interleaving scheduler
        // overlaps address phases with in-flight bursts (wins), the
        // bare-metal one stalls words behind the channel (losses).
        let mut wins = Vec::new();
        let mut losses = Vec::new();
        for s in [SchedulerKind::BareMetal, SchedulerKind::Interleaving] {
            let mut c = ctrl(s);
            let mut t = Picos::ZERO;
            for i in 0..64u64 {
                let a = c.read(t, i * 512, 512);
                t = a.end;
            }
            wins.push(c.stats().overlap_wins);
            losses.push(c.stats().overlap_losses);
        }
        assert_eq!(wins[0], 0, "bare-metal never overlaps");
        assert!(losses[0] > 0, "bare-metal should stall words");
        assert!(wins[1] > 0, "interleaving should overlap tRCD with bursts");
        assert_eq!(
            losses[1], 0,
            "interleaving never stalls on the serial point"
        );
    }

    #[test]
    fn controller_metrics_surface_scheduler_counters() {
        let mut c = ctrl(SchedulerKind::Final);
        let mut t = Picos::ZERO;
        for i in 0..32u64 {
            t = c.read(t, i * 512, 512).end;
        }
        let mut m = util::telemetry::MetricSet::new();
        sim_core::mem::MemoryBackend::collect_metrics(&c, &mut m);
        assert_eq!(m.counter("pram.words_read"), Some(32 * 16));
        assert!(m.counter("pram.rab_hits").unwrap() > 0);
        assert!(m.counter("pram.overlap_wins").unwrap() > 0);
        assert_eq!(m.counter("pram.overlap_losses"), Some(0));
    }

    #[test]
    fn probe_records_partition_and_rdb_spans() {
        let hub = sim_core::Telemetry::new(4096);
        let mut c = ctrl(SchedulerKind::Final);
        c.set_probe(hub.probe());
        let w = c.write(Picos::ZERO, 0, 64);
        c.read(w.end + Picos::from_us(100), 0, 512);
        let (events, metrics) = hub.finish();
        assert!(events.iter().any(|e| e.track.group == "partition"));
        assert!(events
            .iter()
            .any(|e| e.track.group == "rdb" && e.name == "read"));
        assert!(events
            .iter()
            .any(|e| e.track.group == "rdb" && e.name == "program"));
        assert_eq!(metrics.histogram("pram.read").unwrap().count(), 1);
        assert_eq!(metrics.histogram("pram.write").unwrap().count(), 1);
    }

    #[test]
    fn phase_skips_fire_on_streaming() {
        let mut c = ctrl(SchedulerKind::Final);
        let mut t = Picos::ZERO;
        for i in 0..64u64 {
            let a = c.read(t, i * 512, 512);
            t = a.end;
        }
        let s = c.stats();
        assert!(s.pre_active_skips > 0, "RAB hits expected on a stream");
        assert_eq!(s.words_read, 64 * 16);
    }

    #[test]
    fn program_buffer_serializes_writes_to_one_module() {
        let mut c = ctrl(SchedulerKind::Final);
        // Two writes to the same module word region (same module = same
        // 32 B lane in the stripe): addr 0 and addr 1024 hit module 0.
        let w1 = c.write(Picos::ZERO, 0, 32);
        let w2 = c.write(w1.end, 1024, 32);
        // The second write waits for the first program (~10 us SET-only).
        assert!(w2.end > Picos::from_us(9), "{}", w2.end);
    }

    #[test]
    fn writes_to_different_modules_do_not_serialize() {
        let mut c = ctrl(SchedulerKind::Final);
        let w1 = c.write(Picos::ZERO, 0, 32); // module 0
        let w2 = c.write(w1.end, 32, 32); // module 1
        assert!(w2.end < Picos::from_us(2), "{}", w2.end);
    }

    #[test]
    fn selective_erase_turns_overwrites_set_only() {
        // Write a region, announce it, wait, overwrite: with Final the
        // overwrite should be SET-only (pre-erase hit); with Interleaving
        // it pays the full RESET+SET.
        let region = 0u64;
        let mut lat = Vec::new();
        for s in [SchedulerKind::Interleaving, SchedulerKind::Final] {
            let mut c = ctrl(s);
            c.write(Picos::ZERO, region, 32);
            c.announce_overwrites(Picos::ZERO, &[region]);
            // Long idle window, then back-to-back overwrites to the module.
            let t0 = Picos::from_ms(1);
            let w1 = c.write(t0, region, 32);
            let w2 = c.write(w1.end, 1024, 32); // same module, gated by pb
            lat.push(w2.end - t0);
        }
        // Final's first program was SET-only (10 us), Interleaving's was
        // an overwrite (18 us); the second write exposes the difference.
        assert!(
            lat[1] + Picos::from_us(6) < lat[0],
            "selective erase should cut ~8 us: interleaving={} final={}",
            lat[0],
            lat[1]
        );
    }

    #[test]
    fn preerase_requires_announcement() {
        let mut c = ctrl(SchedulerKind::Final);
        c.write(Picos::ZERO, 0, 32);
        // No announcement: overwrite pays full cost, no pre-erase hit.
        c.write(Picos::from_ms(1), 0, 32);
        assert_eq!(c.stats().preerase_hits, 0);
    }

    #[test]
    fn preerase_requires_idle_window() {
        let mut c = ctrl(SchedulerKind::Final);
        c.write(Picos::ZERO, 0, 32);
        c.announce_overwrites(Picos::ZERO, &[0]);
        // Overwrite immediately: no idle window for the background RESET.
        let w1 = c.write(Picos::ZERO, 0, 32);
        let _ = w1;
        assert_eq!(c.stats().preerase_hits, 0);
        assert!(c.stats().preerase_misses > 0);
    }

    #[test]
    fn energy_includes_device_and_controller() {
        let mut c = ctrl(SchedulerKind::Final);
        c.write(Picos::ZERO, 0, 512);
        c.read(Picos::from_ms(1), 0, 512);
        let e = c.energy();
        assert!(e.energy_of("ctrl.fpga") > Joules::ZERO);
        assert!(e.energy_of("pram.program") > Joules::ZERO);
        assert!(e.energy_of("pram.sense") > Joules::ZERO);
    }

    #[test]
    fn stats_count_requests_and_words() {
        let mut c = ctrl(SchedulerKind::Final);
        c.write(Picos::ZERO, 0, 512);
        c.read(Picos::from_ms(1), 0, 1024);
        let s = c.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.words_written, 16);
        assert_eq!(s.words_read, 32);
    }

    #[test]
    fn capacity_is_32_gib() {
        let c = ctrl(SchedulerKind::Final);
        assert_eq!(c.capacity_bytes(), 32u64 << 30);
    }

    #[test]
    fn small_config_round_trip() {
        let mut c = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 3));
        let data = vec![0x42u8; 256];
        let w = c.write_bytes(Picos::ZERO, 64, &data);
        let (_, back) = c.read_bytes(w.end + Picos::from_us(50), 64, 256);
        assert_eq!(back, data);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn wear_leveling_preserves_functional_contents() {
        let cfg = SubsystemConfig {
            wear_leveling: Some(4),
            ..SubsystemConfig::small(SchedulerKind::Final, 11)
        };
        let mut c = PramController::new(cfg);
        // Enough writes to force many gap moves; reads must always see
        // the latest data through the rotating remap.
        let mut t = Picos::ZERO;
        for round in 0..8u8 {
            for w in 0..24u64 {
                let data = vec![round.wrapping_add(w as u8).max(1); 32];
                t = c.write_bytes(t, w * 32, &data).end + Picos::from_us(20);
            }
        }
        assert!(c.stats().gap_moves > 0, "gap should have moved");
        for w in 0..24u64 {
            let (_, back) = c.read_bytes(t, w * 32, 32);
            assert_eq!(back, vec![7u8.wrapping_add(w as u8).max(1); 32], "word {w}");
        }
    }

    #[test]
    fn wear_leveling_costs_throughput() {
        let mut base = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 3));
        let cfg = SubsystemConfig {
            wear_leveling: Some(2), // aggressive interval for the test
            ..SubsystemConfig::small(SchedulerKind::Final, 3)
        };
        let mut wl = PramController::new(cfg);
        let mut tb = Picos::ZERO;
        let mut tw = Picos::ZERO;
        for i in 0..128u64 {
            tb = base.write(tb, (i % 8) * 32, 32).end;
            tw = wl.write(tw, (i % 8) * 32, 32).end;
        }
        // Ensure the background copies eventually drain: compare final
        // partition busy via subsequent read completion.
        let rb = base.read(tb + Picos::from_ms(1), 0, 32).end;
        let rw = wl.read(tw + Picos::from_ms(1), 0, 32).end;
        assert!(wl.stats().gap_moves >= 32);
        // Relocation traffic shows up as longer aggregate occupancy.
        assert!(rw >= rb - Picos::from_ms(1), "sanity");
    }

    #[test]
    fn write_pausing_improves_read_latency_under_write_pressure() {
        let run = |pausing: bool| {
            let cfg = SubsystemConfig {
                write_pausing: pausing,
                ..SubsystemConfig::paper(SchedulerKind::Interleaving, 5)
            };
            let mut c = PramController::new(cfg);
            // Kick off programs on every module, then read behind them.
            for i in 0..32u64 {
                c.write(Picos::ZERO, i * 32, 32);
            }
            let t0 = Picos::from_us(2);
            let mut sum = Picos::ZERO;
            for i in 0..32u64 {
                let a = c.read(t0, i * 32, 32);
                sum += a.latency_from(t0);
            }
            sum / 32
        };
        let queued = run(false);
        let paused = run(true);
        assert!(
            paused < queued / 2,
            "pausing should cut read latency under write pressure: {paused} vs {queued}"
        );
    }

    #[test]
    fn inert_fault_plan_changes_no_timing() {
        let drive = |c: &mut PramController| {
            let mut t = Picos::ZERO;
            for i in 0..32u64 {
                t = c.write(t, i * 64, 64).end;
            }
            for i in 0..32u64 {
                t = c.read(t + Picos::from_us(20), i * 64, 64).end;
            }
            t
        };
        let cfg = SubsystemConfig::small(SchedulerKind::Final, 9);
        let mut plain = PramController::new(cfg);
        let mut inert =
            PramController::new(cfg).with_faults(&sim_core::fault::FaultPlan::default());
        assert_eq!(drive(&mut plain), drive(&mut inert));
        let f = inert.fault_counters().unwrap();
        assert!(f.is_zero(), "inert plan must inject nothing: {f:?}");
    }

    #[test]
    fn seeded_faults_round_trip_and_count() {
        let plan = sim_core::fault::FaultPlan {
            pram: sim_core::fault::PramFaults {
                drift_rate: 0.05,
                read_disturb_rate: 0.02,
                program_failure_rate: 0.02,
                rdb_corruption_rate: 0.01,
                ..Default::default()
            },
            ..sim_core::fault::FaultPlan::seeded(3)
        };
        let mut c =
            PramController::new(SubsystemConfig::small(SchedulerKind::Final, 3)).with_faults(&plan);
        let data: Vec<u8> = (0..2048).map(|i| (i % 249 + 1) as u8).collect();
        let mut t = Picos::ZERO;
        t = c.write_bytes(t, 0, &data).end + Picos::from_us(100);
        // Re-read several times so disturb ramps and drift gets trials.
        for _ in 0..8 {
            let (a, back) = c.read_bytes(t, 0, 2048);
            assert_eq!(back, data, "injected faults must never corrupt data");
            t = a.end + Picos::from_us(10);
        }
        let f = *c.fault_counters().unwrap();
        assert!(f.injected > 0, "rates this high must inject: {f:?}");
        assert!(f.ecc_corrected > 0, "single flips should be corrected");
        let mut m = util::telemetry::MetricSet::new();
        sim_core::mem::MemoryBackend::collect_metrics(&c, &mut m);
        assert_eq!(m.counter("fault.injected"), Some(f.injected));
        assert_eq!(m.counter("pram.retries"), Some(f.retries));
        let mut ledger = sim_core::fault::FaultCounters::default();
        sim_core::mem::MemoryBackend::collect_faults(&c, &mut ledger);
        assert_eq!(ledger, f);
    }

    #[test]
    fn stuck_lines_retire_and_still_round_trip() {
        // Threshold 6 over 8 writes: the hot line wears out and retires
        // mid-hammer while its spare stays comfortably below threshold.
        let plan = sim_core::fault::FaultPlan {
            pram: sim_core::fault::PramFaults {
                stuck_at_threshold: 6,
                ..Default::default()
            },
            resilience: sim_core::fault::ResiliencePolicy {
                line_error_budget: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut c =
            PramController::new(SubsystemConfig::small(SchedulerKind::Final, 5)).with_faults(&plan);
        // Hammer one word past the wear threshold, then read it back.
        let mut t = Picos::ZERO;
        for round in 0..8u8 {
            t = c.write_bytes(t, 0, &[round + 1; 32]).end + Picos::from_us(30);
        }
        let (_, back) = c.read_bytes(t, 0, 32);
        assert_eq!(back, vec![8u8; 32], "retired line must serve latest data");
        let f = c.fault_counters().unwrap();
        assert!(f.retired_lines > 0, "worn line should have retired: {f:?}");
        assert!(f.retries > 0);
        // After retirement the spare is healthy: a fresh write+read pays
        // no further retries.
        let before = f.retries;
        let w = c.write_bytes(t + Picos::from_ms(1), 0, &[0x5A; 32]).end;
        let (_, back) = c.read_bytes(w + Picos::from_us(30), 0, 32);
        assert_eq!(back, vec![0x5A; 32]);
        assert_eq!(c.fault_counters().unwrap().retries, before);
    }

    #[test]
    fn retirement_composes_with_wear_leveling() {
        let plan = sim_core::fault::FaultPlan {
            pram: sim_core::fault::PramFaults {
                stuck_at_threshold: 6,
                ..Default::default()
            },
            resilience: sim_core::fault::ResiliencePolicy {
                line_error_budget: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let cfg = SubsystemConfig {
            wear_leveling: Some(4),
            ..SubsystemConfig::small(SchedulerKind::Final, 13)
        };
        let mut c = PramController::new(cfg).with_faults(&plan);
        let mut t = Picos::ZERO;
        for round in 0..10u8 {
            for w in 0..8u64 {
                let data = vec![round.wrapping_add(w as u8).max(1); 32];
                t = c.write_bytes(t, w * 32, &data).end + Picos::from_us(25);
            }
        }
        for w in 0..8u64 {
            let (_, back) = c.read_bytes(t, w * 32, 32);
            assert_eq!(back, vec![9u8.wrapping_add(w as u8).max(1); 32], "word {w}");
        }
        assert!(c.stats().gap_moves > 0, "leveling should be active");
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically_with_faults() {
        use sim_core::Snapshot;
        use util::json::{FromJson, ToJson};
        let plan = sim_core::fault::FaultPlan {
            pram: sim_core::fault::PramFaults {
                drift_rate: 0.05,
                read_disturb_rate: 0.02,
                program_failure_rate: 0.02,
                rdb_corruption_rate: 0.01,
                stuck_at_threshold: 6,
                ..Default::default()
            },
            resilience: sim_core::fault::ResiliencePolicy {
                line_error_budget: 1,
                ..Default::default()
            },
            ..sim_core::fault::FaultPlan::seeded(3)
        };
        let cfg = SubsystemConfig {
            wear_leveling: Some(4),
            ..SubsystemConfig::small(SchedulerKind::Final, 13)
        };
        let mk = || PramController::new(cfg).with_faults(&plan);
        let drive = |c: &mut PramController, mut t: Picos, rounds: std::ops::Range<u8>| {
            for _round in rounds {
                for w in 0..8u64 {
                    t = c.write(t, w * 64, 64).end + Picos::from_us(25);
                    t = c.read(t, w * 64, 64).end + Picos::from_us(5);
                }
            }
            t
        };

        let mut straight = mk();
        let t_end = drive(&mut straight, Picos::ZERO, 0..8);

        let mut recorded = mk();
        let t_mid = drive(&mut recorded, Picos::ZERO, 0..4);
        let img = recorded.snapshot();
        // Round-trip the image through JSON text, as record/replay does.
        let img = StateImage::from_json_str(&img.to_json_string()).unwrap();

        let mut resumed = mk();
        resumed.restore(&img).unwrap();
        let t_res = drive(&mut resumed, t_mid, 4..8);

        assert_eq!(t_res, t_end, "resumed clock must match the straight run");
        assert_eq!(resumed.stats(), straight.stats());
        assert_eq!(resumed.energy(), straight.energy());
        assert_eq!(
            resumed.fault_counters().unwrap(),
            straight.fault_counters().unwrap()
        );

        // Restoring onto a differently-configured controller fails loudly.
        let other = SubsystemConfig::small(SchedulerKind::Interleaving, 13);
        let mut wrong = PramController::new(other);
        assert!(matches!(
            wrong.restore(&img),
            Err(SnapshotError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn extensions_compose() {
        let cfg = SubsystemConfig {
            write_pausing: true,
            wear_leveling: Some(16),
            ..SubsystemConfig::small(SchedulerKind::Final, 21)
        };
        let mut c = PramController::new(cfg);
        let data = vec![0x3Cu8; 512];
        let w = c.write_bytes(Picos::ZERO, 1024, &data);
        let (_, back) = c.read_bytes(w.end + Picos::from_ms(1), 1024, 512);
        assert_eq!(back, data);
    }
}
