//! Global address decomposition across channels and modules.
//!
//! §III-B: "the server initiates a memory request based on **512 bytes per
//! channel (32 bytes per bank)**". The controller therefore stripes the
//! flat accelerator address space:
//!
//! * 512-byte *stripes* alternate between the two channels;
//! * within a stripe, consecutive 32-byte words go to consecutive modules
//!   (16 modules × 32 B = 512 B);
//! * within a module, consecutive words stripe across the 16 partitions
//!   (see [`pram::geometry::PramGeometry::decode`]).
//!
//! The net effect: a sequential stream engages both channels, all 32
//! modules and all partitions — maximum device parallelism, which is what
//! the multi-resource aware interleaving scheduler then exploits.

/// Where one word-aligned fragment of a request lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target {
    /// Channel index.
    pub channel: usize,
    /// Module index within the channel.
    pub module: usize,
    /// Byte address within the module's private space.
    pub module_addr: u64,
}

util::json_struct!(Target {
    channel,
    module,
    module_addr
});

/// A word-aligned fragment of a larger request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragment {
    /// Where the fragment lands.
    pub target: Target,
    /// Global byte address of the fragment start.
    pub global_addr: u64,
    /// Fragment length (1..=32, never crossing a word boundary).
    pub len: u32,
}

util::json_struct!(Fragment {
    target,
    global_addr,
    len
});

/// The controller's global striping function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    /// Number of channels (paper: 2).
    pub channels: usize,
    /// Modules per channel (paper: 16).
    pub modules_per_channel: usize,
    /// Word size in bytes (paper: 32).
    pub word_bytes: u64,
}

util::json_struct!(AddressMap {
    channels,
    modules_per_channel,
    word_bytes
});

impl Default for AddressMap {
    fn default() -> Self {
        Self::paper()
    }
}

impl AddressMap {
    /// The paper layout: 2 channels × 16 modules × 32 B words.
    pub const fn paper() -> Self {
        AddressMap {
            channels: 2,
            modules_per_channel: 16,
            word_bytes: 32,
        }
    }

    /// Bytes in one channel stripe (512 in the paper layout).
    pub fn stripe_bytes(&self) -> u64 {
        self.word_bytes * self.modules_per_channel as u64
    }

    /// Decomposes a global byte address.
    pub fn decompose(&self, addr: u64) -> Target {
        let stripe = addr / self.stripe_bytes();
        let channel = (stripe % self.channels as u64) as usize;
        let channel_stripe = stripe / self.channels as u64;
        let within = addr % self.stripe_bytes();
        let module = (within / self.word_bytes) as usize;
        let module_addr = channel_stripe * self.word_bytes + (addr % self.word_bytes);
        Target {
            channel,
            module,
            module_addr,
        }
    }

    /// Splits `[addr, addr+len)` into word-aligned fragments, each mapped
    /// to its target. Fragments never cross a 32 B word boundary, so each
    /// maps to exactly one device row.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn split(&self, addr: u64, len: u32) -> Vec<Fragment> {
        self.frags(addr, len).collect()
    }

    /// Allocation-free version of [`AddressMap::split`]: the request
    /// paths iterate fragments directly instead of materializing a `Vec`
    /// per request. (`AddressMap` is `Copy`, so the iterator owns its
    /// map and borrows nothing.)
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn frags(&self, addr: u64, len: u32) -> FragIter {
        assert!(len > 0, "zero-length request");
        FragIter {
            map: *self,
            cur: addr,
            end: addr + len as u64,
        }
    }

    /// The global capacity served by `module_capacity`-byte modules.
    pub fn total_capacity(&self, module_capacity: u64) -> u64 {
        module_capacity * self.channels as u64 * self.modules_per_channel as u64
    }

    /// The global word index of an address (used as the selective-erase
    /// bookkeeping key).
    pub fn word_index(&self, addr: u64) -> u64 {
        addr / self.word_bytes
    }
}

/// Iterator over the word-aligned fragments of one request (see
/// [`AddressMap::frags`]).
#[derive(Debug, Clone)]
pub struct FragIter {
    map: AddressMap,
    cur: u64,
    end: u64,
}

impl Iterator for FragIter {
    type Item = Fragment;

    fn next(&mut self) -> Option<Fragment> {
        if self.cur >= self.end {
            return None;
        }
        let word_end = (self.cur / self.map.word_bytes + 1) * self.map.word_bytes;
        let frag_end = word_end.min(self.end);
        let frag = Fragment {
            target: self.map.decompose(self.cur),
            global_addr: self.cur,
            len: (frag_end - self.cur) as u32,
        };
        self.cur = frag_end;
        Some(frag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stripe_is_512_bytes() {
        assert_eq!(AddressMap::paper().stripe_bytes(), 512);
    }

    #[test]
    fn sequential_words_cover_all_modules_then_switch_channel() {
        let m = AddressMap::paper();
        // First 512 B: channel 0, modules 0..16.
        for w in 0..16u64 {
            let t = m.decompose(w * 32);
            assert_eq!((t.channel, t.module), (0, w as usize));
            assert_eq!(t.module_addr, 0);
        }
        // Next 512 B: channel 1, modules 0..16, same module row.
        for w in 0..16u64 {
            let t = m.decompose(512 + w * 32);
            assert_eq!((t.channel, t.module), (1, w as usize));
            assert_eq!(t.module_addr, 0);
        }
        // Third stripe: back to channel 0, next module word.
        let t = m.decompose(1024);
        assert_eq!((t.channel, t.module, t.module_addr), (0, 0, 32));
    }

    #[test]
    fn decompose_keeps_intra_word_offset() {
        let m = AddressMap::paper();
        let t = m.decompose(1024 + 32 + 7);
        assert_eq!((t.channel, t.module), (0, 1));
        assert_eq!(t.module_addr, 32 + 7);
    }

    #[test]
    fn split_respects_word_boundaries() {
        let m = AddressMap::paper();
        let frags = m.split(30, 40); // crosses two word boundaries
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].len, 2); // 30..32
        assert_eq!(frags[1].len, 32); // 32..64
        assert_eq!(frags[2].len, 6); // 64..70
        assert_eq!(frags.iter().map(|f| f.len).sum::<u32>(), 40);
        // Adjacent fragments are contiguous.
        for w in frags.windows(2) {
            assert_eq!(w[0].global_addr + w[0].len as u64, w[1].global_addr);
        }
    }

    #[test]
    fn split_512b_touches_16_distinct_modules() {
        let m = AddressMap::paper();
        let frags = m.split(0, 512);
        assert_eq!(frags.len(), 16);
        let modules: std::collections::HashSet<_> = frags
            .iter()
            .map(|f| (f.target.channel, f.target.module))
            .collect();
        assert_eq!(modules.len(), 16);
        assert!(frags.iter().all(|f| f.target.channel == 0));
    }

    #[test]
    fn split_1kib_uses_both_channels() {
        let m = AddressMap::paper();
        let frags = m.split(0, 1024);
        let ch0 = frags.iter().filter(|f| f.target.channel == 0).count();
        let ch1 = frags.iter().filter(|f| f.target.channel == 1).count();
        assert_eq!((ch0, ch1), (16, 16));
    }

    #[test]
    fn total_capacity() {
        let m = AddressMap::paper();
        assert_eq!(m.total_capacity(1 << 30), 32u64 << 30);
    }

    #[test]
    #[should_panic(expected = "zero-length request")]
    fn zero_split_rejected() {
        AddressMap::paper().split(0, 0);
    }
}
