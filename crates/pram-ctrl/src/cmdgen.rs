//! Command generation with phase skipping (§III-B).
//!
//! "Our PRAM controller within the FPGA can selectively skip parts of the
//! three addressing phases … In cases where the target's upper row address
//! already exists in a RAB, the controller skips the corresponding
//! pre-active phase and directly enables the activate phase. If the target
//! data are ready on a RDB, the activate phase can be skipped."
//!
//! [`plan_read`] inspects the device's row-buffer state and decides which
//! phases a word access needs, plus which buffer (BA) to use. Buffer
//! allocation policy: prefer the buffer that already helps (hit), else
//! spread partitions across buffers (`partition % rdb_count`) so that
//! interleaved requests to different partitions occupy different RDBs —
//! the precondition for the Fig. 12 overlap.

use pram::buffers::{BufferId, RowBufferSet};
use pram::geometry::RowId;

/// The phases a word read must execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPlan {
    /// Data already sensed: go straight to the read phase.
    RdbHit {
        /// Buffer holding the row.
        ba: BufferId,
    },
    /// Upper row latched but row not sensed: activate + read.
    RabHit {
        /// Buffer whose RAB matches.
        ba: BufferId,
    },
    /// Cold: pre-active + activate + read.
    Full {
        /// Buffer chosen for the request.
        ba: BufferId,
    },
}

impl util::json::ToJson for ReadPlan {
    fn to_json(&self) -> util::json::Json {
        use util::json::Json;
        let (tag, ba) = match *self {
            ReadPlan::RdbHit { ba } => ("RdbHit", ba),
            ReadPlan::RabHit { ba } => ("RabHit", ba),
            ReadPlan::Full { ba } => ("Full", ba),
        };
        Json::Obj(vec![(
            tag.to_string(),
            Json::Obj(vec![("ba".to_string(), ba.to_json())]),
        )])
    }
}

impl util::json::FromJson for ReadPlan {
    fn from_json(v: &util::json::Json) -> Result<Self, util::json::JsonError> {
        use util::json::{field, Json, JsonError};
        let pairs = match v {
            Json::Obj(pairs) if pairs.len() == 1 => pairs,
            _ => return Err(JsonError::new("expected single-key ReadPlan object")),
        };
        let (tag, body) = &pairs[0];
        let ba = field(body, "ba")?;
        match tag.as_str() {
            "RdbHit" => Ok(ReadPlan::RdbHit { ba }),
            "RabHit" => Ok(ReadPlan::RabHit { ba }),
            "Full" => Ok(ReadPlan::Full { ba }),
            other => Err(JsonError::new(format!(
                "unknown ReadPlan variant {other:?}"
            ))),
        }
    }
}

impl ReadPlan {
    /// The buffer the plan uses.
    pub fn ba(self) -> BufferId {
        match self {
            ReadPlan::RdbHit { ba } | ReadPlan::RabHit { ba } | ReadPlan::Full { ba } => ba,
        }
    }

    /// Does the plan skip the pre-active phase?
    pub fn skips_pre_active(self) -> bool {
        !matches!(self, ReadPlan::Full { .. })
    }

    /// Does the plan skip the activate phase?
    pub fn skips_activate(self) -> bool {
        matches!(self, ReadPlan::RdbHit { .. })
    }
}

/// Chooses the cheapest viable plan for reading `row`.
///
/// `multi_buffer` reflects the scheduler: the bare-metal noop scheduler
/// uses a single row buffer (B0); the interleaving schedulers spread
/// partitions across all buffers.
pub fn plan_read(bufs: &RowBufferSet, row: RowId, lower_bits: u32, multi_buffer: bool) -> ReadPlan {
    if let Some(ba) = bufs.find_rdb(row) {
        return ReadPlan::RdbHit { ba };
    }
    let preferred = if multi_buffer {
        BufferId::from_index(row.partition.0 as usize % bufs.len())
    } else {
        BufferId::B0
    };
    // Skip the pre-active phase only when the *preferred* buffer already
    // holds the upper address: borrowing a different buffer's RAB would
    // collapse interleaved requests onto a single RDB and defeat the
    // Fig. 12 overlap.
    if bufs.rab_holds(preferred, row.upper(lower_bits)) {
        return ReadPlan::RabHit { ba: preferred };
    }
    ReadPlan::Full { ba: preferred }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::cell::WORD_BYTES;

    const LB: u32 = 6;

    #[test]
    fn cold_access_needs_all_phases() {
        let bufs = RowBufferSet::new(4);
        let plan = plan_read(&bufs, RowId::new(2, 10), LB, true);
        assert!(matches!(plan, ReadPlan::Full { .. }));
        assert!(!plan.skips_pre_active());
        assert!(!plan.skips_activate());
    }

    #[test]
    fn rab_hit_skips_pre_active() {
        let mut bufs = RowBufferSet::new(4);
        // Partition 2 prefers buffer B2 (2 % 4).
        let row = RowId::new(2, 10);
        bufs.latch_rab(BufferId::B2, row.upper(LB));
        // A *different* row in the same region still RAB-hits.
        let near = RowId::new(2, 11);
        let plan = plan_read(&bufs, near, LB, true);
        assert_eq!(plan, ReadPlan::RabHit { ba: BufferId::B2 });
        assert!(plan.skips_pre_active());
        assert!(!plan.skips_activate());
    }

    #[test]
    fn rab_match_in_foreign_buffer_does_not_skip() {
        let mut bufs = RowBufferSet::new(4);
        let row = RowId::new(2, 10); // prefers B2
        bufs.latch_rab(BufferId::B1, row.upper(LB));
        let plan = plan_read(&bufs, row, LB, true);
        assert_eq!(plan, ReadPlan::Full { ba: BufferId::B2 });
    }

    #[test]
    fn rdb_hit_skips_everything_but_the_burst() {
        let mut bufs = RowBufferSet::new(4);
        let row = RowId::new(0, 5);
        bufs.latch_rab(BufferId::B2, row.upper(LB));
        bufs.fill_rdb(BufferId::B2, row, [1; WORD_BYTES]);
        let plan = plan_read(&bufs, row, LB, true);
        assert_eq!(plan, ReadPlan::RdbHit { ba: BufferId::B2 });
        assert!(plan.skips_pre_active() && plan.skips_activate());
    }

    #[test]
    fn multi_buffer_spreads_partitions() {
        let bufs = RowBufferSet::new(4);
        let p0 = plan_read(&bufs, RowId::new(0, 0), LB, true).ba();
        let p1 = plan_read(&bufs, RowId::new(1, 0), LB, true).ba();
        let p2 = plan_read(&bufs, RowId::new(2, 0), LB, true).ba();
        let p4 = plan_read(&bufs, RowId::new(4, 0), LB, true).ba();
        assert_ne!(p0, p1);
        assert_ne!(p1, p2);
        assert_eq!(p0, p4); // wraps modulo 4 buffers
    }

    #[test]
    fn single_buffer_mode_pins_b0() {
        let bufs = RowBufferSet::new(4);
        for p in 0..8 {
            let plan = plan_read(&bufs, RowId::new(p, 3), LB, false);
            assert_eq!(plan.ba(), BufferId::B0);
        }
    }

    #[test]
    fn rdb_hit_preferred_over_rab_hit() {
        let mut bufs = RowBufferSet::new(4);
        let row = RowId::new(3, 9); // prefers B3
                                    // Both a RAB match in the preferred buffer and a full RDB hit in
                                    // B1 exist; the RDB hit wins (it skips more).
        bufs.latch_rab(BufferId::B3, row.upper(LB));
        bufs.latch_rab(BufferId::B1, row.upper(LB));
        bufs.fill_rdb(BufferId::B1, row, [0; WORD_BYTES]);
        assert_eq!(
            plan_read(&bufs, row, LB, true),
            ReadPlan::RdbHit { ba: BufferId::B1 }
        );
    }
}
