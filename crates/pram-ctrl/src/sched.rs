//! Scheduler policy selection (the Fig. 13 ablation axis).
//!
//! §V-A evaluates four subsystem schedulers on the multi-partition PRAM:
//!
//! * **Bare-metal** — a noop scheduler: requests are serviced strictly one
//!   at a time per channel, with a single row buffer, and overwrites pay
//!   the full RESET+SET latency.
//! * **Interleaving** — multi-resource aware interleaving: requests to
//!   different partitions/row buffers overlap, hiding data-transfer time
//!   behind partition access time (Fig. 12).
//! * **Selective-erasing** — soon-to-be-overwritten words are RESET in
//!   advance by programming all-zero data during idle windows, making the
//!   later overwrite SET-only.
//! * **Final** — both optimizations together; the DRAM-less default.

use std::fmt;

/// Which of the paper's scheduler variants the controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Noop scheduling, single row buffer, no pre-erase.
    BareMetal,
    /// Multi-resource aware interleaving only.
    Interleaving,
    /// Selective erasing only.
    SelectiveErasing,
    /// Interleaving + selective erasing (DRAM-less default).
    #[default]
    Final,
}

util::json_unit_enum!(SchedulerKind {
    BareMetal,
    Interleaving,
    SelectiveErasing,
    Final
});

impl SchedulerKind {
    /// All variants, in the order Fig. 13 plots them.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::BareMetal,
        SchedulerKind::Interleaving,
        SchedulerKind::SelectiveErasing,
        SchedulerKind::Final,
    ];

    /// Does the scheduler overlap requests across partitions/row buffers?
    pub fn interleaves(self) -> bool {
        matches!(self, SchedulerKind::Interleaving | SchedulerKind::Final)
    }

    /// Does the scheduler pre-erase announced overwrite targets?
    pub fn selective_erase(self) -> bool {
        matches!(self, SchedulerKind::SelectiveErasing | SchedulerKind::Final)
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::BareMetal => "Bare-metal",
            SchedulerKind::Interleaving => "Interleaving",
            SchedulerKind::SelectiveErasing => "Selective-erasing",
            SchedulerKind::Final => "Final",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix() {
        use SchedulerKind::*;
        assert!(!BareMetal.interleaves() && !BareMetal.selective_erase());
        assert!(Interleaving.interleaves() && !Interleaving.selective_erase());
        assert!(!SelectiveErasing.interleaves() && SelectiveErasing.selective_erase());
        assert!(Final.interleaves() && Final.selective_erase());
    }

    #[test]
    fn default_is_final() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Final);
    }

    #[test]
    fn labels_match_figure_13() {
        assert_eq!(SchedulerKind::BareMetal.to_string(), "Bare-metal");
        assert_eq!(SchedulerKind::Final.to_string(), "Final");
        assert_eq!(SchedulerKind::ALL.len(), 4);
    }
}
