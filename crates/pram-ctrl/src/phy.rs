//! The 400 MHz PRAM physical layer and the boot-time initializer.
//!
//! §III-B: "since the current memory interface generator (MIG) does not
//! support PRAM, we implement our own PRAM physical layer on a 28 nm
//! Xilinx FPGA (19K logic cells) … Our PHY addresses the differences of
//! operating frequency between PRAM and FPGA at 400 MHz."
//!
//! §V-B: "the initializer handles all PRAMs' boot-up process by enabling
//! auto initialization, calibrating on-die impedance tasks and setting up
//! the burst length and overlay window address."

use pram::timing::PramTiming;
use sim_core::time::Picos;

/// PHY cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyParams {
    /// Clock-domain-crossing latency added to each word operation (the
    /// FPGA fabric and the PRAM interface run from separate 400 MHz
    /// domains with an asynchronous FIFO between them).
    pub sync_latency: Picos,
    /// Device auto-initialization wait at boot.
    pub auto_init: Picos,
    /// On-die impedance (ZQ) calibration time per module.
    pub zq_calibration: Picos,
    /// Mode-register set time per register (burst length, OWBA …).
    pub mode_register_set: Picos,
}

util::json_struct!(PhyParams {
    sync_latency,
    auto_init,
    zq_calibration,
    mode_register_set
});

impl Default for PhyParams {
    fn default() -> Self {
        PhyParams {
            sync_latency: Picos::from_ns_f64(2.5), // one 400 MHz cycle
            auto_init: Picos::from_us(100),
            zq_calibration: Picos::from_us(1),
            mode_register_set: Picos::from_ns(100),
        }
    }
}

/// What the initializer did at boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitReport {
    /// Modules initialized.
    pub modules: usize,
    /// When the whole subsystem became operational.
    pub ready_at: Picos,
}

util::json_struct!(InitReport { modules, ready_at });

/// The PHY + initializer pair for one controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Phy {
    params: PhyParams,
}

util::json_struct!(Phy { params });

impl Phy {
    /// Creates a PHY with the given parameters.
    pub fn new(params: PhyParams) -> Self {
        Phy { params }
    }

    /// The parameters.
    pub fn params(&self) -> &PhyParams {
        &self.params
    }

    /// Runs the boot sequence for `modules` modules starting at `at`.
    ///
    /// Auto-initialization runs once for all modules in parallel; ZQ
    /// calibration and the two mode-register sets (burst length, OWBA)
    /// are issued per module over the shared command bus, so they
    /// serialize.
    pub fn boot(&self, at: Picos, modules: usize, timing: &PramTiming) -> InitReport {
        let mut t = at + self.params.auto_init;
        for _ in 0..modules {
            t += self.params.zq_calibration;
            // Burst-length MRS + OWBA MRS.
            t += self.params.mode_register_set * 2;
            // One command-bus slot per MRS packet.
            t += timing.tck() * 3;
        }
        InitReport {
            modules,
            ready_at: t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_scales_with_module_count() {
        let phy = Phy::new(PhyParams::default());
        let t = PramTiming::table2();
        let one = phy.boot(Picos::ZERO, 1, &t);
        let sixteen = phy.boot(Picos::ZERO, 16, &t);
        assert!(sixteen.ready_at > one.ready_at);
        assert_eq!(sixteen.modules, 16);
        // Auto-init dominates: the whole boot is ~100-120 us.
        assert!(sixteen.ready_at > Picos::from_us(100));
        assert!(sixteen.ready_at < Picos::from_us(200));
    }

    #[test]
    fn boot_respects_start_time() {
        let phy = Phy::default();
        let t = PramTiming::table2();
        let a = phy.boot(Picos::ZERO, 4, &t);
        let b = phy.boot(Picos::from_ms(1), 4, &t);
        assert_eq!(b.ready_at - a.ready_at, Picos::from_ms(1));
    }

    #[test]
    fn default_sync_latency_is_one_cycle() {
        assert_eq!(PhyParams::default().sync_latency, Picos::from_ns_f64(2.5));
    }
}
