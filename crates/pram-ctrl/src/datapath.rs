//! The MCU-facing register interface of the FPGA controller (Fig. 14).
//!
//! §V-B: "Our FPGA-based PRAM controller supports simple read and write
//! interfaces, which can be used by the server's MCU. They also provide
//! read and write data interfaces, which are mapped to **two 256-bit
//! datapath registers**. … The translator of our PRAM controller simply
//! exposes a **32-bit address and a 32-bit mode register**."
//!
//! [`McuPort`] is that register file: the server's MCU programs the
//! address and mode registers, fills (or drains) the 256-bit datapath
//! registers, and strobes the request — the translator underneath turns
//! it into three-phase transactions via [`PramController`].

use crate::controller::PramController;
use pram::cell::WORD_BYTES;
use sim_core::mem::Access;
use sim_core::time::Picos;

/// Operation selector held in the mode register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u32)]
pub enum Mode {
    /// Read one 32 B word into the read datapath register.
    #[default]
    Read = 0,
    /// Write the write datapath register's 32 B to memory.
    Write = 1,
}

util::json_unit_enum!(Mode { Read, Write });

/// Errors raised by the register protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortError {
    /// Strobed a write with no data latched in the datapath register.
    WriteDataNotLatched,
    /// The address register holds a word-misaligned address.
    Misaligned,
}

impl std::fmt::Display for PortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortError::WriteDataNotLatched => write!(f, "write strobed before latching data"),
            PortError::Misaligned => write!(f, "address register not 32-byte aligned"),
        }
    }
}

impl std::error::Error for PortError {}

/// The Fig. 14 register file in front of one PRAM controller.
///
/// # Examples
///
/// ```
/// use pram_ctrl::datapath::{McuPort, Mode};
/// use pram_ctrl::{PramController, SchedulerKind, SubsystemConfig};
/// use sim_core::Picos;
///
/// let ctrl = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 1));
/// let mut port = McuPort::new(ctrl);
/// port.set_address(0x40);
/// port.set_mode(Mode::Write);
/// port.latch_write_data([7u8; 32]);
/// let w = port.strobe(Picos::ZERO).unwrap();
/// port.set_mode(Mode::Read);
/// let r = port.strobe(w.end + Picos::from_ms(1)).unwrap();
/// assert_eq!(port.read_data(), [7u8; 32]);
/// assert!(r.end > w.end);
/// ```
#[derive(Debug)]
pub struct McuPort {
    ctrl: PramController,
    /// The translator's 32-bit address register.
    address: u32,
    /// The translator's 32-bit mode register.
    mode: Mode,
    /// 256-bit read datapath register.
    read_reg: [u8; WORD_BYTES],
    /// 256-bit write datapath register, valid once latched.
    write_reg: Option<[u8; WORD_BYTES]>,
    strobes: u64,
}

impl McuPort {
    /// Wraps a controller behind the register file.
    pub fn new(ctrl: PramController) -> Self {
        McuPort {
            ctrl,
            address: 0,
            mode: Mode::Read,
            read_reg: [0; WORD_BYTES],
            write_reg: None,
            strobes: 0,
        }
    }

    /// Programs the address register.
    pub fn set_address(&mut self, addr: u32) {
        self.address = addr;
    }

    /// Current address-register value.
    pub fn address(&self) -> u32 {
        self.address
    }

    /// Programs the mode register.
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Current mode-register value.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Latches 32 bytes into the write datapath register.
    pub fn latch_write_data(&mut self, data: [u8; WORD_BYTES]) {
        self.write_reg = Some(data);
    }

    /// Contents of the read datapath register (valid after a read
    /// strobe).
    pub fn read_data(&self) -> [u8; WORD_BYTES] {
        self.read_reg
    }

    /// Requests strobed so far.
    pub fn strobes(&self) -> u64 {
        self.strobes
    }

    /// The wrapped controller.
    pub fn controller(&self) -> &PramController {
        &self.ctrl
    }

    /// Consumes the port, returning the controller.
    pub fn into_controller(self) -> PramController {
        self.ctrl
    }

    /// Strobes the staged request at time `at`.
    ///
    /// # Errors
    ///
    /// [`PortError::Misaligned`] if the address register is not 32-byte
    /// aligned; [`PortError::WriteDataNotLatched`] if a write is strobed
    /// with an empty write datapath register.
    pub fn strobe(&mut self, at: Picos) -> Result<Access, PortError> {
        if !(self.address as u64).is_multiple_of(WORD_BYTES as u64) {
            return Err(PortError::Misaligned);
        }
        self.strobes += 1;
        match self.mode {
            Mode::Read => {
                let (a, data) = self
                    .ctrl
                    .read_bytes(at, self.address as u64, WORD_BYTES as u32);
                self.read_reg.copy_from_slice(&data);
                Ok(a)
            }
            Mode::Write => {
                let data = self
                    .write_reg
                    .take()
                    .ok_or(PortError::WriteDataNotLatched)?;
                Ok(self.ctrl.write_bytes(at, self.address as u64, &data))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::SubsystemConfig;
    use crate::sched::SchedulerKind;

    fn port() -> McuPort {
        McuPort::new(PramController::new(SubsystemConfig::small(
            SchedulerKind::Final,
            2,
        )))
    }

    #[test]
    fn register_write_read_round_trip() {
        let mut p = port();
        p.set_address(0x100);
        p.set_mode(Mode::Write);
        p.latch_write_data([0x5Au8; 32]);
        let w = p.strobe(Picos::ZERO).expect("write strobes");
        p.set_mode(Mode::Read);
        p.strobe(w.end + Picos::from_ms(1)).expect("read strobes");
        assert_eq!(p.read_data(), [0x5Au8; 32]);
        assert_eq!(p.strobes(), 2);
    }

    #[test]
    fn write_without_latched_data_is_an_error() {
        let mut p = port();
        p.set_address(0);
        p.set_mode(Mode::Write);
        assert_eq!(p.strobe(Picos::ZERO), Err(PortError::WriteDataNotLatched));
    }

    #[test]
    fn write_register_is_consumed_by_the_strobe() {
        let mut p = port();
        p.set_address(0);
        p.set_mode(Mode::Write);
        p.latch_write_data([1; 32]);
        p.strobe(Picos::ZERO).expect("first write");
        // Second strobe without re-latching fails.
        assert_eq!(
            p.strobe(Picos::from_ms(1)),
            Err(PortError::WriteDataNotLatched)
        );
    }

    #[test]
    fn misaligned_address_rejected() {
        let mut p = port();
        p.set_address(0x101);
        assert_eq!(p.strobe(Picos::ZERO), Err(PortError::Misaligned));
    }

    #[test]
    fn unwritten_words_read_zero() {
        let mut p = port();
        p.set_address(0x2000);
        p.set_mode(Mode::Read);
        p.strobe(Picos::ZERO).expect("read");
        assert_eq!(p.read_data(), [0u8; 32]);
    }
}
