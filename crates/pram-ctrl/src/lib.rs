#![warn(missing_docs)]

//! # pram-ctrl
//!
//! The FPGA-based PRAM controller of the DRAM-less paper (§III-B, §V),
//! modeled against the [`pram`] device crate.
//!
//! The controller is the paper's central hardware contribution. It:
//!
//! * translates plain read/write requests from the accelerator's MCU into
//!   LPDDR2-NVM **three-phase addressing** transactions ([`cmdgen`]),
//!   **selectively skipping** the pre-active phase on a RAB hit and the
//!   activate phase on an RDB hit;
//! * drives writes through the **overlay window / program buffer**
//!   register sequence of §V-B ([`controller`]);
//! * schedules requests with the two paper optimizations — *multi-resource
//!   aware interleaving* and *selective erasing* — or without them, per
//!   the Fig. 13 ablation ([`sched`]);
//! * brings modules up through an **initializer** and crosses the
//!   FPGA/PRAM frequency domains through a 400 MHz **PHY** ([`phy`]);
//! * optionally applies **start-gap wear leveling** ([`wear`]), the
//!   lifetime extension the paper folds in from related work.
//!
//! A firmware-managed alternative ([`firmware`]) reproduces the
//! "DRAM-less (firmware)" baseline: the same datapath, but every request
//! is first serviced by firmware running on a 3-core 500 MHz embedded CPU,
//! which is what Figs. 7 and 15 show to be the bottleneck.
//!
//! # Examples
//!
//! ```
//! use pram_ctrl::{PramController, SubsystemConfig, SchedulerKind};
//! use sim_core::{MemoryBackend, Picos};
//!
//! let cfg = SubsystemConfig::paper(SchedulerKind::Final, 1);
//! let mut ctrl = PramController::new(cfg);
//! let w = ctrl.write(Picos::ZERO, 0x1000, 512);
//! let r = ctrl.read(w.end, 0x1000, 512);
//! assert!(r.end > r.start);
//! ```

pub mod addr;
pub mod cmdgen;
pub mod controller;
pub mod datapath;
pub mod firmware;
pub mod phy;
pub mod resilience;
pub mod sched;
pub mod wear;

pub use addr::{AddressMap, Target};
pub use cmdgen::{plan_read, ReadPlan};
pub use controller::{CtrlStats, PramController, SubsystemConfig};
pub use datapath::{McuPort, Mode};
pub use firmware::{FirmwareController, FirmwareParams};
pub use phy::{InitReport, Phy, PhyParams};
pub use resilience::{EccModel, EccOutcome, RetireMap, RetryPolicy};
pub use sched::SchedulerKind;
pub use wear::StartGap;
