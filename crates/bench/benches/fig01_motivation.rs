//! Figure 1: performance degradation and energy overhead of a real
//! accelerated system (Hetero) against an idealized system whose whole
//! dataset fits in accelerator memory.
//!
//! Paper: performance degrades by up to 74% and energy grows ~9x on
//! average. Our reproduction shows the same shape; magnitudes are
//! recorded in EXPERIMENTS.md.

use dramless::SystemKind;

fn main() {
    let mut h = util::bench::Harness::new("fig01_motivation");
    bench::banner("Figure 1", "accelerated system vs ideal in-memory system");
    let suite = bench::suite();
    let r = bench::sweep_timed(
        &mut h,
        "sweep",
        &[SystemKind::Hetero, SystemKind::Ideal],
        &suite,
    );
    h.once("render", || {
        println!(
            "{:<10} {:>14} {:>14} {:>12} {:>12}",
            "kernel", "perf vs ideal", "degradation", "energy", "energy ratio"
        );
        let (mut perf_acc, mut e_acc) = (0.0f64, 0.0f64);
        for w in &suite {
            let h = r.get(SystemKind::Hetero, w.kernel).expect("hetero outcome");
            let i = r.get(SystemKind::Ideal, w.kernel).expect("ideal outcome");
            let rel = h.bandwidth() / i.bandwidth();
            let erel = h.total_energy().as_j() / i.total_energy().as_j();
            perf_acc += rel.ln();
            e_acc += erel.ln();
            println!(
                "{:<10} {:>13.1}% {:>13.1}% {:>11.2}mJ {:>11.1}x",
                w.kernel.label(),
                rel * 100.0,
                (1.0 - rel) * 100.0,
                h.total_energy().as_mj(),
                erel
            );
        }
        let n = suite.len() as f64;
        println!(
            "\naverage: performance {:.1}% of ideal (paper: ~26%), energy {:.1}x ideal (paper: ~9x)",
            (perf_acc / n).exp() * 100.0,
            (e_acc / n).exp()
        );
    });
    h.finish();
}
