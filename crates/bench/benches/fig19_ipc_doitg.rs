//! Figure 19: total-IPC time series under the write-intensive doitg
//! workload.
//!
//! Paper: storage-induced stalls are ~14.6x longer than under gemver for
//! the Integrated tiers; DRAM-less sustains the highest IPC.

use workloads::Kernel;

#[path = "fig18_ipc_gemver.rs"]
mod fig18;

fn main() {
    let mut h = util::bench::Harness::new("fig19_ipc_doitg");
    h.once("run", || {
        bench::banner("Figure 19", "total IPC over time, doitg (write-intensive)");
        fig18::run_ipc_series(Kernel::Doitg);
    });
    h.finish();
}
