//! Figure 18: total-IPC time series under the read-intensive gemver
//! workload for the key configurations.
//!
//! Paper: Integrated-SLC/MLC/TLC and PAGE-buffer show long zero-IPC
//! plateaus while pages stage through DRAM; DRAM-less and NOR-intf keep
//! the PEs fed (DRAM-less +292% IPC vs PAGE-buffer).

use dramless::{SystemKind, SystemParams};
use workloads::Kernel;

#[allow(dead_code)] // unused when included as a module by the sibling bench
fn main() {
    let mut h = util::bench::Harness::new("fig18_ipc_gemver");
    h.once("run", || {
        bench::banner("Figure 18", "total IPC over time, gemver (read-intensive)");
        run_ipc_series(Kernel::Gemver);
    });
    h.finish();
}

pub fn run_ipc_series(kernel: Kernel) {
    let p = SystemParams::default();
    let w = bench::suite()
        .into_iter()
        .find(|w| w.kernel == kernel)
        .expect("kernel in suite");
    let built = bench::built(&w);
    let kinds = [
        SystemKind::IntegratedSlc,
        SystemKind::IntegratedTlc,
        SystemKind::PageBuffer,
        SystemKind::NorIntf,
        SystemKind::DramLessFirmware,
        SystemKind::DramLess,
    ];
    let mut avg = Vec::new();
    for kind in kinds {
        let out = dramless::system::simulate_built(kind, &built, &p);
        // IPC per bucket = instructions / bucket cycles (1 GHz → ns).
        let bucket_cycles = out.exec.ipc_series.bucket_width().as_ns_f64();
        println!();
        bench::print_series(kind.label(), &out.exec.ipc_series, 16, bucket_cycles);
        avg.push((kind, out.total_ipc()));
    }
    println!("\naverage total IPC:");
    for (k, ipc) in &avg {
        println!("  {:<22} {ipc:.3}", k.label());
    }
    let dl = avg
        .iter()
        .find(|(k, _)| *k == SystemKind::DramLess)
        .expect("DL")
        .1;
    let pb = avg
        .iter()
        .find(|(k, _)| *k == SystemKind::PageBuffer)
        .expect("PB")
        .1;
    let paper = match kernel {
        Kernel::Gemver => "paper gemver: ~3.9x",
        Kernel::Doitg => "paper doitg: ~1.9x",
        _ => "paper: n/a",
    };
    println!("\nDRAM-less IPC = {:.1}x PAGE-buffer ({paper})", dl / pb);
}
