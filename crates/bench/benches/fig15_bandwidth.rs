//! Figure 15: data-processing bandwidth of all evaluated accelerated
//! systems, normalized to Hetero.
//!
//! Paper headlines: DRAM-less +93% vs Hetero, +47% vs Heterodirect,
//! +25% vs the firmware variant, ~+64% vs PAGE-buffer's best.

use dramless::SystemKind;

fn main() {
    let mut h = util::bench::Harness::new("fig15_bandwidth");
    bench::banner(
        "Figure 15",
        "bandwidth of the evaluated systems, normalized to Hetero",
    );
    let suite = bench::suite();
    let r = bench::sweep_timed(&mut h, "sweep", &SystemKind::EVALUATED, &suite);
    // The same grid on the analytic tier: the calibrated closed form
    // replaces the cycle-accurate execution phase. Its wall-clock lands
    // in the report as `sweep-analytic` so CI gates both tiers and the
    // perf-trajectory artifact can state the tier speedup.
    let ra = bench::sweep_timed_analytic(&mut h, "sweep-analytic", &SystemKind::EVALUATED, &suite);
    h.once("render", || {
        print!("{:<10}", "kernel");
        for k in SystemKind::EVALUATED {
            print!(" {:>9}", &k.label()[..k.label().len().min(9)]);
        }
        println!();
        for w in &suite {
            print!("{:<10}", w.kernel.label());
            for k in SystemKind::EVALUATED {
                let norm = r
                    .normalized_bandwidth(k, SystemKind::Hetero, w.kernel)
                    .unwrap_or(f64::NAN);
                print!(" {norm:>8.2}x");
            }
            println!();
        }
        println!("\ngeometric means vs Hetero:");
        for k in SystemKind::EVALUATED {
            println!(
                "  {:<22} {:>6.2}x",
                k.label(),
                r.mean_normalized_bandwidth(k, SystemKind::Hetero)
            );
        }
        use SystemKind::*;
        println!("\nheadline ratios (paper values in parentheses):");
        println!(
            "  DRAM-less vs Hetero           {:.2}x (1.93x)",
            r.mean_normalized_bandwidth(DramLess, Hetero)
        );
        println!(
            "  DRAM-less vs Heterodirect     {:.2}x (1.47x)",
            r.mean_normalized_bandwidth(DramLess, Heterodirect)
        );
        println!(
            "  DRAM-less vs firmware variant {:.2}x (1.25x)",
            r.mean_normalized_bandwidth(DramLess, DramLessFirmware)
        );
        println!(
            "  DRAM-less vs PAGE-buffer      {:.2}x (~1.64x)",
            r.mean_normalized_bandwidth(DramLess, PageBuffer)
        );
        println!(
            "  Heterodirect vs Hetero        {:.2}x (1.25x)",
            r.mean_normalized_bandwidth(Heterodirect, Hetero)
        );
        println!(
            "  PAGE-buffer vs Integrated-SLC {:.2}x (1.78x)",
            r.mean_normalized_bandwidth(PageBuffer, IntegratedSlc)
        );
        println!("\nanalytic-tier agreement (accurate value in parentheses):");
        println!(
            "  DRAM-less vs Hetero           {:.2}x ({:.2}x)",
            ra.mean_normalized_bandwidth(DramLess, Hetero),
            r.mean_normalized_bandwidth(DramLess, Hetero)
        );
        println!(
            "  Heterodirect vs Hetero        {:.2}x ({:.2}x)",
            ra.mean_normalized_bandwidth(Heterodirect, Hetero),
            r.mean_normalized_bandwidth(Heterodirect, Hetero)
        );
    });
    h.finish();
}
