//! Table III: characteristics of the evaluated workloads, measured from
//! the instrumented kernels.

fn main() {
    let mut h = util::bench::Harness::new("table3_workloads");
    h.once("run", || {
        bench::banner(
            "Table III",
            "workload characteristics (measured from real kernel runs)",
        );
        println!(
            "{:<10} {:>6} {:>11} {:>9} {:>9} {:>8} {:>12} {:>8}",
            "kernel", "n", "footprint", "input", "output", "write%", "instructions", "class"
        );
        for w in bench::suite() {
            let b = bench::built(&w);
            let c = b.character;
            let class = if w.kernel.is_read_intensive() {
                "read"
            } else if w.kernel.is_write_intensive() {
                "write"
            } else {
                "mixed"
            };
            println!(
                "{:<10} {:>6} {:>9}KB {:>7}KB {:>7}KB {:>7.1}% {:>12} {:>8}",
                w.kernel.label(),
                w.n,
                c.footprint / 1024,
                c.bytes_in / 1024,
                c.bytes_out / 1024,
                c.write_ratio * 100.0,
                c.instructions,
                class
            );
        }
        println!("\n(write intensiveness classified by output-per-input volume, as in §VI)");
    });
    h.finish();
}
