//! Figure 7: performance degradation of managing PRAM with traditional
//! SSD firmware, compared to an oracle (no-overhead hardware) controller.
//!
//! Paper: up to 80% degradation on data-intensive workloads.

use dramless::SystemKind;

fn main() {
    let mut h = util::bench::Harness::new("fig07_firmware_overhead");
    bench::banner("Figure 7", "firmware-managed PRAM vs oracle controller");
    let suite = bench::suite();
    let r = bench::sweep_timed(
        &mut h,
        "sweep",
        &[SystemKind::DramLess, SystemKind::DramLessFirmware],
        &suite,
    );
    h.once("render", || {
        println!(
            "{:<10} {:>16} {:>14}",
            "kernel", "fw perf vs oracle", "degradation"
        );
        let mut worst = (String::new(), 1.0f64);
        for w in &suite {
            let fw = r.get(SystemKind::DramLessFirmware, w.kernel).expect("fw");
            let hw = r.get(SystemKind::DramLess, w.kernel).expect("oracle");
            let rel = fw.bandwidth() / hw.bandwidth();
            if rel < worst.1 {
                worst = (w.kernel.label().to_string(), rel);
            }
            println!(
                "{:<10} {:>15.1}% {:>13.1}%",
                w.kernel.label(),
                rel * 100.0,
                (1.0 - rel) * 100.0
            );
        }
        println!(
            "\nworst case: {} at {:.1}% degradation (paper: up to 80%)",
            worst.0,
            (1.0 - worst.1) * 100.0
        );
    });
    h.finish();
}
