//! Table I: important configuration parameters of every evaluated
//! accelerated system.

use dramless::SystemKind;
use flash::{CellKind, FlashTiming};
use pram::PramTiming;
use storage::norintf::NorPramParams;

fn main() {
    let mut h = util::bench::Harness::new("table1_configs");
    h.once("run", || {
        bench::banner(
            "Table I",
            "configuration parameters of all evaluated systems",
        );
        println!(
            "{:<22} {:>6} {:>9} {:>10} {:>11} {:>11}",
            "system", "hetero", "int.DRAM", "read(us)", "write(us)", "erase(us)"
        );
        let pram = PramTiming::table2();
        let nor = NorPramParams::default();
        for k in SystemKind::TABLE1 {
            let (r, w, e): (String, String, String) = match k {
                SystemKind::Hetero | SystemKind::Heterodirect => {
                    let t = FlashTiming::table1(CellKind::Mlc);
                    (f(t.t_read), f(t.t_program), f(t.t_erase))
                }
                SystemKind::HeteroPram | SystemKind::HeterodirectPram => (
                    "0.1".into(),
                    format!(
                        "{}/{}",
                        pram.t_program_set.as_us_f64(),
                        pram.t_program_overwrite().as_us_f64()
                    ),
                    "N/A".into(),
                ),
                SystemKind::NorIntf => (
                    format!("{}(ns)", nor.t_access.as_ns_f64()),
                    f(nor.t_program),
                    "N/A".into(),
                ),
                SystemKind::IntegratedSlc => tier(CellKind::Slc),
                SystemKind::IntegratedMlc => tier(CellKind::Mlc),
                SystemKind::IntegratedTlc => tier(CellKind::Tlc),
                SystemKind::PageBuffer | SystemKind::DramLess => (
                    "0.1".into(),
                    format!(
                        "{}/{}",
                        pram.t_program_set.as_us_f64(),
                        pram.t_program_overwrite().as_us_f64()
                    ),
                    "N/A".into(),
                ),
                _ => unreachable!(),
            };
            println!(
                "{:<22} {:>6} {:>9} {:>10} {:>11} {:>11}",
                k.label(),
                if k.is_heterogeneous() { "yes" } else { "no" },
                if k.has_internal_dram() { "yes" } else { "no" },
                r,
                w,
                e
            );
        }
        println!(
            "\n(NOR-intf read reported in ns: see EXPERIMENTS.md on the Table I unit ambiguity)"
        );
    });
    h.finish();
}

fn f(t: sim_core::Picos) -> String {
    format!("{}", t.as_us_f64())
}

fn tier(kind: CellKind) -> (String, String, String) {
    let t = FlashTiming::table1(kind);
    (f(t.t_read), f(t.t_program), f(t.t_erase))
}
