//! Figure 20: overall core power and cumulative energy over time for
//! gemver (read-intensive).
//!
//! Paper: NOR-intf draws ~14% less PE power (idle .L/.S/.M units) but
//! burns more total energy than DRAM-less due to its longer runtime;
//! Integrated-SLC and PAGE-buffer stretch completion and cost 7x / 1.9x
//! the energy of DRAM-less.

use dramless::{SystemKind, SystemParams};
use workloads::Kernel;

#[allow(dead_code)] // unused when included as a module by the sibling bench
fn main() {
    let mut h = util::bench::Harness::new("fig20_power_gemver");
    h.once("run", || {
        bench::banner("Figure 20", "core power + total energy over time, gemver");
        run_power_series(Kernel::Gemver);
    });
    h.finish();
}

pub fn run_power_series(kernel: Kernel) {
    let p = SystemParams::default();
    let w = bench::suite()
        .into_iter()
        .find(|w| w.kernel == kernel)
        .expect("kernel in suite");
    let built = bench::built(&w);
    let kinds = [
        SystemKind::IntegratedSlc,
        SystemKind::PageBuffer,
        SystemKind::NorIntf,
        SystemKind::DramLess,
    ];
    println!("\n-- PE power over time (W) --");
    let mut rows = Vec::new();
    for kind in kinds {
        let out = dramless::system::simulate_built(kind, &built, &p);
        let bucket_secs = out.exec.power_series.bucket_width().as_secs_f64();
        println!();
        bench::print_series(kind.label(), &out.exec.power_series, 16, bucket_secs);
        rows.push((kind, out.exec.total_time, out.total_energy()));
    }
    println!("\n-- completion time and total energy --");
    for (k, t, e) in &rows {
        println!(
            "  {:<22} completes {:>10}   total {:>10}",
            k.label(),
            format!("{t}"),
            format!("{e}")
        );
    }
    let dl = rows
        .iter()
        .find(|(k, _, _)| *k == SystemKind::DramLess)
        .expect("DL");
    for (k, _, e) in &rows {
        if *k != SystemKind::DramLess {
            println!(
                "  {} energy = {:.1}x DRAM-less",
                k.label(),
                e.as_j() / dl.2.as_j()
            );
        }
    }
}
