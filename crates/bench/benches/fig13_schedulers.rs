//! Figure 13: PRAM subsystem scheduler ablation — Bare-metal vs
//! Interleaving vs Selective-erasing vs Final, with per-workload write
//! ratios (the circles).
//!
//! Paper: Interleaving up to +54% (trmm) but ~zero on adi/floyd/jaco1D;
//! Selective-erasing +57% average on the write-heavy set; Final +77%
//! average over Bare-metal.

use dramless::system::simulate_dramless_scheduler;
use pram_ctrl::SchedulerKind;

fn main() {
    let mut h = util::bench::Harness::new("fig13_schedulers");
    h.once("run", || {
        bench::banner("Figure 13", "interleaving and selective erasing ablation");
        let suite = bench::suite();
        let p = bench::params();
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>9} {:>8}",
            "kernel", "Bare(MB/s)", "Interleave", "Sel-erase", "Final", "write%"
        );
        let mut acc = [0.0f64; 3];
        for w in &suite {
            let built = bench::built(w);
            let bw: Vec<f64> = SchedulerKind::ALL
                .iter()
                .map(|&s| simulate_dramless_scheduler(s, &built, &p).bandwidth() / 1e6)
                .collect();
            println!(
                "{:<10} {:>12.1} {:>11.2}x {:>11.2}x {:>8.2}x {:>7.1}%",
                w.kernel.label(),
                bw[0],
                bw[1] / bw[0],
                bw[2] / bw[0],
                bw[3] / bw[0],
                built.character.write_ratio * 100.0
            );
            for i in 0..3 {
                acc[i] += (bw[i + 1] / bw[0]).ln();
            }
        }
        let n = suite.len() as f64;
        println!(
            "\ngeo-mean over Bare-metal: Interleaving +{:.0}%, Selective-erasing +{:.0}%, Final +{:.0}% (paper: Final +77%)",
            ((acc[0] / n).exp() - 1.0) * 100.0,
            ((acc[1] / n).exp() - 1.0) * 100.0,
            ((acc[2] / n).exp() - 1.0) * 100.0
        );
    });
    h.finish();
}
