//! Figure 21: overall core power and cumulative energy over time for
//! doitg (write-intensive).
//!
//! Paper: NOR-intf takes ~4x PAGE-buffer's execution time; DRAM-less
//! completes 50-88% sooner than every alternative.

use workloads::Kernel;

#[path = "fig20_power_gemver.rs"]
mod fig20;

fn main() {
    let mut h = util::bench::Harness::new("fig21_power_doitg");
    h.once("run", || {
        bench::banner("Figure 21", "core power + total energy over time, doitg");
        fig20::run_power_series(Kernel::Doitg);
    });
    h.finish();
}
