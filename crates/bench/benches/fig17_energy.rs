//! Figure 17: energy decomposition of all data-processing activities,
//! grouped by component class, averaged over the suite.

use dramless::SystemKind;

fn main() {
    let mut h = util::bench::Harness::new("fig17_energy");
    bench::banner(
        "Figure 17",
        "energy decomposition by component (mJ, suite average)",
    );
    let suite = bench::suite();
    let r = bench::sweep_timed(&mut h, "sweep", &SystemKind::EVALUATED, &suite);
    h.once("render", || {
        let groups: [(&str, &[&str]); 7] = [
            ("PE", &["pe."]),
            ("host", &["host."]),
            ("NVM", &["pram.", "flash.", "nor.", "pram-ssd."]),
            ("DRAM", &["dram."]),
            ("PCIe", &["pcie."]),
            ("ctrl/fw", &["ctrl.", "fw.", "ssd."]),
            ("idle", &["platform."]),
        ];
        print!("{:<22}", "system");
        for (g, _) in groups {
            print!(" {:>8}", g);
        }
        println!(" {:>9}", "total");
        for k in SystemKind::EVALUATED {
            let mut sums = vec![0.0f64; groups.len()];
            let mut total = 0.0;
            let mut n = 0u32;
            for o in &r.outcomes {
                if o.system == k {
                    for (i, (_, prefixes)) in groups.iter().enumerate() {
                        for p in *prefixes {
                            sums[i] += o.energy.energy_of_prefix(p).as_mj();
                        }
                    }
                    total += o.total_energy().as_mj();
                    n += 1;
                }
            }
            let n = n as f64;
            print!("{:<22}", k.label());
            for s in &sums {
                print!(" {:>8.2}", s / n);
            }
            println!(" {:>9.2}", total / n);
        }
        use SystemKind::*;
        println!(
            "\nDRAM-less consumes {:.0}% of Heterodirect's energy (paper: 19%) and {:.0}% of PAGE-buffer's (paper: ~24%)",
            r.mean_relative_energy(DramLess, Heterodirect) * 100.0,
            r.mean_relative_energy(DramLess, PageBuffer) * 100.0
        );
    });
    h.finish();
}
