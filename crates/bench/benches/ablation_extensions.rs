//! Ablation of the §VII extension mechanisms folded into the controller:
//!
//! * **start-gap wear leveling** [68] — lifetime uniformity bought with
//!   relocation copies (one per ψ writes);
//! * **write pausing** [66] — read latency under write pressure bought
//!   with stretched programs;
//! * **selective erasing vs partition erase** — §V-A's observation that
//!   a 60 ms erase blocks the whole partition while the word-granular
//!   RESET does not.

use dramless::system::simulate_dramless_scheduler;
use pram::{PartitionId, PramModule, PramTiming, RowId};
use pram_ctrl::{PramController, SchedulerKind, SubsystemConfig};
use sim_core::{MemoryBackend, Picos};
use workloads::Kernel;

fn main() {
    let mut h = util::bench::Harness::new("ablation_extensions");
    h.once("run", || {
        bench::banner("Ablation", "wear leveling, write pausing, erase blocking");
        wear_leveling();
        write_pausing();
        erase_blocking();
        dsp_intrinsics();
        dramless_with_extensions();
    });
    h.finish();
}

fn wear_leveling() {
    println!("\n-- start-gap wear leveling (write-only stream, 8 hot words) --");
    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "psi", "stream time", "gap moves", "overhead"
    );
    let base = run_wear(None);
    for interval in [512u64, 128, 32, 8] {
        let (t, moves) = run_wear(Some(interval));
        println!(
            "{:>10} {:>14} {:>12} {:>11.1}%",
            interval,
            format!("{t}"),
            moves,
            (t.as_ns_f64() / base.0.as_ns_f64() - 1.0) * 100.0
        );
    }
    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "off",
        format!("{}", base.0),
        0,
        "baseline"
    );
}

fn run_wear(interval: Option<u64>) -> (Picos, u64) {
    let cfg = SubsystemConfig {
        wear_leveling: interval,
        ..SubsystemConfig::paper(SchedulerKind::Final, 17)
    };
    let mut c = PramController::new(cfg);
    let mut t = Picos::ZERO;
    for i in 0..1024u64 {
        t = c.write(t, (i % 8) * 32, 32).end + Picos::from_us(2);
    }
    // Wait for background relocations to drain before timing the tail.
    let done = c.read(t + Picos::from_ms(2), 0, 32).end;
    (done, c.stats().gap_moves)
}

fn write_pausing() {
    println!("\n-- write pausing: read latency behind in-flight programs --");
    for pausing in [false, true] {
        let cfg = SubsystemConfig {
            write_pausing: pausing,
            ..SubsystemConfig::paper(SchedulerKind::Interleaving, 5)
        };
        let mut c = PramController::new(cfg);
        for i in 0..32u64 {
            c.write(Picos::ZERO, i * 32, 32);
        }
        let t0 = Picos::from_us(2);
        let mut sum = Picos::ZERO;
        for i in 0..32u64 {
            sum += c.read(t0, i * 32, 32).latency_from(t0);
        }
        println!(
            "  pausing {:5}: mean read latency {} (programs in flight on every module)",
            pausing,
            sum / 32
        );
    }
}

fn erase_blocking() {
    println!("\n-- partition erase vs selective erasing (§V-A) --");
    let mut m = PramModule::new(PramTiming::table2(), 3);
    // Program a word, then reclaim it two ways and measure how long the
    // partition is unavailable to a subsequent read.
    use pram::overlay::regs;
    let row = RowId::new(0, 0);
    let addr = m.geometry().encode(row);
    let t = m.write_overlay(Picos::ZERO, regs::COMMAND_CODE, &[0xE9]);
    let t = m.write_overlay(t.end, regs::DATA_ADDRESS, &addr.to_le_bytes());
    let t = m.write_overlay(t.end, regs::PROGRAM_BUFFER, &[9u8; 32]);
    let prog = m.execute_program(t.end);

    let mut erased = m.clone();
    let e = erased.erase_partition(prog.end, PartitionId(0));
    println!("  partition erase: blocks partition for {}", e.duration());

    let mut selective = m.clone();
    let s = selective.pre_erase(prog.end, row);
    println!("  selective erase: blocks partition for {}", s.duration());
    println!(
        "  ratio: {}x (paper: erase is ~3000x an overwrite and blocks all requests)",
        e.duration() / s.duration()
    );
}

fn dramless_with_extensions() {
    println!("\n-- end-to-end: DRAM-less with extensions on gemver --");
    let p = bench::params();
    let w = bench::suite()
        .into_iter()
        .find(|w| w.kernel == Kernel::Gemver)
        .expect("gemver");
    let built = bench::built(&w);
    let base = simulate_dramless_scheduler(SchedulerKind::Final, &built, &p);
    println!(
        "  Final scheduler        : {:.1} MB/s in {}",
        base.bandwidth() / 1e6,
        base.total_time
    );
    println!("  (write pausing and start-gap compose with the Final scheduler;");
    println!("   their costs/benefits at subsystem level are shown above)");
}

/// §VI: the ported Polybench embeds DSP intrinsics (multi-way FP
/// multiply/add, 16-bit integer intrinsics). This ablation compares the
/// optimized kernels against scalarized variants on the DRAM-less
/// platform: compute-bound kernels feel it, memory-bound ones do not.
fn dsp_intrinsics() {
    println!("\n-- DSP intrinsics (optimized vs scalarized kernels, DRAM-less) --");
    let p = bench::params();
    for kernel in [Kernel::Doitg, Kernel::Gemver, Kernel::Trisolv] {
        let w = bench::suite()
            .into_iter()
            .find(|w| w.kernel == kernel)
            .expect("kernel in suite");
        // This ablation rewrites the traces, so it clones the cached
        // build instead of mutating the shared one.
        let mut built = (*bench::built(&w)).clone();
        let opt = simulate_dramless_scheduler(SchedulerKind::Final, &built, &p);
        built.traces = built.traces.iter().map(|t| t.scalarized()).collect();
        let scalar = simulate_dramless_scheduler(SchedulerKind::Final, &built, &p);
        println!(
            "  {:<8} optimized {:>10}  scalarized {:>10}  intrinsics save {:>5.1}%",
            kernel.label(),
            format!("{}", opt.total_time),
            format!("{}", scalar.total_time),
            (1.0 - opt.total_time.as_ns_f64() / scalar.total_time.as_ns_f64()) * 100.0
        );
    }
}
