//! Table II: characterized PRAM parameters — printed from the model and
//! asserted equal to the paper's values.

use pram::{BurstLen, PramTiming};
use sim_core::Picos;

fn main() {
    let mut h = util::bench::Harness::new("table2_pram_params");
    h.once("run", || {
        bench::banner("Table II", "characterized PRAM parameters");
        let t = PramTiming::table2();
        println!(
            "RL (cycle)      {:>8}   tRP (cycle)   {:>8}   tDQSS (ns)  {:.2}-{:.2}",
            t.rl_cycles,
            t.trp_cycles,
            t.tdqss_min.as_ns_f64(),
            t.tdqss_max.as_ns_f64()
        );
        println!(
            "WL (cycle)      {:>8}   tRCD (ns)     {:>8}   tWRA (ns)   {:>8}",
            t.wl_cycles,
            t.trcd.as_ns_f64(),
            t.twra.as_ns_f64()
        );
        println!(
            "tCK (ns)        {:>8}   tDQSCK (ns)   {:.1}-{:.1}   tBURST      4/8/16 (BL4/8/16)",
            t.tck().as_ns_f64(),
            t.tdqsck_min.as_ns_f64(),
            t.tdqsck_max.as_ns_f64()
        );
        println!(
            "RAB             {:>8}   RDB           32B,{}RDBs  PRAM write  {}-{} us",
            t.rab_count,
            t.rdb_count,
            t.t_program_set.as_us_f64(),
            t.t_program_overwrite().as_us_f64()
        );
        println!("Channels               2   Packages            16   Partitions        16");
        println!();
        println!(
            "derived: nominal three-phase read = {} (paper: ~100 ns)",
            t.nominal_read()
        );
        println!(
            "derived: erase = {} = {}x an overwrite (paper: ~3000x)",
            t.t_erase,
            t.t_erase / t.t_program_overwrite()
        );

        // Assertions: the model must carry the paper's exact values.
        assert_eq!(t.rl_cycles, 6);
        assert_eq!(t.wl_cycles, 3);
        assert_eq!(t.trp_cycles, 3);
        assert_eq!(t.tck(), Picos::from_ns_f64(2.5));
        assert_eq!(t.trcd, Picos::from_ns(80));
        assert_eq!(t.twra, Picos::from_ns(15));
        assert_eq!(t.tburst(BurstLen::Bl4), Picos::from_ns(10));
        assert_eq!(t.tburst(BurstLen::Bl16), Picos::from_ns(40));
        assert_eq!(t.t_program_set, Picos::from_us(10));
        assert_eq!(t.t_program_overwrite(), Picos::from_us(18));
        assert_eq!((t.rab_count, t.rdb_count), (4, 4));
        println!("\nall Table II values verified against the model.");
    });
    h.finish();
}
