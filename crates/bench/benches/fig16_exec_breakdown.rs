//! Figure 16: execution-time decomposition of every evaluated system,
//! averaged over the suite: kernel offload, input staging, compute,
//! memory/storage access, and result write-back.

use dramless::SystemKind;

fn main() {
    let mut h = util::bench::Harness::new("fig16_exec_breakdown");
    bench::banner(
        "Figure 16",
        "execution time decomposition (fractions of total)",
    );
    let suite = bench::suite();
    let r = bench::sweep_timed(&mut h, "sweep", &SystemKind::EVALUATED, &suite);
    h.once("render", || {
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
            "system", "offload", "stage-in", "compute", "memory", "stage-out", "avg total"
        );
        for k in SystemKind::EVALUATED {
            let mut f = [0.0f64; 5];
            let mut total = 0.0;
            let mut n = 0u32;
            for o in &r.outcomes {
                if o.system == k {
                    let fr = o.breakdown.fractions();
                    for i in 0..5 {
                        f[i] += fr[i];
                    }
                    total += o.total_time.as_ms_f64();
                    n += 1;
                }
            }
            let n = n as f64;
            println!(
                "{:<22} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>10.2}ms",
                k.label(),
                f[0] / n * 100.0,
                f[1] / n * 100.0,
                f[2] / n * 100.0,
                f[3] / n * 100.0,
                f[4] / n * 100.0,
                total / n
            );
        }
        println!("\n(heterogeneous systems demand-page the SSD during execution, so their");
        println!(" storage traffic appears under `memory` in addition to the staging phases)");
    });
    h.finish();
}
