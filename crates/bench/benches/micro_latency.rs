//! Micro-benchmarks of the PRAM controller primitives — the §V-A
//! claims at operation granularity: interleaving's latency hiding and
//! selective erasing's write-latency cut, plus raw device phase costs
//! and the wall-clock cost of the simulator itself.

use pram::{BufferId, BurstLen, PramModule, PramTiming, RowId};
use pram_ctrl::{PramController, SchedulerKind, SubsystemConfig};
use sim_core::{MemoryBackend, Picos};
use util::bench::Harness;

fn main() {
    // Not a wall-clock benchmark: report the *simulated* latencies the
    // model produces for the paper's key operations, then benchmark the
    // simulator's own throughput below.
    let mut m = PramModule::new(PramTiming::table2(), 1);
    let row = RowId::new(0, 0);
    let lb = m.geometry().lower_row_bits;
    let pre = m.pre_active(Picos::ZERO, BufferId::B0, row.upper(lb));
    let act = m.activate(pre.end, BufferId::B0, row.lower(lb));
    let (rd, _) = m.read_burst(act.end, Picos::ZERO, BufferId::B0, 0, BurstLen::Bl16);
    println!("simulated three-phase read: {}", rd.end);

    for s in [SchedulerKind::BareMetal, SchedulerKind::Final] {
        let mut ctrl = PramController::new(SubsystemConfig::paper(s, 3));
        let mut t = Picos::ZERO;
        for i in 0..256u64 {
            t = ctrl.read(t, i * 512, 512).end;
        }
        println!("simulated 128 KiB stream read under {}: {}", s.label(), t);
    }

    let mut h = Harness::new("micro_latency");
    {
        let mut ctrl = PramController::new(SubsystemConfig::paper(SchedulerKind::Final, 3));
        let mut t = Picos::ZERO;
        let mut addr = 0u64;
        h.bench("controller_read_512B", || {
            t = ctrl.read(t, addr, 512).end;
            addr = (addr + 512) % (1 << 28);
        });
    }
    {
        let mut ctrl = PramController::new(SubsystemConfig::paper(SchedulerKind::Final, 3));
        let mut t = Picos::ZERO;
        let mut addr = 0u64;
        h.bench("controller_write_512B", || {
            t = ctrl.write(t, addr, 512).end;
            addr = (addr + 512) % (1 << 28);
        });
    }
    {
        let mut m = PramModule::new(PramTiming::table2(), 1);
        let lb = m.geometry().lower_row_bits;
        let mut t = Picos::ZERO;
        let mut r = 0u32;
        h.bench("device_three_phase_read", || {
            let row = RowId::new((r % 16) as u8, r / 16);
            let pre = m.pre_active(t, BufferId::B0, row.upper(lb));
            let act = m.activate(pre.end, BufferId::B0, row.lower(lb));
            let (rd, _) = m.read_burst(act.end, Picos::ZERO, BufferId::B0, 0, BurstLen::Bl16);
            t = rd.end;
            r = (r + 1) % (1 << 20);
        });
    }
    h.finish();
}
