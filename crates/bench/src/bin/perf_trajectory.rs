//! `perf-trajectory` — the CI performance-trajectory artifact.
//!
//! Runs the smoke sweep (every Table I preset × the full kernel suite
//! at `DRAMLESS_SCALE`) on **both fidelity tiers** and writes one JSON
//! snapshot per CI run — `BENCH_<date>.json` — recording what the
//! repository's simulation throughput looked like on that day:
//!
//! * per tier: trace-build and cell-execution wall-clock, cells/second;
//! * the analytic ÷ accurate cells/second speedup;
//! * the tiers' *fidelity* delta over the whole grid (geometric-mean
//!   and worst-case drift of total time and energy), so a calibration
//!   regression shows up in the trajectory next to a throughput one.
//!
//! CI uploads the file as an artifact; comparing artifacts across runs
//! gives the perf trajectory without committing measurements to git.
//!
//! ```sh
//! perf-trajectory BENCH_$(date -u +%F).json $(date -u +%F)
//! ```

use dramless::analytic::{axes_key, CalibrationTable};
use dramless::{FidelityTier, SuiteResult, SystemId, SystemKind, SystemSpec};
use util::json::ToJson;
use workloads::{Scale, Workload};

/// One tier's throughput numbers.
#[derive(Debug, Clone, PartialEq)]
struct TierRow {
    /// `"accurate"` or `"analytic"`.
    tier: String,
    /// Worker threads this row's sweep ran on.
    threads: u64,
    /// Trace-build phase wall-clock (ns) — near-zero when warm.
    build_ns: u64,
    /// Cell-execution wall-clock (ns).
    execute_ns: u64,
    /// Cells per second of execution wall-clock.
    cells_per_sec: f64,
}

util::json_struct!(TierRow {
    tier,
    threads,
    build_ns,
    execute_ns,
    cells_per_sec
});

/// One preset's tier agreement against its committed calibration bound —
/// the per-preset breakdown of the global [`FidelityDelta`], so a drift
/// regression names the responsible preset instead of hiding inside the
/// grid-wide max.
#[derive(Debug, Clone, PartialEq)]
struct PresetDelta {
    /// Preset label (Table I name).
    preset: String,
    /// Calibration axes key the bounds come from.
    key: String,
    /// Worst |analytic/accurate − 1| for total time over the suite.
    max_time_drift: f64,
    /// Worst |analytic/accurate − 1| for total energy over the suite.
    max_energy_drift: f64,
    /// Committed fractional bound on time drift (calibration.json).
    time_bound: f64,
    /// Committed fractional bound on energy drift (calibration.json).
    energy_bound: f64,
    /// Whether both drifts sit within their committed bounds.
    within_bounds: bool,
}

util::json_struct!(PresetDelta {
    preset,
    key,
    max_time_drift,
    max_energy_drift,
    time_bound,
    energy_bound,
    within_bounds
});

/// How far the analytic tier's physics drifted from the accurate
/// tier's, over every cell of the grid.
#[derive(Debug, Clone, PartialEq)]
struct FidelityDelta {
    /// Geometric mean of analytic/accurate total-time ratios.
    geomean_time_ratio: f64,
    /// Worst |ratio − 1| for total time.
    max_time_drift: f64,
    /// Geometric mean of analytic/accurate total-energy ratios.
    geomean_energy_ratio: f64,
    /// Worst |ratio − 1| for total energy.
    max_energy_drift: f64,
}

util::json_struct!(FidelityDelta {
    geomean_time_ratio,
    max_time_drift,
    geomean_energy_ratio,
    max_energy_drift
});

/// The whole artifact.
#[derive(Debug, Clone, PartialEq)]
struct TrajectoryReport {
    /// Artifact schema version.
    schema: u64,
    /// Date label supplied by the caller (CI passes `date -u +%F`).
    date: String,
    /// `config × workload` cells per tier.
    cells: u64,
    /// Worker threads the sweeps ran on.
    threads: u64,
    /// Throughput per tier (plus a multi-threaded accurate row for the
    /// parallel-scaling trajectory).
    tiers: Vec<TierRow>,
    /// Analytic ÷ accurate cells/second (both at `threads`).
    analytic_speedup: f64,
    /// Tier agreement over the grid.
    fidelity: FidelityDelta,
    /// Per-preset tier agreement vs committed calibration bounds.
    presets: Vec<PresetDelta>,
}

util::json_struct!(TrajectoryReport {
    schema,
    date,
    cells,
    threads,
    tiers,
    analytic_speedup,
    fidelity,
    presets
});

fn tier_specs(tier: FidelityTier) -> Vec<(SystemId, SystemSpec)> {
    SystemKind::EVALUATED
        .iter()
        .map(|&k| (SystemId::Preset(k), SystemSpec { tier, ..k.spec() }))
        .collect()
}

fn fidelity(acc: &SuiteResult, ana: &SuiteResult) -> FidelityDelta {
    let mut d = FidelityDelta {
        geomean_time_ratio: 0.0,
        max_time_drift: 0.0,
        geomean_energy_ratio: 0.0,
        max_energy_drift: 0.0,
    };
    let mut n = 0u32;
    for (a, b) in acc.outcomes.iter().zip(&ana.outcomes) {
        assert_eq!((&a.system, a.kernel), (&b.system, b.kernel), "grid order");
        let t = b.total_time.as_ns_f64() / a.total_time.as_ns_f64();
        let e = b.total_energy().as_j() / a.total_energy().as_j();
        d.geomean_time_ratio += t.ln();
        d.geomean_energy_ratio += e.ln();
        d.max_time_drift = d.max_time_drift.max((t - 1.0).abs());
        d.max_energy_drift = d.max_energy_drift.max((e - 1.0).abs());
        n += 1;
    }
    d.geomean_time_ratio = (d.geomean_time_ratio / n.max(1) as f64).exp();
    d.geomean_energy_ratio = (d.geomean_energy_ratio / n.max(1) as f64).exp();
    d
}

fn preset_deltas(acc: &SuiteResult, ana: &SuiteResult) -> Vec<PresetDelta> {
    SystemKind::EVALUATED
        .iter()
        .map(|&kind| {
            let key = axes_key(&kind.spec());
            let entry = CalibrationTable::embedded()
                .lookup(&key)
                .unwrap_or_else(|| panic!("no calibration entry for {key}"));
            let mut max_t = 0.0f64;
            let mut max_e = 0.0f64;
            for (a, b) in acc.outcomes.iter().zip(&ana.outcomes) {
                if a.system != SystemId::Preset(kind) {
                    continue;
                }
                let t = b.total_time.as_ns_f64() / a.total_time.as_ns_f64();
                let e = b.total_energy().as_j() / a.total_energy().as_j();
                max_t = max_t.max((t - 1.0).abs());
                max_e = max_e.max((e - 1.0).abs());
            }
            PresetDelta {
                preset: kind.label().to_string(),
                key,
                max_time_drift: max_t,
                max_energy_drift: max_e,
                time_bound: entry.time_bound,
                energy_bound: entry.energy_bound,
                within_bounds: max_t <= entry.time_bound && max_e <= entry.energy_bound,
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_report.json");
    let date = args.get(1).cloned().unwrap_or_else(|| "unlabeled".into());

    let workloads = Workload::suite(Scale::from_env());
    let params = dramless::SystemParams::default();

    let mut tiers = Vec::new();
    let mut results = Vec::new();
    for (label, tier) in [
        ("accurate", FidelityTier::Accurate),
        ("analytic", FidelityTier::Analytic),
    ] {
        let (result, stats) =
            dramless::sweep::sweep_systems_with_stats(&tier_specs(tier), &workloads, &params)
                .expect("every Table I preset composes");
        println!(
            "{label}: {} cells in {:.3}s ({:.1} cells/s, build {:.3}s)",
            stats.cells,
            stats.execute.as_secs_f64(),
            stats.cells_per_sec(),
            stats.build.as_secs_f64(),
        );
        tiers.push(TierRow {
            tier: label.into(),
            threads: stats.threads as u64,
            build_ns: stats.build.as_nanos() as u64,
            execute_ns: stats.execute.as_nanos() as u64,
            cells_per_sec: stats.cells_per_sec(),
        });
        results.push((result, stats));
    }

    // Parallel-scaling row: the accurate grid again on a 4-thread pool
    // (the caches are warm, so this measures cell execution, which is
    // exactly what the scaling trajectory should watch).
    {
        let pool = util::pool::Pool::new(4);
        let (_, stats) = dramless::sweep::sweep_systems_on(
            &pool,
            &tier_specs(FidelityTier::Accurate),
            &workloads,
            &params,
        )
        .expect("every Table I preset composes");
        println!(
            "accurate x{}: {} cells in {:.3}s ({:.1} cells/s)",
            stats.threads,
            stats.cells,
            stats.execute.as_secs_f64(),
            stats.cells_per_sec(),
        );
        tiers.push(TierRow {
            tier: "accurate".into(),
            threads: stats.threads as u64,
            build_ns: stats.build.as_nanos() as u64,
            execute_ns: stats.execute.as_nanos() as u64,
            cells_per_sec: stats.cells_per_sec(),
        });
    }

    let report = TrajectoryReport {
        schema: 2,
        date,
        cells: results[0].1.cells as u64,
        threads: results[0].1.threads as u64,
        analytic_speedup: tiers[1].cells_per_sec / tiers[0].cells_per_sec,
        fidelity: fidelity(&results[0].0, &results[1].0),
        presets: preset_deltas(&results[0].0, &results[1].0),
        tiers,
    };
    println!(
        "analytic speedup {:.1}x; fidelity: time geomean {:.3} (max drift {:.1}%), \
         energy geomean {:.3} (max drift {:.1}%)",
        report.analytic_speedup,
        report.fidelity.geomean_time_ratio,
        report.fidelity.max_time_drift * 100.0,
        report.fidelity.geomean_energy_ratio,
        report.fidelity.max_energy_drift * 100.0,
    );
    for p in &report.presets {
        if !p.within_bounds {
            println!(
                "WARNING: {} drift exceeds its committed calibration bound — \
                 time {:.1}% (bound {:.1}%), energy {:.1}% (bound {:.1}%)",
                p.preset,
                p.max_time_drift * 100.0,
                p.time_bound * 100.0,
                p.max_energy_drift * 100.0,
                p.energy_bound * 100.0,
            );
        }
    }
    std::fs::write(out_path, report.to_json_pretty())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("trajectory written to {out_path}");
}
