//! `fleet-guard` — CI gate for the fleet serving path.
//!
//! Self-contained: builds a fixed, seeded guard cell (no input files),
//! serves it at 1 thread and at 4 threads, and fails, printing a
//! readable delta table, when:
//!
//! * the two reports are not **byte-identical** — the fleet path's
//!   determinism contract (serial serving loop, thread-count-independent
//!   pricing and aggregation) is load-bearing for record/replay and for
//!   every committed QoS number;
//! * either report fails its own conservation ledger (offered =
//!   completed + rejected, class/tenant histograms merge to the
//!   aggregate, attribution records match completions); or
//! * served requests/second falls below the committed baseline
//!   `crates/bench/fleet_baseline.json` divided by `max_regression` — a
//!   loose tripwire for "someone made the serving loop quadratic",
//!   sized so shared-runner CPU throttling never trips it. (Re-record
//!   deliberately, with the reason in the commit message.)
//!
//! ```sh
//! fleet-guard crates/bench/fleet_baseline.json
//! ```

use dramless::{run_fleet_on, ArrivalProcess, BalancerKind, FleetReport, FleetSpec};
use std::process::ExitCode;
use util::json::{FromJson, ToJson};
use util::pool::Pool;
use workloads::Kernel;

/// The committed baseline file.
#[derive(Debug, Clone, PartialEq)]
struct FleetBaseline {
    /// Baseline file schema; this guard understands version 1.
    schema: u64,
    /// Human context for whoever re-records it.
    note: String,
    /// Observed throughput may fall to `throughput_rps / max_regression`
    /// before the guard trips.
    max_regression: f64,
    /// Requests the guard cell serves (sanity-pins the cell shape).
    requests: u64,
    /// Served requests/second when the baseline was last re-based,
    /// measured on the 4-thread run.
    throughput_rps: f64,
}

util::json_struct!(FleetBaseline {
    schema,
    note,
    max_regression,
    requests,
    throughput_rps
});

const SCHEMA: u64 = 1;

/// The fixed guard cell. Changing ANY field here re-shapes the work the
/// baseline throughput was measured on — re-record in the same commit.
fn guard_spec() -> FleetSpec {
    FleetSpec {
        name: Some("fleet-guard".into()),
        accelerators: 4,
        slots_per_accel: 2,
        balancer: BalancerKind::QosAware,
        tenants: 256,
        arrivals: ArrivalProcess::Bursty {
            base_per_s: 400.0,
            burst_per_s: 4_000.0,
            mean_burst_ms: 20.0,
            mean_calm_ms: 80.0,
        },
        kernels: vec![Kernel::Trisolv, Kernel::Durbin, Kernel::Jaco1d],
        seed: 4242,
        requests: 10_000,
        admit_ms: 25.0,
        erase_every_kb: 256,
        ..FleetSpec::example()
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("fleet-guard: {msg}");
    ExitCode::FAILURE
}

fn serve(threads: usize, spec: &FleetSpec) -> Result<(FleetReport, f64), String> {
    let pool = Pool::new(threads);
    let started = std::time::Instant::now();
    let report = run_fleet_on(&pool, spec).map_err(|e| format!("{threads}-thread run: {e}"))?;
    Ok((report, started.elapsed().as_secs_f64()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("crates/bench/fleet_baseline.json");

    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {baseline_path}: {e}")),
    };
    let baseline = match FleetBaseline::from_json_str(&baseline_text) {
        Ok(b) => b,
        Err(e) => return fail(&format!("parsing {baseline_path}: {e:?}")),
    };
    if baseline.schema != SCHEMA {
        return fail(&format!(
            "{baseline_path} is schema {} but this guard understands schema \
             {SCHEMA}; re-record the baseline or update the guard",
            baseline.schema
        ));
    }

    let spec = guard_spec();
    if spec.requests != baseline.requests {
        return fail(&format!(
            "guard cell serves {} requests but {baseline_path} was recorded \
             at {}; re-record the baseline in the same commit as the cell change",
            spec.requests, baseline.requests
        ));
    }
    let (serial, serial_secs) = match serve(1, &spec) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let (threaded, threaded_secs) = match serve(4, &spec) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };

    let rps = threaded.offered as f64 / threaded_secs.max(1e-9);
    let floor = baseline.throughput_rps / baseline.max_regression;
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12}",
        "run", "requests", "wall", "req/s", "floor"
    );
    for (name, r, secs) in [
        ("1 thread", &serial, serial_secs),
        ("4 threads", &threaded, threaded_secs),
    ] {
        println!(
            "{:<14} {:>10} {:>9.3}s {:>12.0} {:>12.0}",
            name,
            r.offered,
            secs,
            r.offered as f64 / secs.max(1e-9),
            floor
        );
    }

    // Collect every failure before judging so the table above is always
    // followed by the complete verdict.
    let mut failures = Vec::new();
    if serial.to_json() != threaded.to_json() {
        failures.push(
            "1-thread and 4-thread reports differ — the fleet path lost \
             byte-determinism"
                .to_string(),
        );
    }
    for (name, r) in [("1-thread", &serial), ("4-thread", &threaded)] {
        if let Err(e) = r.check_conservation() {
            failures.push(format!("{name} report fails conservation: {e}"));
        }
    }
    if rps < floor {
        failures.push(format!(
            "served only {rps:.0} req/s; the committed baseline is \
             {:.0} req/s and the floor {floor:.0} req/s ({}x regression limit)",
            baseline.throughput_rps, baseline.max_regression
        ));
    }

    if failures.is_empty() {
        println!(
            "fleet-guard: OK — byte-identical at 1 vs 4 threads, conservation \
             holds, {rps:.0} req/s (floor {floor:.0})"
        );
        ExitCode::SUCCESS
    } else {
        fail(&format!(
            "{}; if this is an intentional trade, re-record {baseline_path}",
            failures.join("; ")
        ))
    }
}
