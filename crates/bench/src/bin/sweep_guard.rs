//! `sweep-guard` — CI gate for the sweep engine's wall-clock, per tier.
//!
//! Reads the JSON report a `BENCH_SMOKE=1` bench run wrote and compares
//! every tier's smoke-sweep measurement (`sweep` = accurate,
//! `sweep-analytic` = analytic; both recorded by `bench::sweep_timed` /
//! `bench::sweep_timed_analytic`) against the committed baseline
//! `crates/bench/sweep_baseline.json` (schema-versioned; re-record
//! deliberately, with the reason in the commit message). The guard
//! fails, printing a readable delta table, when:
//!
//! * any tier's execution wall-clock exceeds `max_regression` times its
//!   baseline — a loose tripwire for "someone serialized the sweep
//!   again", sized so shared-runner CPU throttling never trips it;
//! * the analytic tier's cells/second falls below
//!   `min_analytic_speedup` times the accurate tier's — the committed
//!   floor on what the fidelity-tier split buys; or
//! * the *committed* accurate-tier baseline itself fails to record at
//!   least `min_speedup_vs_prior` times the `prior` record — the
//!   schedule-driven engine's speedup is pinned structurally, so nobody
//!   can quietly re-record the baseline back to per-op-path territory.
//!   (The runtime check stays relative because shared CI runners
//!   burst-throttle: absolute cells/second floors flake with machine
//!   state, while the committed record is measured once, on a rested
//!   machine, with the byte-identity of the output pinned separately by
//!   `tests/spec_equivalence.rs`.)
//!
//! ```sh
//! sweep-guard bench-fig15_bandwidth.json crates/bench/sweep_baseline.json
//! ```

use std::process::ExitCode;
use util::bench::{BenchReport, Measurement};
use util::json::FromJson;

/// One tier's committed baseline: the measurement name a smoke run
/// records and the wall-clock it recorded when last re-based.
#[derive(Debug, Clone, PartialEq)]
struct TierBaseline {
    /// Measurement name in the bench report (`sweep`, `sweep-analytic`).
    name: String,
    /// Baseline smoke execution wall-clock, nanoseconds.
    smoke_ns: u64,
}

util::json_struct!(TierBaseline { name, smoke_ns });

/// The committed baseline file.
#[derive(Debug, Clone, PartialEq)]
struct SweepBaseline {
    /// Baseline file schema; this guard understands version 3.
    schema: u64,
    /// Human context for whoever re-records it.
    note: String,
    /// Per-tier wall-clock limit, as a multiple of `smoke_ns`.
    max_regression: f64,
    /// Floor on analytic cells/s ÷ accurate cells/s.
    min_analytic_speedup: f64,
    /// Floor on `prior.smoke_ns ÷ tiers["sweep"].smoke_ns` — the
    /// accurate tier's committed record must stay at least this much
    /// faster than the pre-schedule-replay engine.
    min_speedup_vs_prior: f64,
    /// The accurate tier's smoke wall-clock before the schedule-driven
    /// engine landed (per-op trace walk) — the yardstick for
    /// `min_speedup_vs_prior`.
    prior: TierBaseline,
    /// One entry per gated tier measurement.
    tiers: Vec<TierBaseline>,
}

util::json_struct!(SweepBaseline {
    schema,
    note,
    max_regression,
    min_analytic_speedup,
    min_speedup_vs_prior,
    prior,
    tiers
});

const SCHEMA: u64 = 3;

fn fail(msg: &str) -> ExitCode {
    eprintln!("sweep-guard: {msg}");
    ExitCode::FAILURE
}

fn secs(ns: f64) -> f64 {
    ns / 1e9
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("bench-fig15_bandwidth.json");
    let baseline_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("crates/bench/sweep_baseline.json");

    let report_text = match std::fs::read_to_string(report_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {report_path}: {e}")),
    };
    let report = match BenchReport::from_json_str(&report_text) {
        Ok(r) => r,
        Err(e) => return fail(&format!("parsing {report_path}: {e:?}")),
    };
    if !report.smoke {
        return fail(&format!(
            "{report_path} was not a BENCH_SMOKE=1 run; the baseline only \
             calibrates smoke sweeps"
        ));
    }

    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {baseline_path}: {e}")),
    };
    let baseline = match SweepBaseline::from_json_str(&baseline_text) {
        Ok(b) => b,
        Err(e) => return fail(&format!("parsing {baseline_path}: {e:?}")),
    };
    if baseline.schema != SCHEMA {
        return fail(&format!(
            "{baseline_path} is schema {} but this guard understands schema \
             {SCHEMA}; re-record the baseline or update the guard",
            baseline.schema
        ));
    }
    if baseline.tiers.is_empty() {
        return fail(&format!("{baseline_path} gates no tiers"));
    }

    // One row per gated tier; collect everything before judging so the
    // delta table is complete even when the first tier is the one that
    // regressed.
    let mut rows: Vec<(&TierBaseline, &Measurement, f64)> = Vec::new();
    for tier in &baseline.tiers {
        let m = match report.measurements.iter().find(|m| m.name == tier.name) {
            Some(m) => m,
            None => {
                return fail(&format!(
                    "{report_path} has no `{}` measurement (tiers gated: {})",
                    tier.name,
                    baseline
                        .tiers
                        .iter()
                        .map(|t| t.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            }
        };
        rows.push((tier, m, m.median_ns as f64 / tier.smoke_ns as f64));
    }

    println!(
        "{:<16} {:>10} {:>10} {:>7} {:>7} {:>10}",
        "tier", "observed", "baseline", "ratio", "limit", "cells/s"
    );
    for (tier, m, ratio) in &rows {
        println!(
            "{:<16} {:>9.3}s {:>9.3}s {:>6.2}x {:>6.1}x {:>10.1}",
            tier.name,
            secs(m.median_ns as f64),
            secs(tier.smoke_ns as f64),
            ratio,
            baseline.max_regression,
            m.units_per_sec,
        );
    }

    let mut failures = Vec::new();
    // Structural check on the committed record itself: the accurate
    // tier's baseline must stay ≥ min_speedup_vs_prior× faster than the
    // pre-schedule-replay engine's record.
    if let Some(tier) = baseline
        .tiers
        .iter()
        .find(|t| t.name == baseline.prior.name)
    {
        let committed_speedup = baseline.prior.smoke_ns as f64 / tier.smoke_ns.max(1) as f64;
        println!(
            "committed `{}` baseline: {:.3}s vs prior {:.3}s — {committed_speedup:.2}x \
             (floor {:.1}x)",
            tier.name,
            secs(tier.smoke_ns as f64),
            secs(baseline.prior.smoke_ns as f64),
            baseline.min_speedup_vs_prior
        );
        if committed_speedup < baseline.min_speedup_vs_prior {
            failures.push(format!(
                "the committed `{}` baseline is only {committed_speedup:.2}x the \
                 prior (per-op engine) record; the floor is {:.1}x — a slower \
                 re-record needs the floor lowered deliberately, in the same commit",
                tier.name, baseline.min_speedup_vs_prior
            ));
        }
    } else {
        failures.push(format!(
            "baseline gates no `{}` tier to compare against `prior`",
            baseline.prior.name
        ));
    }
    for (tier, _, ratio) in &rows {
        if *ratio > baseline.max_regression {
            failures.push(format!(
                "`{}` wall-clock regressed {ratio:.2}x over the committed \
                 baseline (limit {:.1}x)",
                tier.name, baseline.max_regression
            ));
        }
    }
    let rate = |name: &str| {
        rows.iter()
            .find(|(t, _, _)| t.name == name)
            .map(|(_, m, _)| m.units_per_sec)
    };
    if let (Some(acc), Some(ana)) = (rate("sweep"), rate("sweep-analytic")) {
        let speedup = if acc > 0.0 { ana / acc } else { f64::INFINITY };
        println!(
            "analytic speedup: {speedup:.1}x cells/s over accurate (floor {:.1}x)",
            baseline.min_analytic_speedup
        );
        if speedup < baseline.min_analytic_speedup {
            failures.push(format!(
                "analytic tier is only {speedup:.1}x the accurate tier's \
                 cells/s (floor {:.1}x)",
                baseline.min_analytic_speedup
            ));
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        fail(&format!(
            "{}; if this is an intentional trade, re-record {baseline_path}",
            failures.join("; ")
        ))
    }
}
