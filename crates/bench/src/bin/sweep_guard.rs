//! `sweep-guard` — CI gate for the sweep engine's wall-clock.
//!
//! Reads the JSON report a `BENCH_SMOKE=1` bench run wrote (the
//! measurement named `sweep`, recorded by `bench::sweep_timed`) and
//! compares it against the committed baseline
//! (`crates/bench/sweep_baseline.json`). Exits non-zero when the smoke
//! sweep took more than `max_regression` times the baseline — a cheap
//! tripwire for "someone serialized the sweep again", deliberately
//! loose (2×) so ordinary CI-runner noise never trips it.
//!
//! ```sh
//! sweep-guard bench-fig15_bandwidth.json crates/bench/sweep_baseline.json
//! ```

use std::process::ExitCode;
use util::bench::BenchReport;
use util::json::{FromJson, Json};

fn fail(msg: &str) -> ExitCode {
    eprintln!("sweep-guard: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("bench-fig15_bandwidth.json");
    let baseline_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("crates/bench/sweep_baseline.json");

    let report_text = match std::fs::read_to_string(report_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {report_path}: {e}")),
    };
    let report = match BenchReport::from_json_str(&report_text) {
        Ok(r) => r,
        Err(e) => return fail(&format!("parsing {report_path}: {e:?}")),
    };
    if !report.smoke {
        return fail(&format!(
            "{report_path} was not a BENCH_SMOKE=1 run; the baseline only \
             calibrates smoke sweeps"
        ));
    }
    let sweep = match report.measurements.iter().find(|m| m.name == "sweep") {
        Some(m) => m,
        None => return fail(&format!("{report_path} has no `sweep` measurement")),
    };

    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {baseline_path}: {e}")),
    };
    let baseline = match Json::parse(&baseline_text) {
        Ok(j) => j,
        Err(e) => return fail(&format!("parsing {baseline_path}: {e:?}")),
    };
    let base_ns = match baseline.get("sweep_smoke_ns").and_then(Json::as_u64) {
        Some(n) if n > 0 => n,
        _ => return fail(&format!("{baseline_path} lacks a positive sweep_smoke_ns")),
    };
    let max_regression = baseline
        .get("max_regression")
        .and_then(Json::as_f64)
        .unwrap_or(2.0);

    let ratio = sweep.median_ns as f64 / base_ns as f64;
    println!(
        "sweep-guard: smoke sweep {:.3}s vs baseline {:.3}s — {:.2}x (limit {:.1}x), {:.1} cells/s",
        sweep.median_ns as f64 / 1e9,
        base_ns as f64 / 1e9,
        ratio,
        max_regression,
        sweep.units_per_sec,
    );
    if ratio > max_regression {
        return fail(&format!(
            "sweep wall-clock regressed {ratio:.2}x over the committed baseline \
             (limit {max_regression:.1}x); if this is an intentional trade, \
             re-record {baseline_path}"
        ));
    }
    ExitCode::SUCCESS
}
