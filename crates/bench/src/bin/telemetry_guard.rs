//! `telemetry-guard` — CI gate for the telemetry layer.
//!
//! Two checks, both offline and self-contained:
//!
//! 1. **Trace shape.** Reads the Chrome trace-event JSON a
//!    `dramless-sim --trace-out` run wrote and validates the shape
//!    Perfetto relies on: a flat array of records, every record an
//!    object carrying `ph`/`pid`/`tid`, metadata (`M`) records naming
//!    the per-component thread lanes, complete (`X`) events with
//!    numeric nondecreasing `ts` and positive `dur`, and at least one
//!    `partition/`, `rdb/` and `pe/` lane (the trace must come from a
//!    PRAM-bearing system for the per-partition tracks to exist).
//!
//! 2. **Disabled-probe overhead budget.** The probes are compiled in
//!    everywhere, so the cost that matters is the *disabled* path. CI
//!    cannot diff an instrumented build against a pre-telemetry build,
//!    so the guard bounds the overhead by proxy: it times the smoke
//!    sweep (telemetry off), microbenches the per-call cost of a
//!    disabled probe, counts how many probe calls the same sweep makes
//!    when traced, and asserts `calls x per_call` stays under 2% of
//!    the measured sweep wall clock. The call count doubles as a
//!    margin for counter bumps the trace bookkeeping cannot see.
//!
//! ```sh
//! telemetry-guard trace.json
//! ```

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use dramless::{sweep_specs, SystemKind, SystemParams, SystemSpec, TelemetrySpec};
use sim_core::probe::Probe;
use sim_core::time::Picos;
use util::json::Json;
use util::telemetry::{MetricValue, Track};
use workloads::{Kernel, Scale, Workload};

/// Probe-path overhead budget relative to the smoke-sweep wall clock.
const MAX_OVERHEAD_FRACTION: f64 = 0.02;

fn fail(msg: &str) -> ExitCode {
    eprintln!("telemetry-guard: {msg}");
    ExitCode::FAILURE
}

fn get<'j>(fields: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
    fields.iter().find(|(n, _)| n == key).map(|(_, v)| v)
}

/// Validates the Chrome trace-event shape; returns (spans, instants,
/// lane names) on success.
fn validate_trace(trace: &Json) -> Result<(u64, u64, Vec<String>), String> {
    let Json::Arr(items) = trace else {
        return Err("trace is not a JSON array of event records".into());
    };
    if items.is_empty() {
        return Err("trace is empty".into());
    }
    let mut last_ts = f64::NEG_INFINITY;
    let mut lanes: Vec<String> = Vec::new();
    let mut spans = 0u64;
    let mut instants = 0u64;
    for (i, item) in items.iter().enumerate() {
        let Json::Obj(fields) = item else {
            return Err(format!("record {i} is not an object"));
        };
        let Some(Json::Str(ph)) = get(fields, "ph") else {
            return Err(format!("record {i} lacks a ph"));
        };
        if get(fields, "pid").is_none() || get(fields, "tid").is_none() {
            return Err(format!("record {i} lacks pid/tid"));
        }
        match ph.as_str() {
            "M" => {
                if let Some(Json::Obj(args)) = get(fields, "args") {
                    if let Some(Json::Str(n)) = get(args, "name") {
                        lanes.push(n.clone());
                    }
                }
            }
            "X" | "i" => {
                let Some(Json::F64(ts)) = get(fields, "ts") else {
                    return Err(format!("event {i} lacks a numeric ts"));
                };
                if *ts < last_ts || *ts < 0.0 {
                    return Err(format!(
                        "timestamps not nondecreasing: {ts} after {last_ts} at record {i}"
                    ));
                }
                last_ts = *ts;
                if ph == "X" {
                    let Some(Json::F64(dur)) = get(fields, "dur") else {
                        return Err(format!("complete event {i} lacks dur"));
                    };
                    if *dur <= 0.0 {
                        return Err(format!("complete event {i} has non-positive dur"));
                    }
                    spans += 1;
                } else {
                    instants += 1;
                }
            }
            other => return Err(format!("record {i} has unexpected phase {other:?}")),
        }
    }
    if spans == 0 {
        return Err("no complete (X) events in the trace".into());
    }
    for prefix in ["partition/", "rdb/", "pe/"] {
        if !lanes.iter().any(|n| n.starts_with(prefix)) {
            return Err(format!(
                "no {prefix} lane among {lanes:?} — trace the DRAM-less preset \
                 (or any PRAM-bearing spec) so per-component tracks exist"
            ));
        }
    }
    Ok((spans, instants, lanes))
}

/// The smoke grid: small enough to finish in seconds, rich enough to
/// exercise the PRAM scheduler, the staging path and the page cache.
fn smoke_grid() -> (Vec<SystemKind>, Vec<Workload>, SystemParams) {
    let kinds = vec![SystemKind::Hetero, SystemKind::DramLess];
    let workloads = [Kernel::Trisolv, Kernel::Gemver]
        .iter()
        .map(|&k| Workload::of(k, Scale(0.2)))
        .collect();
    let params = SystemParams {
        agents: 3,
        ..Default::default()
    };
    (kinds, workloads, params)
}

/// Cold wall clock of the telemetry-off smoke sweep — the first run in
/// the process, so it includes the workload builds a real `BENCH_SMOKE`
/// sweep pays. Must be called before anything warms the trace cache.
fn time_disabled_sweep() -> f64 {
    let (kinds, workloads, params) = smoke_grid();
    let specs: Vec<SystemSpec> = kinds.iter().map(|k| k.spec()).collect();
    let t = Instant::now();
    black_box(sweep_specs(&specs, &workloads, &params).expect("smoke sweep composes"));
    t.elapsed().as_secs_f64()
}

/// Per-call cost of the disabled probe path, in seconds: the exact
/// branch every instrumented component takes on production runs.
/// Measured as the delta between a loop with the probe call and an
/// identical loop without it, so loop and argument-marshalling overhead
/// is not charged to the probe.
fn time_disabled_probe_call() -> f64 {
    let probe = black_box(Probe::disabled());
    let track = Track::new("guard", 0);
    const ITERS: u64 = 20_000_000;

    let run = |with_probe: bool| -> f64 {
        let t = Instant::now();
        for i in 0..ITERS {
            let start = black_box(Picos::from_ns(i));
            let end = black_box(Picos::from_ns(i + 1));
            if with_probe {
                probe.span(track, "x", start, end);
            }
        }
        t.elapsed().as_secs_f64()
    };
    // Warm up, then median-of-three deltas against the baseline loop.
    run(true);
    let mut deltas: Vec<f64> = (0..3).map(|_| run(true) - run(false)).collect();
    deltas.sort_by(f64::total_cmp);
    black_box(&probe);
    (deltas[1] / ITERS as f64).max(0.0)
}

/// How many probe calls the smoke sweep makes when telemetry is on:
/// spans + instants from the trace bookkeeping, plus one latency call
/// per histogram sample — all doubled as margin for counter bumps.
fn count_probe_calls() -> u64 {
    let (kinds, workloads, params) = smoke_grid();
    let specs: Vec<SystemSpec> = kinds
        .iter()
        .map(|k| SystemSpec {
            telemetry: Some(TelemetrySpec::default()),
            ..k.spec()
        })
        .collect();
    let suite = sweep_specs(&specs, &workloads, &params).expect("traced smoke sweep composes");
    let agg = suite.aggregate_metrics();
    let events = agg.counter("trace.events_recorded").unwrap_or(0)
        + agg.counter("trace.events_dropped").unwrap_or(0);
    let samples: u64 = agg
        .iter()
        .map(|(_, v)| match v {
            MetricValue::Histogram(h) => h.count(),
            _ => 0,
        })
        .sum();
    (events + samples) * 2
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = args.first().map(String::as_str).unwrap_or("trace.json");

    // Check 1: the written trace is Perfetto-loadable.
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {trace_path}: {e}")),
    };
    let trace = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => return fail(&format!("parsing {trace_path}: {e:?}")),
    };
    let (spans, instants, lanes) = match validate_trace(&trace) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{trace_path}: {e}")),
    };
    println!(
        "telemetry-guard: {trace_path} OK — {spans} spans, {instants} instants \
         across {} named lanes",
        lanes.len()
    );

    // Check 2: the disabled-probe path stays within budget.
    let sweep_s = time_disabled_sweep();
    let per_call_s = time_disabled_probe_call();
    let calls = count_probe_calls();
    let overhead_s = per_call_s * calls as f64;
    let fraction = overhead_s / sweep_s;
    println!(
        "telemetry-guard: smoke sweep {:.3}s off; {} probe calls when traced x \
         {:.2}ns disabled-path cost = {:.6}s ({:.3}% of wall clock, limit {:.1}%)",
        sweep_s,
        calls,
        per_call_s * 1e9,
        overhead_s,
        fraction * 100.0,
        MAX_OVERHEAD_FRACTION * 100.0,
    );
    if fraction > MAX_OVERHEAD_FRACTION {
        return fail(&format!(
            "disabled-probe overhead {:.3}% exceeds the {:.1}% budget — the \
             disabled path must stay a single enum check (no allocation, no \
             locking)",
            fraction * 100.0,
            MAX_OVERHEAD_FRACTION * 100.0,
        ));
    }

    // Check 3: the memoization layers report their process-level
    // counters in the expected shape. The two sweeps above drove the
    // workload and schedule caches, so every counter must exist, the
    // caches must have both built (misses) and shared (hits), and the
    // totals must cover the cells the sweeps ran.
    let mut cache_metrics = util::telemetry::MetricSet::new();
    workloads::cache::collect_metrics(&mut cache_metrics);
    let counter = |name: &str| cache_metrics.counter(name);
    for name in [
        "cache.workload_hits",
        "cache.workload_misses",
        "cache.schedule_hits",
        "cache.schedule_misses",
    ] {
        if counter(name).is_none() {
            return fail(&format!(
                "memoization counter `{name}` missing from \
                 workloads::cache::collect_metrics"
            ));
        }
    }
    let wl = (
        counter("cache.workload_hits").unwrap_or(0),
        counter("cache.workload_misses").unwrap_or(0),
    );
    let sched = (
        counter("cache.schedule_hits").unwrap_or(0),
        counter("cache.schedule_misses").unwrap_or(0),
    );
    println!(
        "telemetry-guard: cache counters OK — workloads {}/{} hit/miss, \
         schedules {}/{} hit/miss",
        wl.0, wl.1, sched.0, sched.1
    );
    if wl.1 == 0 || sched.1 == 0 {
        return fail("the smoke sweeps built nothing — miss counters are zero");
    }
    if wl.0 == 0 || sched.0 == 0 {
        return fail(
            "the smoke sweeps shared nothing — hit counters are zero, so the \
             process-wide memoization is not being consulted",
        );
    }

    // Check 4: latency attribution conserves. Re-run the smoke grid
    // with attribution on and require every cell's per-request cause
    // decompositions to sum exactly to the end-to-end latencies.
    let (kinds, workloads, params) = smoke_grid();
    let specs: Vec<SystemSpec> = kinds
        .iter()
        .map(|k| SystemSpec {
            telemetry: Some(TelemetrySpec {
                attribution: true,
                ..Default::default()
            }),
            ..k.spec()
        })
        .collect();
    let suite = sweep_specs(&specs, &workloads, &params).expect("attributed smoke sweep composes");
    for out in &suite.outcomes {
        let Some(a) = &out.attr else {
            return fail(&format!(
                "{}/{}: attribution was on but the report has no \
                 latency_attribution block",
                out.system.name(),
                out.kernel.label()
            ));
        };
        if a.records == 0 {
            return fail(&format!(
                "{}/{}: attribution recorded no requests",
                out.system.name(),
                out.kernel.label()
            ));
        }
        if !a.conserves() {
            return fail(&format!(
                "{}/{}: attribution does not conserve — {} violation(s), \
                 {} ps attributed vs {} ps wall",
                out.system.name(),
                out.kernel.label(),
                a.violations,
                a.attributed_ps,
                a.wall_ps
            ));
        }
        println!(
            "telemetry-guard: {}/{} attribution OK — {} requests, \
             {} ps wall, conserving",
            out.system.name(),
            out.kernel.label(),
            a.records,
            a.wall_ps
        );
    }
    ExitCode::SUCCESS
}
