//! Quick replay-vs-direct timing probe.
use accel::exec::{AccelConfig, Accelerator};
use accel::sched::MemSchedule;
use dramless::{SystemKind, SystemParams};
use sim_core::energy::EnergyBook;
use sim_core::mem::{Access, MemoryBackend};
use sim_core::time::Picos;
use std::time::Instant;
use workloads::{Scale, Workload};

struct FixedMem;
impl MemoryBackend for FixedMem {
    fn read(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
        Access {
            start: at,
            end: at + Picos::from_ns(100),
        }
    }
    fn write(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
        Access {
            start: at,
            end: at + Picos::from_ns(150),
        }
    }
    fn energy(&self) -> EnergyBook {
        EnergyBook::new()
    }
    fn label(&self) -> &'static str {
        "fixed"
    }
}

fn main() {
    let params = SystemParams::default();
    let workloads = Workload::suite(Scale::from_env());
    let cfgs: Vec<_> = SystemKind::EVALUATED.to_vec();
    let (mut t_sched, mut t_null_direct, mut t_null_replay, mut t_real_direct, mut t_real_replay) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut ops, mut mem_ops) = (0u64, 0u64);
    for w in &workloads {
        let built = w.build_cached(params.agents);
        let cfg = AccelConfig {
            pes: params.agents + 1,
            sample_bucket: Picos::from_us(params.sample_bucket_us),
            ..Default::default()
        };
        let t = Instant::now();
        let sched = MemSchedule::build(&built.traces, cfg.l1, cfg.l2);
        t_sched += t.elapsed().as_secs_f64();
        for a in &sched.agents {
            ops += a.step_count() as u64;
            mem_ops += (0..a.step_count())
                .filter(|&i| !matches!(a.step(i), accel::sched::ReplayStep::Compute { .. }))
                .count() as u64;
        }
        let accel = Accelerator::new(cfg);
        let t = Instant::now();
        let a = accel.run(&built.traces, &mut FixedMem);
        t_null_direct += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let b = accel.run_schedule_at(Picos::ZERO, &sched, &mut FixedMem);
        t_null_replay += t.elapsed().as_secs_f64();
        assert_eq!(a.total_time, b.total_time);
        for kind in cfgs.iter() {
            let sys =
                dramless::build_system(&kind.spec(), &params, built.character.footprint).unwrap();
            let mut backend = sys.backend;
            let t = Instant::now();
            let _ = accel.run(&built.traces, backend.as_mut());
            t_real_direct += t.elapsed().as_secs_f64();
            let sys =
                dramless::build_system(&kind.spec(), &params, built.character.footprint).unwrap();
            let mut backend = sys.backend;
            let t = Instant::now();
            let _ = accel.run_schedule_at(Picos::ZERO, &sched, backend.as_mut());
            t_real_replay += t.elapsed().as_secs_f64();
        }
    }
    let (mut t_build_sys, mut t_cell) = (0.0f64, 0.0f64);
    let mut per_kind: Vec<(String, f64)> = cfgs.iter().map(|k| (format!("{k:?}"), 0.0)).collect();
    for w in &workloads {
        let built = w.build_cached(params.agents);
        for (ki, kind) in cfgs.iter().enumerate() {
            let t = Instant::now();
            let sys =
                dramless::build_system(&kind.spec(), &params, built.character.footprint).unwrap();
            t_build_sys += t.elapsed().as_secs_f64();
            drop(sys);
            let t = Instant::now();
            let _ = dramless::simulate_built(*kind, &built, &params);
            let dt = t.elapsed().as_secs_f64();
            t_cell += dt;
            per_kind[ki].1 += dt;
        }
    }
    println!("build_system: {t_build_sys:.3}s   full cells: {t_cell:.3}s");
    for (name, secs) in &per_kind {
        println!("  {name:<28} {secs:.3}s");
    }
    println!("suite ops: {ops} ({mem_ops} mem) x11 backends");
    println!("sched build:  {t_sched:.3}s");
    println!("null direct:  {t_null_direct:.3}s   null replay: {t_null_replay:.3}s");
    println!("real direct:  {t_real_direct:.3}s   real replay: {t_real_replay:.3}s");
}
