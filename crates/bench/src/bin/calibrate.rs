//! `calibrate` — fits the analytic tier's coefficients to the accurate
//! tier and rewrites `crates/dramless/calibration.json`.
//!
//! For every Table I preset (plus the firmware variant and the ideal),
//! the fitter:
//!
//! 1. runs a **calibration set** of workloads on the accurate tier and
//!    extracts the observed execution-phase wall-clock;
//! 2. solves a non-negative least-squares fit of the closed form's
//!    per-request service times (buffer hit, medium fetch, medium
//!    write) against those observations, re-picking each cell's
//!    critical agent as the coefficients converge; rows are weighted by
//!    the inverse of the observation so the fit minimises *relative*
//!    error — the quantity the drift bounds are stated in;
//! 3. fits the execution-phase backend *energy* residual (total
//!    accurate energy minus everything the analytic model computes
//!    exactly) as a linear model in the classified request counts;
//! 4. measures the resulting drift on the calibration set plus a
//!    **held-out** set the fit never saw, and commits
//!    `1.5 × max drift + 2%` as the entry's drift bound — the contract
//!    `tests/tier_calibration.rs` enforces.
//!
//! ```sh
//! cargo run --release -p bench --bin calibrate            # rewrite the table
//! cargo run --release -p bench --bin calibrate -- out.json
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use dramless::analytic::{
    axes_key, run_with_entry, AgentDesign, CalibEntry, CalibrationTable, ExecModel,
    CALIBRATION_SCHEMA,
};
use dramless::{simulate_built, RunOutcome, SystemKind, SystemParams};
use util::json::ToJson;
use workloads::suite::BuiltWorkload;
use workloads::{Kernel, Scale, Workload};

/// Workloads the coefficients are fitted against: enough spread in
/// fill/write-back mix and footprint that the three service times are
/// separately identifiable.
fn calibration_set() -> Vec<Workload> {
    [
        (Kernel::Gemver, 0.25),
        (Kernel::Gemver, 0.12),
        (Kernel::Trisolv, 0.25),
        (Kernel::Jaco2d, 0.25),
        (Kernel::Jaco2d, 0.35),
        (Kernel::Durbin, 0.25),
        (Kernel::Floyd, 0.25),
        (Kernel::Dynpro, 0.25),
        (Kernel::Regd, 0.25),
        // Full-scale rows: queue saturation and page-cache pressure grow
        // nonlinearly with footprint, so the fit must span the scale
        // axis or the coefficients underprice the evaluation scale.
        (Kernel::Gemver, 1.0),
        (Kernel::Jaco2d, 1.0),
        (Kernel::Floyd, 1.0),
    ]
    .into_iter()
    .map(|(k, s)| Workload::of(k, Scale(s)))
    .collect()
}

/// Held-out workloads: only used to measure (and bound) drift.
fn held_out_set() -> Vec<Workload> {
    [
        (Kernel::Lu, 0.3),
        (Kernel::Seidel, 0.25),
        (Kernel::Trisolv, 1.0),
    ]
    .into_iter()
    .map(|(k, s)| Workload::of(k, Scale(s)))
    .collect()
}

/// All twelve calibrated presets.
fn presets() -> Vec<SystemKind> {
    let mut v = SystemKind::EVALUATED.to_vec();
    v.push(SystemKind::Ideal);
    v
}

/// Gaussian elimination with partial pivoting. `None` when singular.
fn gauss(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            let (top, rest) = a.split_at_mut(row);
            for (dst, src) in rest[0].iter_mut().zip(&top[col]).skip(col) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// Non-negative least squares over `rows` of (coefficients, target):
/// solves the normal equations on the active column set, drops the
/// most-negative coefficient and re-solves until all are >= 0.
/// All-zero columns are excluded up front (their coefficient stays 0).
fn solve_nnls(rows: &[(Vec<f64>, f64)], k: usize) -> Vec<f64> {
    let mut x = vec![0.0; k];
    let mut active: Vec<usize> = (0..k)
        .filter(|&j| rows.iter().any(|(a, _)| a[j].abs() > 0.0))
        .collect();
    while !active.is_empty() {
        let m = active.len();
        let mut ata = vec![vec![0.0; m]; m];
        let mut atb = vec![0.0; m];
        for (a, b) in rows {
            for (i, &ji) in active.iter().enumerate() {
                atb[i] += a[ji] * b;
                for (l, &jl) in active.iter().enumerate() {
                    ata[i][l] += a[ji] * a[jl];
                }
            }
        }
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] *= 1.0 + 1e-9; // tiny ridge for conditioning
        }
        match gauss(ata, atb) {
            Some(sol) => {
                let worst = sol
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v < 0.0)
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i);
                match worst {
                    Some(i) => {
                        active.remove(i);
                    }
                    None => {
                        for (i, &j) in active.iter().enumerate() {
                            x[j] = sol[i];
                        }
                        break;
                    }
                }
            }
            None => {
                active.pop();
            }
        }
    }
    x
}

/// Ordinary least squares with a tiny ridge — coefficients may be
/// negative. Used for the energy residual, where a negative term is a
/// legitimate correction (the closed form's summed stall double-counts
/// shared waits, overcharging PE-stall energy); the runtime clamps the
/// total charge at zero.
fn solve_lsq(rows: &[(Vec<f64>, f64)], k: usize) -> Vec<f64> {
    let mut x = vec![0.0; k];
    let active: Vec<usize> = (0..k)
        .filter(|&j| rows.iter().any(|(a, _)| a[j].abs() > 0.0))
        .collect();
    let m = active.len();
    if m == 0 {
        return x;
    }
    let mut ata = vec![vec![0.0; m]; m];
    let mut atb = vec![0.0; m];
    for (a, b) in rows {
        for (i, &ji) in active.iter().enumerate() {
            atb[i] += a[ji] * b;
            for (l, &jl) in active.iter().enumerate() {
                ata[i][l] += a[ji] * a[jl];
            }
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] *= 1.0 + 1e-9;
    }
    if let Some(sol) = gauss(ata, atb) {
        for (i, &j) in active.iter().enumerate() {
            x[j] = sol[i];
        }
    }
    x
}

/// The modeled end time of one agent row under coefficients
/// `[tail, hit, miss, wb]` (ns).
fn row_end(a: &AgentDesign, x: &[f64]) -> f64 {
    a.fixed_ns + x[0] + a.hits * x[1] + a.misses * x[2] + a.wbs * x[3]
}

/// One `(preset, workload)` observation: the accurate outcome plus the
/// coefficient-independent parts of the analytic model.
struct CellObs {
    built: Arc<BuiltWorkload>,
    design: Vec<AgentDesign>,
    acc: RunOutcome,
}

/// Fits `[tail_ns, fill_hit_ns, fill_miss_ns, wb_ns]` so the critical
/// agent's closed-form end matches the observed execution span. The
/// critical agent depends on the coefficients, so selection and fit
/// iterate to a fixed point (converges in 2-3 rounds for near-symmetric
/// agents). Rows are scaled by 1/observation: the fit minimises
/// *relative* error.
fn fit_latency(cells: &[CellObs], with_tail: bool) -> [f64; 4] {
    let mut x = vec![0.0, 100.0, 10_000.0, 100.0];
    for _ in 0..6 {
        let rows: Vec<(Vec<f64>, f64)> = cells
            .iter()
            .map(|cell| {
                let observed_ns = cell.acc.exec.total_time.as_ns_f64();
                let crit = cell
                    .design
                    .iter()
                    .max_by(|a, b| row_end(a, &x).total_cmp(&row_end(b, &x)))
                    .expect("at least one agent");
                let target = (observed_ns - crit.fixed_ns).max(0.0);
                let w = 1.0 / observed_ns.max(1.0);
                let tail_col = if with_tail { w } else { 0.0 };
                (
                    vec![tail_col, crit.hits * w, crit.misses * w, crit.wbs * w],
                    target * w,
                )
            })
            .collect();
        x = solve_nnls(&rows, 4);
    }
    [x[0], x[1], x[2], x[3]]
}

/// Max fractional time drift of `entry` over `cells` — the candidate
/// score for model selection (time only; the energy terms are fitted
/// afterwards on the winner).
fn max_time_drift(
    spec: &dramless::SystemSpec,
    params: &SystemParams,
    cells: &[CellObs],
    entry: &CalibEntry,
) -> f64 {
    cells
        .iter()
        .map(|cell| {
            let ana =
                run_with_entry(spec, &cell.built, params, entry.clone()).expect("preset composes");
            (ana.total_time.as_ns_f64() / cell.acc.total_time.as_ns_f64() - 1.0).abs()
        })
        .fold(0.0, f64::max)
}

/// The fitted closed-form execution span of one cell (ns).
fn predicted_span_ns(cell: &CellObs, x: &[f64]) -> f64 {
    cell.design
        .iter()
        .map(|a| row_end(a, x))
        .fold(0.0, f64::max)
}

struct Drift {
    time: f64,
    energy: f64,
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../dramless/calibration.json").to_string()
    });
    let params = SystemParams::default();
    let calib_n = calibration_set().len();
    let all: Vec<Workload> = calibration_set()
        .into_iter()
        .chain(held_out_set())
        .collect();

    println!(
        "{:<58} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "axes", "miss_ns", "hit_ns", "wb_ns", "dt_max", "de_max"
    );

    let mut entries = Vec::new();
    for kind in presets() {
        let spec = kind.spec();
        let key = axes_key(&spec);
        // A coefficient-free probe entry: the design matrix and request
        // classification don't depend on the coefficients.
        let probe = CalibEntry {
            key: key.clone(),
            fill_hit_ns: 0.0,
            fill_miss_ns: 0.0,
            wb_ns: 0.0,
            tail_ns: 0.0,
            hit_pj: 0.0,
            fill_pj: 0.0,
            wb_pj: 0.0,
            base_pj: 0.0,
            span_pw: 0.0,
            time_bound: 1.0,
            energy_bound: 1.0,
        };

        // One accurate run per cell, reused by every fitting stage.
        let cells: Vec<CellObs> = all
            .iter()
            .map(|w| {
                let built = w.build_cached(params.agents);
                let model = ExecModel::with_entry(&spec, &built, &params, probe.clone())
                    .expect("preset composes");
                let design = model.design(&params);
                let acc = simulate_built(kind, &built, &params);
                CellObs { built, design, acc }
            })
            .collect();

        // Fit with and without the tail intercept and keep whichever
        // drifts less on the calibration set (the columns are nearly
        // collinear for some presets, so let the data decide).
        let lat = [true, false]
            .into_iter()
            .map(|with_tail| fit_latency(&cells[..calib_n], with_tail))
            .min_by(|a, b| {
                let score = |x: &[f64; 4]| {
                    let e = CalibEntry {
                        tail_ns: x[0],
                        fill_hit_ns: x[1],
                        fill_miss_ns: x[2],
                        wb_ns: x[3],
                        ..probe.clone()
                    };
                    max_time_drift(&spec, &params, &cells[..calib_n], &e)
                };
                score(a).total_cmp(&score(b))
            })
            .expect("two candidates");
        let latency_only = CalibEntry {
            tail_ns: lat[0],
            fill_hit_ns: lat[1],
            fill_miss_ns: lat[2],
            wb_ns: lat[3],
            ..probe.clone()
        };

        // Fit the backend energy residual over the classified counts
        // plus the modeled span (background/static power).
        let erows: Vec<(Vec<f64>, f64)> = cells[..calib_n]
            .iter()
            .map(|cell| {
                let known = run_with_entry(&spec, &cell.built, &params, latency_only.clone())
                    .expect("preset composes");
                let residual_pj =
                    (cell.acc.total_energy().as_j() - known.total_energy().as_j()) * 1e12;
                let hits: f64 = cell.design.iter().map(|a| a.hits).sum();
                let misses: f64 = cell.design.iter().map(|a| a.misses).sum();
                let wbs: f64 = cell.design.iter().map(|a| a.wbs).sum();
                let span = predicted_span_ns(cell, &lat);
                let w = 1.0 / residual_pj.abs().max(1.0);
                (
                    vec![w, hits * w, misses * w, wbs * w, span * w],
                    residual_pj * w,
                )
            })
            .collect();
        let e = solve_lsq(&erows, 5);
        let fitted = CalibEntry {
            base_pj: e[0],
            hit_pj: e[1],
            fill_pj: e[2],
            wb_pj: e[3],
            span_pw: e[4],
            ..latency_only
        };

        // Measure drift on calibration + held-out cells, bound it.
        let mut dt_max = 0.0f64;
        let mut de_max = 0.0f64;
        for cell in &cells {
            let ana = run_with_entry(&spec, &cell.built, &params, fitted.clone())
                .expect("preset composes");
            let d = Drift {
                time: (ana.total_time.as_ns_f64() / cell.acc.total_time.as_ns_f64() - 1.0).abs(),
                energy: (ana.total_energy().as_j() / cell.acc.total_energy().as_j() - 1.0).abs(),
            };
            dt_max = dt_max.max(d.time);
            de_max = de_max.max(d.energy);
        }
        let bound = |d: f64| ((1.5 * d + 0.02) * 1000.0).ceil() / 1000.0;
        let entry = CalibEntry {
            time_bound: bound(dt_max),
            energy_bound: bound(de_max),
            ..fitted
        };
        println!(
            "{:<58} {:>9.1} {:>9.1} {:>9.1} {:>6.1}% {:>6.1}%",
            entry.key,
            entry.fill_miss_ns,
            entry.fill_hit_ns,
            entry.wb_ns,
            dt_max * 100.0,
            de_max * 100.0
        );
        entries.push(entry);
    }

    let table = CalibrationTable {
        schema: CALIBRATION_SCHEMA,
        entries,
    };
    if let Err(e) = std::fs::write(&out_path, table.to_json_pretty()) {
        eprintln!("calibrate: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("calibration table written to {out_path}");
    ExitCode::SUCCESS
}
