//! Shared plumbing for the figure/table regeneration benches.
//!
//! Every bench target in `benches/` reproduces one table or figure of the
//! paper's evaluation: it runs the relevant sweep and prints the same
//! rows/series the paper reports (see EXPERIMENTS.md for the
//! paper-vs-measured record). `cargo bench` runs them all.

use std::sync::Arc;

use dramless::{RunOutcome, SuiteResult, SystemKind, SystemParams};
use sim_core::stats::TimeSeries;
use sim_core::Picos;
use util::bench::Harness;
use workloads::suite::BuiltWorkload;
use workloads::{Scale, Workload};

/// The evaluation scale: `DRAMLESS_SCALE` env var, default 1.0 (the
/// calibrated point).
pub fn scale() -> Scale {
    Scale::from_env()
}

/// The full 15-kernel suite at the evaluation scale.
pub fn suite() -> Vec<Workload> {
    Workload::suite(scale())
}

/// Default system parameters for every bench.
pub fn params() -> SystemParams {
    SystemParams::default()
}

/// Sweeps `kinds × workloads` on the work-stealing engine
/// ([`dramless::sweep`]): every cell is one stealable task, traces come
/// from the process-wide cache, and the output order matches the serial
/// nested loop byte-for-byte.
pub fn sweep(kinds: &[SystemKind], workloads: &[Workload]) -> SuiteResult {
    dramless::sweep::sweep(kinds, workloads, &params())
}

/// Like [`sweep`], but records the sweep wall-clock and cells/second in
/// `harness` under `name` (the line CI's sweep-regression guard reads).
///
/// Two measurements land in the report: `<name>-build` (the one-time
/// trace-build phase, near-zero when the process-wide cache is warm) and
/// `<name>` (cell execution only — what cells/second is derived from).
/// Folding the build cost into the rate would understate steady-state
/// throughput and charge the first sweep of a process for work every
/// later sweep reuses.
pub fn sweep_timed(
    harness: &mut Harness,
    name: &str,
    kinds: &[SystemKind],
    workloads: &[Workload],
) -> SuiteResult {
    let (result, stats) = dramless::sweep_with_stats(kinds, workloads, &params());
    harness.record(&format!("{name}-build"), stats.build.as_nanos() as u64);
    harness.record_throughput(name, stats.cells as u64, stats.execute.as_nanos() as u64);
    result
}

/// Like [`sweep_timed`], but running every preset on the **analytic**
/// fidelity tier: same grid, same output identities
/// ([`dramless::SystemId::Preset`]), but each cell is priced by the
/// calibrated closed form instead of the cycle-accurate engine. The
/// recorded `<name>` / `<name>-build` measurements are what CI's
/// per-tier regression guard and the perf-trajectory artifact read.
pub fn sweep_timed_analytic(
    harness: &mut Harness,
    name: &str,
    kinds: &[SystemKind],
    workloads: &[Workload],
) -> SuiteResult {
    let systems: Vec<(dramless::SystemId, dramless::SystemSpec)> = kinds
        .iter()
        .map(|&k| {
            let spec = dramless::SystemSpec {
                tier: dramless::FidelityTier::Analytic,
                ..k.spec()
            };
            (dramless::SystemId::Preset(k), spec)
        })
        .collect();
    let (result, stats) = dramless::sweep::sweep_systems_with_stats(&systems, workloads, &params())
        .expect("every Table I preset composes on the analytic tier");
    harness.record(&format!("{name}-build"), stats.build.as_nanos() as u64);
    harness.record_throughput(name, stats.cells as u64, stats.execute.as_nanos() as u64);
    result
}

/// Builds `w` through the process-wide trace cache at the default agent
/// count — the bench targets that replay a single workload (Fig. 13/18/
/// 20, Table III) share builds with the sweeps this way.
pub fn built(w: &Workload) -> Arc<BuiltWorkload> {
    w.build_cached(params().agents)
}

/// Prints a header banner for a bench.
pub fn banner(id: &str, what: &str) {
    println!("==============================================================");
    println!("{id}: {what}");
    println!("==============================================================");
}

/// Renders a time series as fixed-width sample rows: `(t, value)` where
/// the accumulated bucket values are normalized by `per` (e.g. bucket
/// cycles for IPC, bucket seconds for watts).
pub fn print_series(name: &str, series: &TimeSeries, samples: usize, per: f64) {
    let horizon = series.horizon();
    if horizon.is_zero() {
        println!("{name}: (empty)");
        return;
    }
    let dense = series.dense(horizon);
    let stride = (dense.len() / samples.max(1)).max(1);
    println!(
        "{name} (bucket {} — {} buckets):",
        series.bucket_width(),
        dense.len()
    );
    let mut line = String::new();
    for (i, chunk) in dense.chunks(stride).enumerate() {
        let t = series.bucket_width() * (i as u64 * stride as u64);
        let v: f64 = chunk.iter().sum::<f64>() / chunk.len() as f64 / per;
        line.push_str(&format!("  ({:>9}, {:>8.3})", format!("{t}"), v));
        if (i + 1) % 4 == 0 {
            println!("{line}");
            line.clear();
        }
    }
    if !line.is_empty() {
        println!("{line}");
    }
}

/// Geometric mean of pairwise `f(outcome_a, outcome_b)` across kernels
/// present for both systems.
pub fn geo_mean_ratio(
    r: &SuiteResult,
    a: SystemKind,
    b: SystemKind,
    f: impl Fn(&RunOutcome) -> f64,
) -> f64 {
    let mut acc = 0.0;
    let mut n = 0u32;
    for o in &r.outcomes {
        if o.system == a {
            if let Some(base) = r.get(b, o.kernel) {
                acc += (f(o) / f(base)).ln();
                n += 1;
            }
        }
    }
    (acc / n.max(1) as f64).exp()
}

/// Milliseconds helper for table rows.
pub fn ms(t: Picos) -> f64 {
    t.as_ms_f64()
}
