#![warn(missing_docs)]

//! # workloads
//!
//! The paper's evaluation suite: 15 Polybench-derived kernels (§VI,
//! Table III), implemented as **real computations** whose array accesses
//! are instrumented to produce per-agent [`accel::Trace`]s.
//!
//! Each kernel exists once, written against the [`recorder::Recorder`]
//! abstraction: running it with a [`recorder::NullRecorder`] yields the
//! reference result (tested against mathematical properties), and running
//! it with a [`recorder::TraceRecorder`] additionally yields the
//! per-agent address/instruction streams the accelerator model replays.
//! Read/write mixes are therefore the kernels' true mixes, which is what
//! the Fig. 13 write-ratio circles and the read-/write-intensive
//! groupings of §VI-A derive from.
//!
//! Kernel sizes are scaled down from the paper's ≥10×-Polybench volumes
//! so a full 10-config × 15-workload sweep runs in seconds; the
//! `DRAMLESS_SCALE`-aware [`suite::Scale`] type controls this.

pub mod cache;
pub mod kernels;
pub mod recorder;
pub mod suite;

pub use recorder::{NullRecorder, Recorder, TraceRecorder};
pub use suite::{Kernel, Scale, Workload, WorkloadCharacter};
