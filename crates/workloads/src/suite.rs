//! The evaluated workload suite (Table III).
//!
//! [`Kernel`] enumerates the paper's 15 workloads with the figure labels
//! used throughout §VI; [`Workload`] binds a kernel to a problem size;
//! [`Workload::build`] produces per-agent traces plus the
//! [`WorkloadCharacter`] row (read/write intensity and data volumes) that
//! regenerates Table III and the Fig. 13 write-ratio circles.
//!
//! Sizes are scaled down from the paper's ≥10×-Polybench datasets so a
//! full sweep runs in seconds; set the `DRAMLESS_SCALE` environment
//! variable (e.g. `2.0`) to enlarge every kernel proportionally.

use crate::kernels::{linalg, medley, solvers, stencils, KernelRun};
use crate::recorder::{NullRecorder, TraceRecorder};
use accel::trace::Trace;
use std::fmt;

/// The 15 evaluated kernels, with the paper's figure labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Kernel {
    Adi,
    Chol,
    Doitg,
    Durbin,
    Dynpro,
    Fdtdap,
    Floyd,
    Gemver,
    Jaco1d,
    Jaco2d,
    Lu,
    Regd,
    Seidel,
    Trisolv,
    Trmm,
}

util::json_unit_enum!(Kernel {
    Adi,
    Chol,
    Doitg,
    Durbin,
    Dynpro,
    Fdtdap,
    Floyd,
    Gemver,
    Jaco1d,
    Jaco2d,
    Lu,
    Regd,
    Seidel,
    Trisolv,
    Trmm,
});

impl Kernel {
    /// All kernels in the paper's figure order.
    pub const ALL: [Kernel; 15] = [
        Kernel::Adi,
        Kernel::Chol,
        Kernel::Doitg,
        Kernel::Durbin,
        Kernel::Dynpro,
        Kernel::Fdtdap,
        Kernel::Floyd,
        Kernel::Gemver,
        Kernel::Jaco1d,
        Kernel::Jaco2d,
        Kernel::Lu,
        Kernel::Regd,
        Kernel::Seidel,
        Kernel::Trisolv,
        Kernel::Trmm,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Adi => "adi",
            Kernel::Chol => "chol",
            Kernel::Doitg => "doitg",
            Kernel::Durbin => "durbin",
            Kernel::Dynpro => "dynpro",
            Kernel::Fdtdap => "fdtdap",
            Kernel::Floyd => "floyd",
            Kernel::Gemver => "gemver",
            Kernel::Jaco1d => "jaco1D",
            Kernel::Jaco2d => "jaco2D",
            Kernel::Lu => "lu",
            Kernel::Regd => "regd",
            Kernel::Seidel => "seidel",
            Kernel::Trisolv => "trisolv",
            Kernel::Trmm => "trmm",
        }
    }

    /// §VI-A's read-intensive group.
    pub fn is_read_intensive(self) -> bool {
        matches!(
            self,
            Kernel::Durbin | Kernel::Dynpro | Kernel::Gemver | Kernel::Trisolv | Kernel::Regd
        )
    }

    /// §VI-B's write-intensive group.
    pub fn is_write_intensive(self) -> bool {
        matches!(
            self,
            Kernel::Chol
                | Kernel::Doitg
                | Kernel::Lu
                | Kernel::Seidel
                | Kernel::Adi
                | Kernel::Floyd
                | Kernel::Trmm
        )
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A global size multiplier for the suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

util::json_newtype!(Scale);

impl Scale {
    /// The default bench scale.
    pub fn paper() -> Self {
        Scale(1.0)
    }

    /// A reduced scale for unit/integration tests.
    pub fn small() -> Self {
        Scale(0.4)
    }

    /// Reads `DRAMLESS_SCALE` from the environment (default 1.0).
    pub fn from_env() -> Self {
        std::env::var("DRAMLESS_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| *v > 0.0)
            .map(Scale)
            .unwrap_or_else(Scale::paper)
    }

    fn dim(&self, base: usize) -> usize {
        ((base as f64 * self.0).round() as usize).max(4)
    }
}

/// A kernel bound to a problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Which kernel.
    pub kernel: Kernel,
    /// The principal dimension.
    pub n: usize,
    /// Timesteps / sweeps for iterative kernels (ignored by the rest).
    pub steps: usize,
}

util::json_struct!(Workload { kernel, n, steps });

/// A built workload: traces + characteristics.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    /// The workload description.
    pub workload: Workload,
    /// One trace per agent.
    pub traces: Vec<Trace>,
    /// The kernel's functional outcome.
    pub run: KernelRun,
    /// The Table III row.
    pub character: WorkloadCharacter,
}

/// One row of Table III: workload characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadCharacter {
    /// Figure label.
    pub kernel: Kernel,
    /// Working-set bytes.
    pub footprint: u64,
    /// Bytes staged in for heterogeneous systems.
    pub bytes_in: u64,
    /// Bytes staged out.
    pub bytes_out: u64,
    /// Memory operations in the traces.
    pub loads: u64,
    /// Store operations in the traces.
    pub stores: u64,
    /// Fraction of memory operations that are stores (the Fig. 13
    /// circles).
    pub write_ratio: f64,
    /// Instructions across all agents.
    pub instructions: u64,
}

util::json_struct!(WorkloadCharacter {
    kernel,
    footprint,
    bytes_in,
    bytes_out,
    loads,
    stores,
    write_ratio,
    instructions,
});

impl Workload {
    /// The default-scale instance of `kernel`.
    pub fn of(kernel: Kernel, scale: Scale) -> Self {
        // Base sizes tuned so every kernel produces 10^4–10^6 trace ops:
        // large enough to exercise caches and the memory subsystem,
        // small enough for second-scale sweeps.
        let (n, steps) = match kernel {
            Kernel::Adi => (scale.dim(36), 3),
            Kernel::Chol => (scale.dim(52), 1),
            Kernel::Doitg => (scale.dim(22), 1),
            Kernel::Durbin => (scale.dim(220), 1),
            Kernel::Dynpro => (scale.dim(40), 1),
            Kernel::Fdtdap => (scale.dim(40), 4),
            Kernel::Floyd => (scale.dim(34), 1),
            Kernel::Gemver => (scale.dim(72), 1),
            Kernel::Jaco1d => (scale.dim(2400), 6),
            Kernel::Jaco2d => (scale.dim(44), 4),
            Kernel::Lu => (scale.dim(48), 1),
            Kernel::Regd => (scale.dim(52), 4),
            Kernel::Seidel => (scale.dim(40), 3),
            Kernel::Trisolv => (scale.dim(130), 1),
            Kernel::Trmm => (scale.dim(42), 1),
        };
        Workload { kernel, n, steps }
    }

    /// The full 15-kernel suite at `scale`.
    pub fn suite(scale: Scale) -> Vec<Workload> {
        Kernel::ALL
            .iter()
            .map(|&k| Workload::of(k, scale))
            .collect()
    }

    /// Runs the kernel without instrumentation (reference result).
    pub fn reference(&self) -> KernelRun {
        let mut rec = NullRecorder;
        self.dispatch(1, &mut rec)
    }

    /// Runs the kernel with instrumentation, producing per-agent traces
    /// and the Table III characteristics.
    pub fn build(&self, agents: usize) -> BuiltWorkload {
        let mut rec = TraceRecorder::new(agents);
        let run = self.dispatch(agents, &mut rec);
        let traces = rec.into_traces();
        let (mut loads, mut stores, mut instructions) = (0, 0, 0);
        for t in &traces {
            let p = t.memory_profile();
            loads += p.0;
            stores += p.1;
            instructions += t.instructions();
        }
        let character = WorkloadCharacter {
            kernel: self.kernel,
            footprint: run.footprint,
            bytes_in: run.bytes_in,
            bytes_out: run.bytes_out,
            loads,
            stores,
            write_ratio: if loads + stores == 0 {
                0.0
            } else {
                stores as f64 / (loads + stores) as f64
            },
            instructions,
        };
        BuiltWorkload {
            workload: *self,
            traces,
            run,
            character,
        }
    }

    fn dispatch(&self, agents: usize, rec: &mut dyn crate::recorder::Recorder) -> KernelRun {
        let (n, steps) = (self.n, self.steps);
        match self.kernel {
            Kernel::Adi => stencils::adi(n, steps, agents, rec),
            Kernel::Chol => linalg::chol(n, agents, rec),
            Kernel::Doitg => linalg::doitg(n / 2, n / 2, n, agents, rec),
            Kernel::Durbin => solvers::durbin(n, agents, rec),
            Kernel::Dynpro => solvers::dynpro(n, agents, rec),
            Kernel::Fdtdap => stencils::fdtdap(n, steps, agents, rec),
            Kernel::Floyd => medley::floyd(n, agents, rec),
            Kernel::Gemver => linalg::gemver(n, agents, rec),
            Kernel::Jaco1d => stencils::jaco1d(n, steps, agents, rec),
            Kernel::Jaco2d => stencils::jaco2d(n, steps, agents, rec),
            Kernel::Lu => linalg::lu(n, agents, rec),
            Kernel::Regd => medley::regd(n, steps, agents, rec),
            Kernel::Seidel => stencils::seidel(n, steps, agents, rec),
            Kernel::Trisolv => solvers::trisolv(n, agents, rec),
            Kernel::Trmm => linalg::trmm(n, agents, rec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_15_kernels_in_figure_order() {
        let suite = Workload::suite(Scale::small());
        assert_eq!(suite.len(), 15);
        assert_eq!(suite[0].kernel.label(), "adi");
        assert_eq!(suite[14].kernel.label(), "trmm");
    }

    #[test]
    fn every_kernel_builds_traces_for_seven_agents() {
        for w in Workload::suite(Scale::small()) {
            let built = w.build(7);
            assert_eq!(built.traces.len(), 7, "{}", w.kernel);
            let total_ops: usize = built.traces.iter().map(|t| t.len()).sum();
            assert!(
                total_ops > 100,
                "{} produced only {total_ops} ops",
                w.kernel
            );
            assert!(built.character.instructions > 0);
            assert!(built.run.checksum.is_finite());
        }
    }

    #[test]
    fn reference_and_traced_runs_agree() {
        for k in [Kernel::Gemver, Kernel::Floyd, Kernel::Jaco2d, Kernel::Chol] {
            let w = Workload::of(k, Scale::small());
            let reference = w.reference();
            let built = w.build(3);
            assert_eq!(
                reference.checksum, built.run.checksum,
                "{k}: instrumentation must not change results"
            );
        }
    }

    #[test]
    fn write_ratios_separate_the_core_groups() {
        // The Fig. 13 circles: the canonical read-dominated solvers must
        // sit well below the overwrite-heavy kernels. (The paper's formal
        // classification uses output-per-input *volume*, which the
        // volume-based assertion below checks for gemver/trisolv.)
        let ratio = |k: Kernel| {
            Workload::of(k, Scale::small())
                .build(4)
                .character
                .write_ratio
        };
        let read_max = ratio(Kernel::Trisolv)
            .max(ratio(Kernel::Dynpro))
            .max(ratio(Kernel::Gemver));
        let write_min = ratio(Kernel::Adi)
            .min(ratio(Kernel::Lu))
            .min(ratio(Kernel::Floyd))
            .min(ratio(Kernel::Jaco1d));
        assert!(
            read_max < write_min,
            "groups overlap: read max {read_max:.2} vs write min {write_min:.2}"
        );
    }

    #[test]
    fn output_per_input_volume_classification() {
        // §VI: "The intensiveness of writes is classified by the amount
        // of output size per input size."
        let vol = |k: Kernel| {
            let c = Workload::of(k, Scale::small()).build(2).character;
            c.bytes_out as f64 / c.bytes_in as f64
        };
        // Read-intensive matrix-input solvers emit tiny outputs…
        assert!(vol(Kernel::Gemver) < 0.1);
        assert!(vol(Kernel::Trisolv) < 0.1);
        // …while the in-place factorizations/relaxations rewrite
        // everything they read.
        assert!(vol(Kernel::Lu) >= 1.0);
        assert!(vol(Kernel::Floyd) >= 1.0);
        assert!(vol(Kernel::Doitg) >= 0.6); // tensor rewritten; C4 adds input volume
    }

    #[test]
    fn scale_changes_problem_size() {
        let small = Workload::of(Kernel::Lu, Scale(0.5));
        let big = Workload::of(Kernel::Lu, Scale(1.0));
        assert!(small.n < big.n);
        assert!(small.build(2).character.footprint < big.build(2).character.footprint);
    }

    #[test]
    fn scale_from_env_parses() {
        // Not set in the test environment: default.
        let s = Scale::from_env();
        assert!(s.0 > 0.0);
    }
}
