//! Process-wide memoized trace cache.
//!
//! Building a workload is deterministic but not free: every trace op is
//! produced by actually running the kernel under a
//! [`TraceRecorder`](crate::recorder::TraceRecorder). The 15 bench
//! targets, the CLI and the sweep engine all want the same
//! `(kernel, size, agents)` builds, so [`Workload::build_cached`] hands
//! out shared [`Arc<BuiltWorkload>`]s and guarantees each distinct build
//! happens exactly once per process — even when several pool workers ask
//! for the same workload concurrently, only one of them runs the kernel
//! and the rest block on its [`OnceLock`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use accel::cache::CacheConfig;
use accel::sched::MemSchedule;

use crate::suite::{BuiltWorkload, Workload};

/// Everything that determines a build's output. `Scale` only influences
/// builds through the `n`/`steps` it picks, so the concrete dimensions
/// (not the scale factor) are the honest key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kernel: crate::suite::Kernel,
    n: usize,
    steps: usize,
    agents: usize,
}

type Slot = Arc<OnceLock<Arc<BuiltWorkload>>>;

fn cache() -> &'static Mutex<HashMap<Key, Slot>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Slot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Workload {
    /// Like [`Workload::build`], but memoized for the whole process.
    ///
    /// The first caller for a given `(kernel, n, steps, agents)` runs the
    /// kernel; everyone else (including concurrent callers racing with
    /// the first) gets the same `Arc` back. The map lock is only held
    /// long enough to find or insert the slot, so unrelated builds
    /// proceed in parallel.
    pub fn build_cached(&self, agents: usize) -> Arc<BuiltWorkload> {
        let key = Key {
            kernel: self.kernel,
            n: self.n,
            steps: self.steps,
            agents,
        };
        let slot = {
            let mut map = cache().lock().expect("workload cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        Arc::clone(slot.get_or_init(|| Arc::new(self.build(agents))))
    }
}

/// A build's memory schedule is keyed by the build key plus the cache
/// geometry it was replayed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SchedKey {
    kernel: crate::suite::Kernel,
    n: usize,
    steps: usize,
    agents: usize,
    l1: (u32, u32, u32),
    l2: (u32, u32, u32),
}

type SchedSlot = Arc<OnceLock<Arc<MemSchedule>>>;

fn sched_cache() -> &'static Mutex<HashMap<SchedKey, SchedSlot>> {
    static CACHE: OnceLock<Mutex<HashMap<SchedKey, SchedSlot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Workload {
    /// The memoized [`MemSchedule`] of this workload's cached build: the
    /// exact backend-facing request counts the accurate engine would
    /// produce for `agents` traces against `l1`/`l2` geometry. Because a
    /// schedule is backend-independent, one replay serves every system
    /// of a sweep row — the analytic tier's main amortization.
    pub fn schedule_cached(
        &self,
        agents: usize,
        l1: CacheConfig,
        l2: CacheConfig,
    ) -> Arc<MemSchedule> {
        let key = SchedKey {
            kernel: self.kernel,
            n: self.n,
            steps: self.steps,
            agents,
            l1: (l1.capacity, l1.line, l1.ways),
            l2: (l2.capacity, l2.line, l2.ways),
        };
        let slot = {
            let mut map = sched_cache().lock().expect("schedule cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        Arc::clone(slot.get_or_init(|| {
            let built = self.build_cached(agents);
            Arc::new(MemSchedule::build(&built.traces, l1, l2))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{Kernel, Scale};

    #[test]
    fn cached_builds_are_shared() {
        let w = Workload::of(Kernel::Trisolv, Scale(0.1));
        let a = w.build_cached(3);
        let b = w.build_cached(3);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one build");
        // A different agent count is a different build.
        let c = w.build_cached(4);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.traces.len(), 4);
    }

    #[test]
    fn cached_build_matches_direct_build() {
        let w = Workload::of(Kernel::Durbin, Scale(0.1));
        let cached = w.build_cached(2);
        let direct = w.build(2);
        assert_eq!(cached.character, direct.character);
        assert_eq!(cached.traces.len(), direct.traces.len());
    }

    #[test]
    fn cached_schedules_are_shared_and_exact() {
        let w = Workload::of(Kernel::Trisolv, Scale(0.1));
        let l1 = CacheConfig::l1();
        let l2 = CacheConfig::l2();
        let a = w.schedule_cached(2, l1, l2);
        let b = w.schedule_cached(2, l1, l2);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one schedule");
        let built = w.build_cached(2);
        assert_eq!(*a, MemSchedule::build(&built.traces, l1, l2));
        // Different geometry is a different schedule.
        let c = w.schedule_cached(2, CacheConfig::l1_paper(), l2);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn concurrent_callers_get_one_build() {
        let w = Workload::of(Kernel::Floyd, Scale(0.1));
        let arcs: Vec<_> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(move || w.build_cached(2)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
    }
}
