//! Process-wide memoized trace cache.
//!
//! Building a workload is deterministic but not free: every trace op is
//! produced by actually running the kernel under a
//! [`TraceRecorder`](crate::recorder::TraceRecorder). The 15 bench
//! targets, the CLI and the sweep engine all want the same
//! `(kernel, size, agents)` builds, so [`Workload::build_cached`] hands
//! out shared [`Arc<BuiltWorkload>`]s and guarantees each distinct build
//! happens exactly once per process — even when several pool workers ask
//! for the same workload concurrently, only one of them runs the kernel
//! and the rest block on its [`OnceLock`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use accel::cache::CacheConfig;
use accel::sched::MemSchedule;
use util::telemetry::MetricSet;

use crate::suite::{BuiltWorkload, Workload};

// Process-wide memoization counters. These are deliberately NOT part of
// any per-cell `MetricSet`: which caller populates a slot depends on
// thread scheduling, so folding them into cell reports would break the
// 1-thread-vs-N-thread byte-identity the sweep guarantees. They are
// global telemetry, snapshotted via [`stats`] / [`collect_metrics`].
static WORKLOAD_HITS: AtomicU64 = AtomicU64::new(0);
static WORKLOAD_MISSES: AtomicU64 = AtomicU64::new(0);
static SCHEDULE_HITS: AtomicU64 = AtomicU64::new(0);
static SCHEDULE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide memoization counters.
///
/// A *miss* means the calling thread performed the build; a *hit* means
/// an already-populated (or concurrently populated) slot was shared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `build_cached` calls served from the cache.
    pub workload_hits: u64,
    /// `build_cached` calls that ran the kernel.
    pub workload_misses: u64,
    /// Schedule lookups served from the cache.
    pub schedule_hits: u64,
    /// Schedule lookups that replayed the cache walk.
    pub schedule_misses: u64,
}

/// Reads the current memoization counters.
pub fn stats() -> CacheStats {
    CacheStats {
        workload_hits: WORKLOAD_HITS.load(Ordering::Relaxed),
        workload_misses: WORKLOAD_MISSES.load(Ordering::Relaxed),
        schedule_hits: SCHEDULE_HITS.load(Ordering::Relaxed),
        schedule_misses: SCHEDULE_MISSES.load(Ordering::Relaxed),
    }
}

/// Contributes the memoization counters to a process-level metric set
/// under the `cache.` prefix.
pub fn collect_metrics(out: &mut MetricSet) {
    let s = stats();
    out.add("cache.workload_hits", s.workload_hits);
    out.add("cache.workload_misses", s.workload_misses);
    out.add("cache.schedule_hits", s.schedule_hits);
    out.add("cache.schedule_misses", s.schedule_misses);
}

/// Everything that determines a build's output. `Scale` only influences
/// builds through the `n`/`steps` it picks, so the concrete dimensions
/// (not the scale factor) are the honest key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kernel: crate::suite::Kernel,
    n: usize,
    steps: usize,
    agents: usize,
}

type Slot = Arc<OnceLock<Arc<BuiltWorkload>>>;

fn cache() -> &'static Mutex<HashMap<Key, Slot>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Slot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Workload {
    /// Like [`Workload::build`], but memoized for the whole process.
    ///
    /// The first caller for a given `(kernel, n, steps, agents)` runs the
    /// kernel; everyone else (including concurrent callers racing with
    /// the first) gets the same `Arc` back. The map lock is only held
    /// long enough to find or insert the slot, so unrelated builds
    /// proceed in parallel.
    pub fn build_cached(&self, agents: usize) -> Arc<BuiltWorkload> {
        let key = Key {
            kernel: self.kernel,
            n: self.n,
            steps: self.steps,
            agents,
        };
        let slot = {
            let mut map = cache().lock().expect("workload cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut built_here = false;
        let built = Arc::clone(slot.get_or_init(|| {
            built_here = true;
            Arc::new(self.build(agents))
        }));
        if built_here {
            WORKLOAD_MISSES.fetch_add(1, Ordering::Relaxed);
        } else {
            WORKLOAD_HITS.fetch_add(1, Ordering::Relaxed);
        }
        built
    }
}

/// A memory schedule is a pure function of `(trace contents, cache
/// geometry)`, so the cache is *content-addressed*: the key hashes what
/// the traces actually are, not which workload produced them. That keeps
/// lookups correct even for traces that were mutated after the build
/// (ablations scalarize or re-shard traces) — altered content simply
/// hashes to a different key and rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SchedKey {
    /// Combined content fingerprint of every trace, in agent order.
    traces: u64,
    agents: usize,
    l1: (u32, u32, u32),
    l2: (u32, u32, u32),
}

type SchedSlot = Arc<OnceLock<Arc<MemSchedule>>>;

fn sched_cache() -> &'static Mutex<HashMap<SchedKey, SchedSlot>> {
    static CACHE: OnceLock<Mutex<HashMap<SchedKey, SchedSlot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The content address of a built workload's traces: an FNV-1a
/// combination of the per-trace fingerprints in agent order
/// (byte-at-a-time mixing — the granularity these cache keys have
/// always used).
///
/// This is the same value [`schedule_for`] keys its memo table with;
/// the record/replay layer embeds it in every `RunFingerprint` so a
/// replay can prove it is re-deriving the *same* request stream before
/// comparing anything downstream.
pub fn traces_fingerprint(built: &BuiltWorkload) -> u64 {
    let mut fp = util::fingerprint::Fnv64::new();
    for t in &built.traces {
        fp.mix_bytes(&t.fingerprint().to_le_bytes());
    }
    fp.value()
}

/// The process-wide memoized [`MemSchedule`] for `built`'s traces under
/// `l1`/`l2` geometry: the exact backend request stream the accurate
/// engine produces, plus its packed replay program.
///
/// A schedule is backend-independent, so one build serves every system
/// preset of a sweep row that shares a buffer geometry — the 11-system
/// smoke sweep derives each workload's schedule once instead of eleven
/// times. First caller replays the cache walk; concurrent and later
/// callers share the `Arc`.
pub fn schedule_for(built: &BuiltWorkload, l1: CacheConfig, l2: CacheConfig) -> Arc<MemSchedule> {
    let traces_fp = traces_fingerprint(built);
    let key = SchedKey {
        traces: traces_fp,
        agents: built.traces.len(),
        l1: (l1.capacity, l1.line, l1.ways),
        l2: (l2.capacity, l2.line, l2.ways),
    };
    let slot = {
        let mut map = sched_cache().lock().expect("schedule cache poisoned");
        Arc::clone(map.entry(key).or_default())
    };
    let mut built_here = false;
    let sched = Arc::clone(slot.get_or_init(|| {
        built_here = true;
        Arc::new(MemSchedule::build(&built.traces, l1, l2))
    }));
    if built_here {
        SCHEDULE_MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        SCHEDULE_HITS.fetch_add(1, Ordering::Relaxed);
    }
    sched
}

impl Workload {
    /// The memoized [`MemSchedule`] of this workload's cached build —
    /// [`schedule_for`] over [`Workload::build_cached`].
    pub fn schedule_cached(
        &self,
        agents: usize,
        l1: CacheConfig,
        l2: CacheConfig,
    ) -> Arc<MemSchedule> {
        schedule_for(&self.build_cached(agents), l1, l2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{Kernel, Scale};

    #[test]
    fn cached_builds_are_shared() {
        let w = Workload::of(Kernel::Trisolv, Scale(0.1));
        let a = w.build_cached(3);
        let b = w.build_cached(3);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one build");
        // A different agent count is a different build.
        let c = w.build_cached(4);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.traces.len(), 4);
    }

    #[test]
    fn cached_build_matches_direct_build() {
        let w = Workload::of(Kernel::Durbin, Scale(0.1));
        let cached = w.build_cached(2);
        let direct = w.build(2);
        assert_eq!(cached.character, direct.character);
        assert_eq!(cached.traces.len(), direct.traces.len());
    }

    #[test]
    fn cached_schedules_are_shared_and_exact() {
        let w = Workload::of(Kernel::Trisolv, Scale(0.1));
        let l1 = CacheConfig::l1();
        let l2 = CacheConfig::l2();
        let a = w.schedule_cached(2, l1, l2);
        let b = w.schedule_cached(2, l1, l2);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one schedule");
        let built = w.build_cached(2);
        assert_eq!(*a, MemSchedule::build(&built.traces, l1, l2));
        // Different geometry is a different schedule.
        let c = w.schedule_cached(2, CacheConfig::l1_paper(), l2);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn memoized_schedule_matches_fresh_build_for_every_case() {
        // Property: the process-wide schedule cache is invisible — for
        // any (workload, agents) the memoized schedule is identical to
        // one derived from scratch, under either cache geometry.
        let suite = Workload::suite(Scale(0.05));
        util::for_each_case!(24, |rng| {
            let w = suite[rng.range_u64(0, suite.len() as u64 - 1) as usize];
            let agents = rng.range_u64(1, 4) as usize;
            let (l1, l2) = if rng.chance(0.5) {
                (CacheConfig::l1(), CacheConfig::l2())
            } else {
                (CacheConfig::l1_paper(), CacheConfig::l2_paper())
            };
            let memoized = w.schedule_cached(agents, l1, l2);
            let fresh = MemSchedule::build(&w.build(agents).traces, l1, l2);
            assert_eq!(*memoized, fresh, "{:?} x{agents}", w.kernel);
        });
    }

    #[test]
    fn concurrent_callers_get_one_build() {
        let w = Workload::of(Kernel::Floyd, Scale(0.1));
        let arcs: Vec<_> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(move || w.build_cached(2)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
    }
}
