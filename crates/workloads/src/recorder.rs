//! Trace-capture instrumentation for kernels.
//!
//! Kernels compute on ordinary `f64` arrays wrapped in [`Arr`]; every
//! element access flows through a [`Recorder`], which either ignores it
//! ([`NullRecorder`], for reference runs) or appends it to the per-agent
//! [`Trace`]s ([`TraceRecorder`]). Array base addresses come from a
//! [`Layout`] bump allocator so the address streams hitting the memory
//! subsystem are consistent across runs and configs.

use accel::trace::{InstrBlock, Trace};
use std::ops::Range;

/// Base of the data region in the accelerator address space (the kernel
/// image region sits below).
pub const DATA_BASE: u64 = 0x0100_0000;

/// Receives the instruction/memory events a kernel emits.
pub trait Recorder {
    /// Agent `agent` loads `len` bytes at `addr`.
    fn load(&mut self, agent: usize, addr: u64, len: u32);
    /// Agent `agent` stores `len` bytes at `addr`.
    fn store(&mut self, agent: usize, addr: u64, len: u32);
    /// Agent `agent` executes a compute block.
    fn compute(&mut self, agent: usize, block: InstrBlock);
}

/// A recorder that discards everything — used for pure reference runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn load(&mut self, _: usize, _: u64, _: u32) {}
    fn store(&mut self, _: usize, _: u64, _: u32) {}
    fn compute(&mut self, _: usize, _: InstrBlock) {}
}

/// A recorder that builds one [`Trace`] per agent.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    traces: Vec<Trace>,
}

impl TraceRecorder {
    /// Creates a recorder for `agents` agents.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is zero.
    pub fn new(agents: usize) -> Self {
        assert!(agents > 0, "need at least one agent");
        TraceRecorder {
            traces: vec![Trace::new(); agents],
        }
    }

    /// Consumes the recorder, returning the per-agent traces.
    pub fn into_traces(self) -> Vec<Trace> {
        self.traces
    }
}

impl Recorder for TraceRecorder {
    fn load(&mut self, agent: usize, addr: u64, len: u32) {
        self.traces[agent].load(addr, len);
    }

    fn store(&mut self, agent: usize, addr: u64, len: u32) {
        self.traces[agent].store(addr, len);
    }

    fn compute(&mut self, agent: usize, block: InstrBlock) {
        self.traces[agent].compute(block);
    }
}

/// Bump allocator handing out array base addresses.
#[derive(Debug, Clone)]
pub struct Layout {
    next: u64,
}

impl Default for Layout {
    fn default() -> Self {
        Self::new()
    }
}

impl Layout {
    /// Starts allocating at [`DATA_BASE`].
    pub fn new() -> Self {
        Layout { next: DATA_BASE }
    }

    /// Reserves space for `elems` f64 elements, 256-byte aligned so
    /// arrays start on L2-line boundaries.
    pub fn alloc(&mut self, elems: usize) -> u64 {
        let base = self.next;
        let bytes = (elems as u64 * 8).div_ceil(256) * 256;
        self.next += bytes;
        base
    }

    /// Total bytes allocated so far.
    pub fn used(&self) -> u64 {
        self.next - DATA_BASE
    }
}

/// An instrumented 1-D array of f64.
#[derive(Debug, Clone)]
pub struct Arr {
    base: u64,
    data: Vec<f64>,
}

impl Arr {
    /// Allocates a zeroed array of `n` elements.
    pub fn zeroed(layout: &mut Layout, n: usize) -> Self {
        Arr {
            base: layout.alloc(n),
            data: vec![0.0; n],
        }
    }

    /// Allocates an array initialized by `f(i)`.
    pub fn init(layout: &mut Layout, n: usize, f: impl Fn(usize) -> f64) -> Self {
        Arr {
            base: layout.alloc(n),
            data: (0..n).map(f).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Recorded element read.
    #[inline]
    pub fn get(&self, rec: &mut dyn Recorder, agent: usize, i: usize) -> f64 {
        rec.load(agent, self.base + i as u64 * 8, 8);
        self.data[i]
    }

    /// Recorded element write.
    #[inline]
    pub fn set(&mut self, rec: &mut dyn Recorder, agent: usize, i: usize, v: f64) {
        rec.store(agent, self.base + i as u64 * 8, 8);
        self.data[i] = v;
    }

    /// Unrecorded view of the final contents (for verification).
    pub fn values(&self) -> &[f64] {
        &self.data
    }
}

/// An instrumented row-major 2-D array of f64.
#[derive(Debug, Clone)]
pub struct Arr2 {
    arr: Arr,
    cols: usize,
}

impl Arr2 {
    /// Allocates a zeroed `rows × cols` matrix.
    pub fn zeroed(layout: &mut Layout, rows: usize, cols: usize) -> Self {
        Arr2 {
            arr: Arr::zeroed(layout, rows * cols),
            cols,
        }
    }

    /// Allocates a matrix initialized by `f(i, j)`.
    pub fn init(
        layout: &mut Layout,
        rows: usize,
        cols: usize,
        f: impl Fn(usize, usize) -> f64,
    ) -> Self {
        Arr2 {
            arr: Arr::init(layout, rows * cols, |k| f(k / cols, k % cols)),
            cols,
        }
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.arr.len() / self.cols
    }

    /// Footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.arr.bytes()
    }

    /// Recorded element read.
    #[inline]
    pub fn get(&self, rec: &mut dyn Recorder, agent: usize, i: usize, j: usize) -> f64 {
        self.arr.get(rec, agent, i * self.cols + j)
    }

    /// Recorded element write.
    #[inline]
    pub fn set(&mut self, rec: &mut dyn Recorder, agent: usize, i: usize, j: usize, v: f64) {
        self.arr.set(rec, agent, i * self.cols + j, v);
    }

    /// Unrecorded view of the final contents.
    pub fn values(&self) -> &[f64] {
        self.arr.values()
    }
}

/// The contiguous slice of `0..n` assigned to agent `a` of `agents`
/// (block partitioning, remainder spread over the first agents).
pub fn chunk(n: usize, agents: usize, a: usize) -> Range<usize> {
    assert!(a < agents, "agent index out of range");
    let base = n / agents;
    let extra = n % agents;
    let start = a * base + a.min(extra);
    let len = base + usize::from(a < extra);
    start..(start + len).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_line_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.alloc(10); // 80 B -> 256 B slot
        let b = l.alloc(100);
        assert_eq!(a, DATA_BASE);
        assert_eq!(a % 256, 0);
        assert_eq!(b, DATA_BASE + 256);
        assert_eq!(b % 256, 0);
        assert_eq!(l.used(), 256 + 1024);
    }

    #[test]
    fn arr_records_accesses() {
        let mut layout = Layout::new();
        let mut rec = TraceRecorder::new(2);
        let mut a = Arr::zeroed(&mut layout, 16);
        a.set(&mut rec, 0, 3, 7.5);
        let v = a.get(&mut rec, 1, 3);
        assert_eq!(v, 7.5);
        let traces = rec.into_traces();
        let (l0, s0, _, _) = traces[0].memory_profile();
        let (l1, s1, _, _) = traces[1].memory_profile();
        assert_eq!((l0, s0), (0, 1));
        assert_eq!((l1, s1), (1, 0));
    }

    #[test]
    fn arr2_row_major_addressing() {
        let mut layout = Layout::new();
        let mut rec = TraceRecorder::new(1);
        let m = Arr2::init(&mut layout, 4, 4, |i, j| (i * 4 + j) as f64);
        assert_eq!(m.get(&mut rec, 0, 2, 3), 11.0);
        let traces = rec.into_traces();
        match traces[0].iter().next() {
            Some(accel::trace::TraceOp::Load { addr, .. }) => {
                assert_eq!(addr, DATA_BASE + (2 * 4 + 3) * 8);
            }
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn chunk_partitions_exactly() {
        for n in [0usize, 1, 7, 64, 100] {
            for agents in [1usize, 3, 7] {
                let mut covered = 0;
                let mut prev_end = 0;
                for a in 0..agents {
                    let r = chunk(n, agents, a);
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, n, "n={n} agents={agents}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn null_recorder_costs_nothing() {
        let mut layout = Layout::new();
        let mut rec = NullRecorder;
        let mut a = Arr::zeroed(&mut layout, 4);
        a.set(&mut rec, 0, 0, 1.0);
        assert_eq!(a.get(&mut rec, 0, 0), 1.0);
    }
}
