//! Sequential solver kernels: durbin, trisolv, dynpro.
//!
//! These are the paper's read-intensive group (§VI-A: "for read-intensive
//! workloads (e.g., durbin, dynpro, gemver and trisolv) …"): small output
//! vectors produced from triangular/recursive sweeps over the inputs.

use super::{div, mac, KernelRun};
use crate::recorder::{chunk, Arr, Arr2, Layout, Recorder};

/// Levinson–Durbin recursion (`durbin`): solves the Toeplitz system
/// `T(r) · y = -r` incrementally.
pub fn durbin(n: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    assert!(n >= 2, "durbin needs n >= 2");
    let mut layout = Layout::new();
    // A well-conditioned autocorrelation-like sequence in (-1, 1).
    let r = Arr::init(&mut layout, n, |i| 0.5f64.powi(i as i32 + 1));
    let mut y = Arr::zeroed(&mut layout, n);
    let mut z = Arr::zeroed(&mut layout, n);
    let input_bytes = r.bytes();

    let mut alpha = -r.get(rec, 0, 0);
    let mut beta = 1.0;
    y.set(rec, 0, 0, alpha);
    for k in 1..n {
        beta *= 1.0 - alpha * alpha;
        mac(rec, 0);
        let mut sum = 0.0;
        for i in 0..k {
            sum += r.get(rec, 0, k - i - 1) * y.get(rec, 0, i);
            mac(rec, 0);
        }
        alpha = -(r.get(rec, 0, k) + sum) / beta;
        div(rec, 0);
        // The reflection update parallelizes across agents.
        for ag in 0..agents {
            for i in chunk(k, agents, ag) {
                let v = y.get(rec, ag, i) + alpha * y.get(rec, ag, k - i - 1);
                mac(rec, ag);
                z.set(rec, ag, i, v);
            }
        }
        for ag in 0..agents {
            for i in chunk(k, agents, ag) {
                let v = z.get(rec, ag, i);
                y.set(rec, ag, i, v);
            }
        }
        y.set(rec, 0, k, alpha);
    }
    KernelRun {
        checksum: KernelRun::digest(y.values()),
        footprint: layout.used(),
        bytes_in: input_bytes,
        bytes_out: y.bytes(),
        final_values: y.values().to_vec(),
    }
}

/// Forward substitution (`trisolv`): solves `L · x = b` for lower
/// triangular `L`.
pub fn trisolv(n: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    let mut layout = Layout::new();
    let l = Arr2::init(&mut layout, n, n, |i, j| {
        if i > j {
            1.0 / (2.0 + (i - j) as f64)
        } else if i == j {
            2.0
        } else {
            0.0
        }
    });
    let b = Arr::init(&mut layout, n, |i| (i % 9) as f64 + 1.0);
    let mut x = Arr::zeroed(&mut layout, n);
    let input_bytes = l.bytes() + b.bytes();
    for i in 0..n {
        // The dot product over the solved prefix parallelizes.
        let mut sum = 0.0;
        for ag in 0..agents {
            for j in chunk(i, agents, ag) {
                sum += l.get(rec, ag, i, j) * x.get(rec, ag, j);
                mac(rec, ag);
            }
        }
        let v = (b.get(rec, 0, i) - sum) / l.get(rec, 0, i, i);
        div(rec, 0);
        x.set(rec, 0, i, v);
    }
    KernelRun {
        checksum: KernelRun::digest(x.values()),
        footprint: layout.used(),
        bytes_in: input_bytes,
        bytes_out: x.bytes(),
        final_values: x.values().to_vec(),
    }
}

/// Interval dynamic programming (`dynpro`): optimal-cost table over
/// intervals, `c[i][j] = min_{i<k<j}(c[i][k] + c[k][j]) + w[i][j]`.
pub fn dynpro(n: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    assert!(n >= 2, "dynpro needs n >= 2");
    let mut layout = Layout::new();
    let w = Arr2::init(&mut layout, n, n, |i, j| {
        ((i * 5 + j * 3) % 11) as f64 + 1.0
    });
    let mut c = Arr2::zeroed(&mut layout, n, n);
    let input_bytes = w.bytes();
    for span in 2..n {
        for i in 0..n - span {
            let j = i + span;
            let ag = chunk_owner(n, agents, i);
            let mut best = f64::INFINITY;
            for k in i + 1..j {
                let v = c.get(rec, ag, i, k) + c.get(rec, ag, k, j);
                mac(rec, ag);
                if v < best {
                    best = v;
                }
            }
            let v = best + w.get(rec, ag, i, j);
            mac(rec, ag);
            c.set(rec, ag, i, j, v);
        }
    }
    KernelRun {
        checksum: KernelRun::digest(c.values()),
        footprint: layout.used(),
        bytes_in: input_bytes,
        bytes_out: c.bytes() / 2,
        final_values: c.values().to_vec(),
    }
}

fn chunk_owner(n: usize, agents: usize, i: usize) -> usize {
    (0..agents)
        .find(|&a| chunk(n, agents, a).contains(&i))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NullRecorder;

    #[test]
    fn durbin_solves_the_toeplitz_system() {
        let n = 10;
        let run = durbin(n, 3, &mut NullRecorder);
        let y = &run.final_values;
        // T has 1.0 on the diagonal and r[|i-j|-1] off it; check T·y = -r.
        let r: Vec<f64> = (0..n).map(|i| 0.5f64.powi(i as i32 + 1)).collect();
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                let t = if i == j { 1.0 } else { r[i.abs_diff(j) - 1] };
                acc += t * y[j];
            }
            assert!(
                (acc + r[i]).abs() < 1e-9,
                "row {i}: T·y = {acc}, -r = {}",
                -r[i]
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index math mirrors the matrix definition
    fn trisolv_satisfies_lx_equals_b() {
        let n = 16;
        let run = trisolv(n, 3, &mut NullRecorder);
        let x = &run.final_values;
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..=i {
                let lij = if i == j {
                    2.0
                } else {
                    1.0 / (2.0 + (i - j) as f64)
                };
                acc += lij * x[j];
            }
            let b = (i % 9) as f64 + 1.0;
            assert!((acc - b).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn dynpro_costs_obey_bellman_optimality() {
        let n = 12;
        let run = dynpro(n, 2, &mut NullRecorder);
        let c = &run.final_values;
        let w = |i: usize, j: usize| ((i * 5 + j * 3) % 11) as f64 + 1.0;
        for i in 0..n {
            for j in i + 2..n {
                for k in i + 1..j {
                    assert!(
                        c[i * n + j] <= c[i * n + k] + c[k * n + j] + w(i, j) + 1e-9,
                        "suboptimal at ({i},{k},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn solvers_independent_of_agent_count() {
        for agents in [1, 3, 7] {
            let d = durbin(12, agents, &mut NullRecorder);
            let t = trisolv(12, agents, &mut NullRecorder);
            let p = dynpro(10, agents, &mut NullRecorder);
            let d1 = durbin(12, 1, &mut NullRecorder);
            let t1 = trisolv(12, 1, &mut NullRecorder);
            let p1 = dynpro(10, 1, &mut NullRecorder);
            assert_eq!(d.final_values, d1.final_values);
            assert_eq!(t.final_values, t1.final_values);
            assert_eq!(p.final_values, p1.final_values);
        }
    }

    #[test]
    fn solvers_are_read_dominated() {
        let mut rec = crate::recorder::TraceRecorder::new(2);
        trisolv(64, 2, &mut rec);
        let (loads, stores, _, _) = rec.into_traces().iter().fold((0, 0, 0, 0), |acc, t| {
            let p = t.memory_profile();
            (acc.0 + p.0, acc.1 + p.1, 0, 0)
        });
        assert!(loads > stores * 10, "loads={loads} stores={stores}");
    }
}
