//! Medley kernels: floyd (all-pairs shortest paths) and regd (a
//! regularity-detection-style accumulation over triangular tables).

use super::{alu, mac, KernelRun};
use crate::recorder::{chunk, Arr2, Layout, Recorder};

/// Floyd–Warshall all-pairs shortest paths (`floyd`): for each pivot `k`,
/// `path[i][j] = min(path[i][j], path[i][k] + path[k][j])` — an in-place
/// O(n³) relaxation that rewrites the whole matrix around every pivot,
/// making it one of the paper's overwrite-heavy kernels.
pub fn floyd(n: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    let mut layout = Layout::new();
    // A deterministic sparse-ish weighted graph.
    let mut path = Arr2::init(&mut layout, n, n, |i, j| {
        if i == j {
            0.0
        } else if (i * 7 + j * 11) % 4 == 0 {
            ((i * 13 + j * 17) % 19) as f64 + 1.0
        } else {
            1.0e6 // effectively unconnected
        }
    });
    let input_bytes = path.bytes();
    for k in 0..n {
        for ag in 0..agents {
            for i in chunk(n, agents, ag) {
                let ik = path.get(rec, ag, i, k);
                for j in 0..n {
                    let via = ik + path.get(rec, ag, k, j);
                    alu(rec, ag, 2);
                    // Unconditional min-store, as in the reference loop —
                    // every (i, j) is rewritten around every pivot, which
                    // is what makes floyd overwrite-heavy.
                    let cur = path.get(rec, ag, i, j);
                    path.set(rec, ag, i, j, if via < cur { via } else { cur });
                }
            }
        }
    }
    KernelRun {
        checksum: KernelRun::digest(path.values()),
        footprint: layout.used(),
        bytes_in: input_bytes,
        bytes_out: path.bytes(),
        final_values: path.values().to_vec(),
    }
}

/// A regularity-detection-style medley kernel (`regd`).
///
/// Repeated passes accumulate pairwise differences over the upper
/// triangle of a grid into running sums, then reduce each row into a
/// path table — triangular iteration, high read:write ratio, and a small
/// output, mirroring the access character of Polybench's `reg_detect`.
pub fn regd(n: usize, steps: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    let mut layout = Layout::new();
    let tangent = Arr2::init(&mut layout, n, n, |i, j| {
        ((i * 3 + j * 5) % 23) as f64 * 0.25
    });
    let mut sum_diff = Arr2::zeroed(&mut layout, n, n);
    let mut path = Arr2::zeroed(&mut layout, n, n);
    let input_bytes = tangent.bytes();
    for _ in 0..steps {
        // Accumulate banded differences over the upper triangle.
        for ag in 0..agents {
            for jj in chunk(n, agents, ag) {
                let j = jj;
                for i in j..n {
                    let d = (tangent.get(rec, ag, j, i) - tangent.get(rec, ag, j, j)).abs();
                    mac(rec, ag);
                    let v = sum_diff.get(rec, ag, j, i) + d;
                    alu(rec, ag, 1);
                    sum_diff.set(rec, ag, j, i, v);
                }
            }
        }
        // Path reduction along the diagonal bands.
        for ag in 0..agents {
            for jj in chunk(n, agents, ag) {
                let j = jj;
                let mut acc = 0.0;
                for i in j..n {
                    acc += sum_diff.get(rec, ag, j, i);
                    alu(rec, ag, 1);
                }
                path.set(rec, ag, 0, j, acc);
            }
        }
        for j in 1..n {
            let ag = chunk_owner(n, agents, j);
            let v = path.get(rec, ag, 0, j - 1) + path.get(rec, ag, 0, j);
            alu(rec, ag, 1);
            path.set(rec, ag, 0, j, v);
        }
    }
    KernelRun {
        checksum: KernelRun::digest(path.values()),
        footprint: layout.used(),
        bytes_in: input_bytes,
        bytes_out: (n as u64) * 8,
        final_values: path.values()[0..n].to_vec(),
    }
}

fn chunk_owner(n: usize, agents: usize, i: usize) -> usize {
    (0..agents)
        .find(|&a| chunk(n, agents, a).contains(&i))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NullRecorder;

    #[test]
    fn floyd_satisfies_triangle_inequality() {
        let n = 14;
        let run = floyd(n, 3, &mut NullRecorder);
        let d = &run.final_values;
        for i in 0..n {
            assert_eq!(d[i * n + i], 0.0, "diagonal must be zero");
            for j in 0..n {
                for k in 0..n {
                    assert!(
                        d[i * n + j] <= d[i * n + k] + d[k * n + j] + 1e-9,
                        "triangle inequality violated at ({i},{k},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn floyd_never_increases_distances() {
        let n = 12;
        let initial = |i: usize, j: usize| -> f64 {
            if i == j {
                0.0
            } else if (i * 7 + j * 11).is_multiple_of(4) {
                ((i * 13 + j * 17) % 19) as f64 + 1.0
            } else {
                1.0e6
            }
        };
        let run = floyd(n, 2, &mut NullRecorder);
        for i in 0..n {
            for j in 0..n {
                assert!(run.final_values[i * n + j] <= initial(i, j) + 1e-9);
            }
        }
    }

    #[test]
    fn floyd_agent_count_invariance() {
        // Relaxations around a pivot only read row k and column k, which
        // are stable within the pivot step, so any row split agrees.
        let a = floyd(12, 1, &mut NullRecorder);
        let b = floyd(12, 7, &mut NullRecorder);
        assert_eq!(a.final_values, b.final_values);
    }

    #[test]
    fn regd_path_is_monotone_prefix_sum() {
        let run = regd(16, 2, 2, &mut NullRecorder);
        let p = &run.final_values;
        for w in p.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "prefix sums must be nondecreasing");
        }
    }

    #[test]
    fn regd_deterministic() {
        let a = regd(16, 3, 1, &mut NullRecorder);
        let b = regd(16, 3, 4, &mut NullRecorder);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn floyd_is_overwrite_heavy() {
        let mut rec = crate::recorder::TraceRecorder::new(2);
        floyd(16, 2, &mut rec);
        let traces = rec.into_traces();
        let stores: u64 = traces.iter().map(|t| t.memory_profile().1).sum();
        assert!(stores > 0);
        // Repeated stores to the same words: distinct store targets are
        // far fewer than total stores (the selective-erase opportunity).
        let distinct: usize = traces.iter().map(|t| t.store_targets(32).len()).sum();
        assert!((distinct as u64) < stores);
    }
}
