//! The 15 evaluated kernels (Table III / Figs. 13–21).
//!
//! Every kernel is a real implementation of the underlying numerical
//! method, instrumented through [`crate::recorder::Recorder`]. Each
//! returns a [`KernelRun`] carrying the final values (verified against
//! mathematical properties in tests), a deterministic checksum, and the
//! data-volume accounting the heterogeneous staging model needs.

pub mod linalg;
pub mod medley;
pub mod solvers;
pub mod stencils;

use crate::recorder::Recorder;
use accel::trace::InstrBlock;

/// The outcome of one kernel execution.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Deterministic scalar digest of the outputs (regression anchor).
    pub checksum: f64,
    /// The primary output array's final values.
    pub final_values: Vec<f64>,
    /// Total bytes of all arrays (the working set).
    pub footprint: u64,
    /// Bytes of input data that must be staged in.
    pub bytes_in: u64,
    /// Bytes of results that must be staged out.
    pub bytes_out: u64,
}

impl KernelRun {
    pub(crate) fn digest(values: &[f64]) -> f64 {
        let mut acc = 0.0f64;
        for (i, v) in values.iter().enumerate() {
            debug_assert!(v.is_finite(), "non-finite value at {i}: {v}");
            acc += v.abs().ln_1p() * ((i % 97) as f64 + 1.0);
        }
        acc
    }
}

/// One fused multiply-accumulate with its loop/address overhead — ~2
/// issue cycles on the 8-wide PE, matching dependency-limited inner
/// loops on the real DSP.
#[inline]
pub(crate) fn mac(rec: &mut dyn Recorder, agent: usize) {
    rec.compute(
        agent,
        InstrBlock {
            m: 2,
            l: 2,
            s: 3,
            d: 3,
        },
    );
}

/// `n` plain ALU instructions.
#[inline]
pub(crate) fn alu(rec: &mut dyn Recorder, agent: usize, n: u64) {
    rec.compute(agent, InstrBlock::alu(n));
}

/// A divide/compare-heavy step (iterative divide on `.L`/`.S` units,
/// ~4 issue cycles).
#[inline]
pub(crate) fn div(rec: &mut dyn Recorder, agent: usize) {
    rec.compute(
        agent,
        InstrBlock {
            m: 0,
            l: 8,
            s: 8,
            d: 0,
        },
    );
}
