//! Iterative stencil kernels: jaco1D, jaco2D, seidel, adi, fdtdap.
//!
//! These are the paper's overwrite-heavy iterative workloads — every
//! timestep rewrites the grid arrays in place (or copies back), which is
//! the access pattern where §V-A's selective erasing pays off and plain
//! interleaving does not (Fig. 13: adi, floyd, jaco1D).

use super::{alu, mac, KernelRun};
use crate::recorder::{chunk, Arr, Arr2, Layout, Recorder};

/// 1-D Jacobi relaxation with copy-back (`jaco1D`).
///
/// `B[i] = (A[i-1] + A[i] + A[i+1]) / 3`, then `A = B`, for `steps`
/// sweeps over an `n`-element rod.
pub fn jaco1d(n: usize, steps: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    assert!(n >= 3, "jaco1d needs n >= 3");
    let mut layout = Layout::new();
    let mut a = Arr::init(&mut layout, n, |i| (i % 13) as f64);
    let mut b = Arr::zeroed(&mut layout, n);
    for _ in 0..steps {
        for ag in 0..agents {
            for i in chunk(n - 2, agents, ag) {
                let i = i + 1;
                let v = (a.get(rec, ag, i - 1) + a.get(rec, ag, i) + a.get(rec, ag, i + 1)) / 3.0;
                mac(rec, ag);
                b.set(rec, ag, i, v);
            }
        }
        // Copy-back overwrites A in place every sweep.
        for ag in 0..agents {
            for i in chunk(n - 2, agents, ag) {
                let i = i + 1;
                let v = b.get(rec, ag, i);
                a.set(rec, ag, i, v);
                alu(rec, ag, 2);
            }
        }
    }
    KernelRun {
        checksum: KernelRun::digest(a.values()),
        footprint: layout.used(),
        bytes_in: a.bytes(),
        bytes_out: a.bytes(),
        final_values: a.values().to_vec(),
    }
}

/// 2-D Jacobi relaxation with copy-back (`jaco2D`).
pub fn jaco2d(n: usize, steps: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    assert!(n >= 3, "jaco2d needs n >= 3");
    let mut layout = Layout::new();
    let mut a = Arr2::init(&mut layout, n, n, |i, j| ((i * 7 + j * 3) % 17) as f64);
    let mut b = Arr2::zeroed(&mut layout, n, n);
    for _ in 0..steps {
        for ag in 0..agents {
            for i in chunk(n - 2, agents, ag) {
                let i = i + 1;
                for j in 1..n - 1 {
                    let v = 0.2
                        * (a.get(rec, ag, i, j)
                            + a.get(rec, ag, i - 1, j)
                            + a.get(rec, ag, i + 1, j)
                            + a.get(rec, ag, i, j - 1)
                            + a.get(rec, ag, i, j + 1));
                    mac(rec, ag);
                    b.set(rec, ag, i, j, v);
                }
            }
        }
        for ag in 0..agents {
            for i in chunk(n - 2, agents, ag) {
                let i = i + 1;
                for j in 1..n - 1 {
                    let v = b.get(rec, ag, i, j);
                    a.set(rec, ag, i, j, v);
                    alu(rec, ag, 2);
                }
            }
        }
    }
    KernelRun {
        checksum: KernelRun::digest(a.values()),
        footprint: layout.used(),
        bytes_in: a.bytes(),
        bytes_out: a.bytes(),
        final_values: a.values().to_vec(),
    }
}

/// 2-D Gauss–Seidel sweeps, fully in place (`seidel`).
///
/// Each point becomes the average of its 9-point neighbourhood; updated
/// values feed the same sweep (the Gauss–Seidel dependence), so rows are
/// processed in order with the row range still chunked across agents for
/// traffic generation.
pub fn seidel(n: usize, steps: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    assert!(n >= 3, "seidel needs n >= 3");
    let mut layout = Layout::new();
    let mut a = Arr2::init(&mut layout, n, n, |i, j| ((i + j) % 11) as f64 + 2.0);
    for _ in 0..steps {
        for i in 1..n - 1 {
            let ag = chunk_owner(n - 2, agents, i - 1);
            for j in 1..n - 1 {
                let v = (a.get(rec, ag, i - 1, j - 1)
                    + a.get(rec, ag, i - 1, j)
                    + a.get(rec, ag, i - 1, j + 1)
                    + a.get(rec, ag, i, j - 1)
                    + a.get(rec, ag, i, j)
                    + a.get(rec, ag, i, j + 1)
                    + a.get(rec, ag, i + 1, j - 1)
                    + a.get(rec, ag, i + 1, j)
                    + a.get(rec, ag, i + 1, j + 1))
                    / 9.0;
                mac(rec, ag);
                a.set(rec, ag, i, j, v);
            }
        }
    }
    KernelRun {
        checksum: KernelRun::digest(a.values()),
        footprint: layout.used(),
        bytes_in: a.bytes(),
        bytes_out: a.bytes(),
        final_values: a.values().to_vec(),
    }
}

/// Alternating-direction-implicit sweeps (`adi`).
///
/// Each timestep runs a tridiagonal forward-elimination / back-
/// substitution pass along every row, then along every column, updating
/// the unknowns `X` and the pivots `B` in place — the classic
/// write-dominated ADI structure.
pub fn adi(n: usize, steps: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    assert!(n >= 2, "adi needs n >= 2");
    let mut layout = Layout::new();
    let mut x = Arr2::init(&mut layout, n, n, |i, j| ((i * n + j) % 7) as f64 + 1.0);
    let a = Arr2::init(&mut layout, n, n, |i, j| 0.25 + ((i + j) % 3) as f64 * 0.05);
    let mut b = Arr2::init(&mut layout, n, n, |_, _| 2.0);
    for _ in 0..steps {
        // Row sweeps.
        for ag in 0..agents {
            for i in chunk(n, agents, ag) {
                for j in 1..n {
                    let coef = a.get(rec, ag, i, j) / b.get(rec, ag, i, j - 1);
                    super::div(rec, ag);
                    let xv = x.get(rec, ag, i, j) - x.get(rec, ag, i, j - 1) * coef;
                    mac(rec, ag);
                    x.set(rec, ag, i, j, xv);
                    let bv = b.get(rec, ag, i, j) - a.get(rec, ag, i, j) * coef;
                    mac(rec, ag);
                    b.set(rec, ag, i, j, bv);
                }
                let last = x.get(rec, ag, i, n - 1) / b.get(rec, ag, i, n - 1);
                x.set(rec, ag, i, n - 1, last);
                for j in (0..n - 1).rev() {
                    let xv = (x.get(rec, ag, i, j)
                        - a.get(rec, ag, i, j + 1) * x.get(rec, ag, i, j + 1))
                        / b.get(rec, ag, i, j);
                    mac(rec, ag);
                    x.set(rec, ag, i, j, xv);
                }
            }
        }
        // Column sweeps (reset pivots first, as the row sweep consumed them).
        for ag in 0..agents {
            for j in chunk(n, agents, ag) {
                for i in 0..n {
                    b.set(rec, ag, i, j, 2.0);
                }
            }
        }
        for ag in 0..agents {
            for j in chunk(n, agents, ag) {
                for i in 1..n {
                    let coef = a.get(rec, ag, i, j) / b.get(rec, ag, i - 1, j);
                    super::div(rec, ag);
                    let xv = x.get(rec, ag, i, j) - x.get(rec, ag, i - 1, j) * coef;
                    mac(rec, ag);
                    x.set(rec, ag, i, j, xv);
                    let bv = b.get(rec, ag, i, j) - a.get(rec, ag, i, j) * coef;
                    mac(rec, ag);
                    b.set(rec, ag, i, j, bv);
                }
                let last = x.get(rec, ag, n - 1, j) / b.get(rec, ag, n - 1, j);
                x.set(rec, ag, n - 1, j, last);
                for i in (0..n - 1).rev() {
                    let xv = (x.get(rec, ag, i, j)
                        - a.get(rec, ag, i + 1, j) * x.get(rec, ag, i + 1, j))
                        / b.get(rec, ag, i, j);
                    mac(rec, ag);
                    x.set(rec, ag, i, j, xv);
                }
            }
        }
    }
    KernelRun {
        checksum: KernelRun::digest(x.values()),
        footprint: layout.used(),
        bytes_in: x.bytes() + a.bytes(),
        bytes_out: x.bytes(),
        final_values: x.values().to_vec(),
    }
}

/// 2-D finite-difference time-domain electromagnetic kernel (`fdtdap`).
///
/// Updates the `ex`/`ey` electric fields from the curl of `hz`, then the
/// `hz` magnetic field from the curl of the electric fields.
pub fn fdtdap(n: usize, steps: usize, agents: usize, rec: &mut dyn Recorder) -> KernelRun {
    assert!(n >= 2, "fdtdap needs n >= 2");
    let mut layout = Layout::new();
    let mut ex = Arr2::init(&mut layout, n, n, |i, j| ((i + 2 * j) % 9) as f64 * 0.1);
    let mut ey = Arr2::init(&mut layout, n, n, |i, j| ((2 * i + j) % 9) as f64 * 0.1);
    let mut hz = Arr2::init(&mut layout, n, n, |i, j| ((i * j) % 9) as f64 * 0.1);
    for t in 0..steps {
        // Source plane.
        for ag in 0..agents {
            for j in chunk(n, agents, ag) {
                ey.set(rec, ag, 0, j, t as f64);
            }
        }
        for ag in 0..agents {
            for i in chunk(n - 1, agents, ag) {
                let i = i + 1;
                for j in 0..n {
                    let v = ey.get(rec, ag, i, j)
                        - 0.5 * (hz.get(rec, ag, i, j) - hz.get(rec, ag, i - 1, j));
                    mac(rec, ag);
                    ey.set(rec, ag, i, j, v);
                }
            }
        }
        for ag in 0..agents {
            for i in chunk(n, agents, ag) {
                for j in 1..n {
                    let v = ex.get(rec, ag, i, j)
                        - 0.5 * (hz.get(rec, ag, i, j) - hz.get(rec, ag, i, j - 1));
                    mac(rec, ag);
                    ex.set(rec, ag, i, j, v);
                }
            }
        }
        for ag in 0..agents {
            for i in chunk(n - 1, agents, ag) {
                for j in 0..n - 1 {
                    let v = hz.get(rec, ag, i, j)
                        - 0.7
                            * (ex.get(rec, ag, i, j + 1) - ex.get(rec, ag, i, j)
                                + ey.get(rec, ag, i + 1, j)
                                - ey.get(rec, ag, i, j));
                    mac(rec, ag);
                    hz.set(rec, ag, i, j, v);
                }
            }
        }
    }
    KernelRun {
        checksum: KernelRun::digest(hz.values()),
        footprint: layout.used(),
        bytes_in: ex.bytes() + ey.bytes() + hz.bytes(),
        bytes_out: hz.bytes(),
        final_values: hz.values().to_vec(),
    }
}

/// Which agent owns index `i` under block chunking of `0..n`.
fn chunk_owner(n: usize, agents: usize, i: usize) -> usize {
    (0..agents)
        .find(|&a| chunk(n, agents, a).contains(&i))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NullRecorder;

    #[test]
    fn jacobi_preserves_value_bounds() {
        let r = jaco1d(64, 5, 3, &mut NullRecorder);
        for &v in &r.final_values {
            assert!(
                (0.0..=12.0).contains(&v),
                "averaging cannot escape bounds: {v}"
            );
        }
    }

    #[test]
    fn jacobi1d_smooths_towards_neighbours() {
        // Variance decreases monotonically with more sweeps.
        let spread = |vals: &[f64]| {
            let inner = &vals[1..vals.len() - 1];
            let m = inner.iter().sum::<f64>() / inner.len() as f64;
            inner.iter().map(|v| (v - m).powi(2)).sum::<f64>()
        };
        let one = jaco1d(64, 1, 1, &mut NullRecorder);
        let many = jaco1d(64, 8, 1, &mut NullRecorder);
        assert!(spread(&many.final_values) < spread(&one.final_values));
    }

    #[test]
    fn jaco2d_bounds_and_determinism() {
        let a = jaco2d(16, 3, 2, &mut NullRecorder);
        let b = jaco2d(16, 3, 2, &mut NullRecorder);
        assert_eq!(a.checksum, b.checksum);
        for &v in &a.final_values {
            assert!((0.0..=16.0).contains(&v));
        }
    }

    #[test]
    fn agent_count_does_not_change_jacobi_result() {
        // Jacobi is truly data-parallel: any agent split computes the
        // same grid.
        let a = jaco2d(16, 3, 1, &mut NullRecorder);
        let b = jaco2d(16, 3, 7, &mut NullRecorder);
        assert_eq!(a.final_values, b.final_values);
    }

    #[test]
    fn seidel_bounds() {
        let r = seidel(16, 3, 2, &mut NullRecorder);
        for &v in &r.final_values {
            assert!((0.0..=13.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn adi_produces_finite_fields() {
        let r = adi(12, 2, 3, &mut NullRecorder);
        assert!(r.final_values.iter().all(|v| v.is_finite()));
        assert!(r.checksum.is_finite());
    }

    #[test]
    fn fdtd_is_deterministic_and_finite() {
        let a = fdtdap(12, 3, 2, &mut NullRecorder);
        let b = fdtdap(12, 3, 2, &mut NullRecorder);
        assert_eq!(a.checksum, b.checksum);
        assert!(a.final_values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stencils_report_write_heavy_traffic() {
        let mut rec = crate::recorder::TraceRecorder::new(2);
        jaco1d(128, 2, 2, &mut rec);
        let traces = rec.into_traces();
        let (loads, stores, _, _) = traces.iter().fold((0, 0, 0, 0), |acc, t| {
            let p = t.memory_profile();
            (acc.0 + p.0, acc.1 + p.1, acc.2 + p.2, acc.3 + p.3)
        });
        // Copy-back makes stores a large fraction (2 stores per 4 loads).
        assert!(stores * 2 >= loads, "loads={loads} stores={stores}");
    }
}
