//! The work-stealing sweep engine.
//!
//! A full evaluation is a `config × workload` grid — 11 × 15 = 165
//! independent cells. The old driver parallelized at workload
//! granularity (15 coarse units), so wall-clock degenerated to the
//! slowest workload times all eleven configs. Here every cell is one
//! stealable task on [`util::pool`]:
//!
//! 1. **Build phase** — each workload's traces are built (or fetched
//!    from the process-wide [`workloads::cache`]) in parallel, handing
//!    out shared `Arc<BuiltWorkload>`s.
//! 2. **Cell phase** — cells are submitted in descending estimated-cost
//!    order (backend weight × trace ops), so expensive configs like
//!    Hetero and Integrated-TLC start first and the tail of the sweep is
//!    short cells, not a straggler.
//!
//! Results are scattered back to workload-major × config order by
//! submission index, so the output is byte-identical to the serial
//! sweep regardless of thread count or steal interleaving
//! (`tests/sweep_determinism.rs` locks this in). Thread count follows
//! the pool: `DRAMLESS_THREADS` if set, else available parallelism.

use std::sync::Arc;
use std::time::{Duration, Instant};

use util::pool::{global, Pool, Task};
use workloads::suite::BuiltWorkload;
use workloads::Workload;

use crate::config::{SystemKind, SystemParams};
use crate::report::{RunOutcome, SuiteResult};
use crate::system::simulate_built;

/// Wall-clock accounting for one sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepStats {
    /// `config × workload` cells simulated.
    pub cells: usize,
    /// End-to-end sweep wall-clock (build phase + cell phase).
    pub elapsed: Duration,
    /// Worker threads (including the caller) that executed it.
    pub threads: usize,
}

impl SweepStats {
    /// Simulated cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.cells as f64 / s
        } else {
            f64::INFINITY
        }
    }
}

/// Relative simulation cost of one cell on `kind`, from measured sweep
/// profiles: heterogeneous staging and dense flash dominate; the
/// load/store PRAM designs are cheap. Only the *ordering* matters —
/// a wrong weight costs schedule quality, never correctness.
fn kind_weight(kind: SystemKind) -> u64 {
    match kind {
        SystemKind::IntegratedTlc => 10,
        SystemKind::Hetero | SystemKind::IntegratedMlc => 8,
        SystemKind::Heterodirect | SystemKind::IntegratedSlc => 6,
        SystemKind::NorIntf => 5,
        SystemKind::HeteroPram | SystemKind::HeterodirectPram => 4,
        SystemKind::PageBuffer | SystemKind::DramLessFirmware => 3,
        SystemKind::DramLess => 2,
        SystemKind::Ideal => 1,
    }
}

/// Sweeps `kinds × workloads` on the global pool.
///
/// Output order (workload-major, then `kinds` order) and content are
/// identical to the serial nested loop, at any thread count.
pub fn sweep(kinds: &[SystemKind], workloads: &[Workload], params: &SystemParams) -> SuiteResult {
    sweep_on(global(), kinds, workloads, params).0
}

/// Like [`sweep`], also returning wall-clock stats for the bench
/// harness's cells/second line.
pub fn sweep_with_stats(
    kinds: &[SystemKind],
    workloads: &[Workload],
    params: &SystemParams,
) -> (SuiteResult, SweepStats) {
    sweep_on(global(), kinds, workloads, params)
}

/// Sweeps on an explicit pool (the determinism test runs the same grid
/// on a 1-thread and an N-thread pool and diffs the JSON).
pub fn sweep_on(
    pool: &Pool,
    kinds: &[SystemKind],
    workloads: &[Workload],
    params: &SystemParams,
) -> (SuiteResult, SweepStats) {
    let start = Instant::now();
    let agents = params.agents;

    // Phase 1: build every workload's traces in parallel, via the
    // process-wide cache so repeated sweeps (and the other bench
    // targets) reuse them.
    let built: Vec<Arc<BuiltWorkload>> = pool.run(
        workloads
            .iter()
            .map(|w| {
                let w = *w;
                Box::new(move || w.build_cached(agents)) as Task<_>
            })
            .collect(),
    );

    // Phase 2: one task per cell, submitted cost-descending. `slot` is
    // the cell's position in the canonical workload-major output order.
    struct Cell {
        slot: usize,
        kind: SystemKind,
        built: Arc<BuiltWorkload>,
        cost: u64,
    }
    let mut cells = Vec::with_capacity(workloads.len() * kinds.len());
    for (wi, b) in built.iter().enumerate() {
        let ops = b.character.loads + b.character.stores + b.character.instructions / 64;
        for (ki, &kind) in kinds.iter().enumerate() {
            cells.push(Cell {
                slot: wi * kinds.len() + ki,
                kind,
                built: Arc::clone(b),
                cost: kind_weight(kind) * ops.max(1),
            });
        }
    }
    cells.sort_by(|a, b| b.cost.cmp(&a.cost).then(a.slot.cmp(&b.slot)));
    let order: Vec<usize> = cells.iter().map(|c| c.slot).collect();

    let p = *params;
    let ran = pool.run(
        cells
            .into_iter()
            .map(|c| Box::new(move || simulate_built(c.kind, &c.built, &p)) as Task<_>)
            .collect(),
    );

    // Scatter back to canonical order, independent of who ran what.
    let mut outcomes: Vec<Option<RunOutcome>> = (0..order.len()).map(|_| None).collect();
    for (outcome, slot) in ran.into_iter().zip(order) {
        outcomes[slot] = Some(outcome);
    }
    let result = SuiteResult {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every cell simulated exactly once"))
            .collect(),
    };
    let stats = SweepStats {
        cells: result.outcomes.len(),
        elapsed: start.elapsed(),
        threads: pool.threads(),
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Kernel, Scale};

    #[test]
    fn sweep_matches_serial_nested_loop() {
        let kinds = [SystemKind::DramLess, SystemKind::NorIntf];
        let workloads: Vec<Workload> = [Kernel::Trisolv, Kernel::Durbin]
            .iter()
            .map(|&k| Workload::of(k, Scale(0.1)))
            .collect();
        let params = SystemParams {
            agents: 2,
            ..Default::default()
        };

        let mut serial = SuiteResult::default();
        for w in &workloads {
            let b = w.build(params.agents);
            for &k in &kinds {
                serial.outcomes.push(simulate_built(k, &b, &params));
            }
        }

        let pool = Pool::new(3);
        let (swept, stats) = sweep_on(&pool, &kinds, &workloads, &params);
        assert_eq!(stats.cells, 4);
        assert_eq!(swept.to_json(), serial.to_json());
    }

    #[test]
    fn every_kind_has_a_weight_order() {
        // The exact weights are heuristic; the invariant worth pinning
        // is that the proposed design is scheduled as cheaper than the
        // staging-bound and dense-flash systems it is compared against.
        assert!(kind_weight(SystemKind::Hetero) > kind_weight(SystemKind::DramLess));
        assert!(kind_weight(SystemKind::IntegratedTlc) > kind_weight(SystemKind::DramLess));
        assert!(kind_weight(SystemKind::DramLess) > kind_weight(SystemKind::Ideal));
    }
}
