//! The work-stealing sweep engine.
//!
//! A full evaluation is a `config × workload` grid — 11 × 15 = 165
//! independent cells. The old driver parallelized at workload
//! granularity (15 coarse units), so wall-clock degenerated to the
//! slowest workload times all eleven configs. Here every cell is one
//! stealable task on [`util::pool`]:
//!
//! 1. **Build phase** — each workload's traces are built (or fetched
//!    from the process-wide [`workloads::cache`]) in parallel, handing
//!    out shared `Arc<BuiltWorkload>`s.
//! 2. **Cell phase** — cells are submitted in descending estimated-cost
//!    order (backend weight × trace ops), so expensive configs like
//!    Hetero and Integrated-TLC start first and the tail of the sweep is
//!    short cells, not a straggler.
//!
//! Results are scattered back to workload-major × config order by
//! submission index, so the output is byte-identical to the serial
//! sweep regardless of thread count or steal interleaving
//! (`tests/sweep_determinism.rs` locks this in). Thread count follows
//! the pool: `DRAMLESS_THREADS` if set, else available parallelism.
//!
//! The engine is spec-driven: Table I presets go through
//! [`sweep`]/[`sweep_on`], and arbitrary [`SystemSpec`]s get the same
//! work stealing + trace cache via [`sweep_specs`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use util::pool::{global, Pool, Task};
use workloads::suite::BuiltWorkload;
use workloads::Workload;

use crate::config::{SystemId, SystemKind, SystemParams};
use crate::report::{RunOutcome, SuiteResult};
use crate::spec::{Control, Datapath, Medium, SpecError, SystemSpec};
use crate::system::{build_system, simulate_spec_as};
use flash::CellKind;

/// Wall-clock accounting for one sweep, with the one-time trace-build
/// phase split out from cell execution: trace building is amortised by
/// the process-wide cache (a second sweep pays ~zero), so folding it
/// into cells/second understates steady-state throughput.
#[derive(Debug, Clone, Copy)]
pub struct SweepStats {
    /// `config × workload` cells simulated.
    pub cells: usize,
    /// End-to-end sweep wall-clock (build phase + cell phase).
    pub elapsed: Duration,
    /// Trace-build phase only (cache hits make this near-zero on
    /// repeated sweeps).
    pub build: Duration,
    /// Cell-execution phase only — what cells/second is computed from.
    pub execute: Duration,
    /// Worker threads (including the caller) that executed it.
    pub threads: usize,
}

impl SweepStats {
    /// Simulated cells per second of *execution* wall-clock (excluding
    /// the one-time trace-build phase).
    pub fn cells_per_sec(&self) -> f64 {
        let s = self.execute.as_secs_f64();
        if s > 0.0 {
            self.cells as f64 / s
        } else {
            f64::INFINITY
        }
    }
}

/// Relative simulation cost of one cell on `spec`, from measured sweep
/// profiles: heterogeneous staging and dense flash dominate; the
/// load/store PRAM designs are cheap. Only the *ordering* matters —
/// a wrong weight costs schedule quality, never correctness.
fn spec_weight(spec: &SystemSpec) -> u64 {
    if spec.tier == crate::FidelityTier::Analytic {
        // Closed-form cells cost roughly the same tiny amount regardless
        // of medium — schedule them last so accurate cells start first.
        return 1;
    }
    match (spec.medium, spec.datapath) {
        (Medium::IntegratedFlash { cell }, _) => match cell {
            CellKind::Tlc => 10,
            CellKind::Mlc => 8,
            CellKind::Slc => 6,
        },
        (Medium::FlashSsd { .. }, Datapath::HostMediated) => 8,
        (Medium::FlashSsd { .. }, _) => 6,
        (Medium::NorPram, _) => 5,
        (Medium::PramSsd, _) => 4,
        (Medium::Pram3x, Datapath::HostMediated | Datapath::P2pDma) => 4,
        (Medium::Pram3x, Datapath::PageInterface) => 3,
        (Medium::Pram3x, Datapath::DirectLoadStore) => match spec.control {
            Control::Firmware { .. } => 3,
            Control::HardwareAutomated { .. } => 2,
        },
        (Medium::Dram, _) => 1,
    }
}

/// Sweeps `kinds × workloads` on the global pool.
///
/// Output order (workload-major, then `kinds` order) and content are
/// identical to the serial nested loop, at any thread count.
pub fn sweep(kinds: &[SystemKind], workloads: &[Workload], params: &SystemParams) -> SuiteResult {
    sweep_on(global(), kinds, workloads, params).0
}

/// Like [`sweep`], also returning wall-clock stats for the bench
/// harness's cells/second line.
pub fn sweep_with_stats(
    kinds: &[SystemKind],
    workloads: &[Workload],
    params: &SystemParams,
) -> (SuiteResult, SweepStats) {
    sweep_on(global(), kinds, workloads, params)
}

/// Sweeps on an explicit pool (the determinism test runs the same grid
/// on a 1-thread and an N-thread pool and diffs the JSON).
pub fn sweep_on(
    pool: &Pool,
    kinds: &[SystemKind],
    workloads: &[Workload],
    params: &SystemParams,
) -> (SuiteResult, SweepStats) {
    let systems: Vec<(SystemId, SystemSpec)> = kinds
        .iter()
        .map(|&k| (SystemId::Preset(k), k.spec()))
        .collect();
    sweep_systems_on(pool, &systems, workloads, params).expect("every Table I preset composes")
}

/// Sweeps arbitrary specs × workloads on the global pool, reporting each
/// spec under its display name.
///
/// # Errors
///
/// Returns [`SpecError`] — before any cell runs — if a spec's axes are
/// incompatible.
pub fn sweep_specs(
    specs: &[SystemSpec],
    workloads: &[Workload],
    params: &SystemParams,
) -> Result<SuiteResult, SpecError> {
    sweep_specs_on(global(), specs, workloads, params).map(|(r, _)| r)
}

/// Like [`sweep_specs`] on an explicit pool, with wall-clock stats.
///
/// # Errors
///
/// Returns [`SpecError`] if a spec's axes are incompatible.
pub fn sweep_specs_on(
    pool: &Pool,
    specs: &[SystemSpec],
    workloads: &[Workload],
    params: &SystemParams,
) -> Result<(SuiteResult, SweepStats), SpecError> {
    let systems: Vec<(SystemId, SystemSpec)> = specs
        .iter()
        .map(|s| (SystemId::Custom(s.display_name()), s.clone()))
        .collect();
    sweep_systems_on(pool, &systems, workloads, params)
}

/// Mixes presets and custom specs in one grid on the global pool — what
/// `dramless-sim` runs when given both `--system` and `--spec`.
///
/// # Errors
///
/// Returns [`SpecError`] if any spec's axes are incompatible.
pub fn sweep_systems_with_stats(
    systems: &[(SystemId, SystemSpec)],
    workloads: &[Workload],
    params: &SystemParams,
) -> Result<(SuiteResult, SweepStats), SpecError> {
    sweep_systems_on(global(), systems, workloads, params)
}

/// The general engine: any `(identity, spec)` list × workloads.
///
/// Every spec is validated with a probe [`build_system`] before any
/// cell is submitted, so a malformed spec fails the whole call up front
/// instead of panicking a worker mid-sweep.
///
/// # Errors
///
/// Returns [`SpecError`] if any spec's axes are incompatible.
pub fn sweep_systems_on(
    pool: &Pool,
    systems: &[(SystemId, SystemSpec)],
    workloads: &[Workload],
    params: &SystemParams,
) -> Result<(SuiteResult, SweepStats), SpecError> {
    let start = Instant::now();
    let agents = params.agents;

    for (id, spec) in systems {
        build_system(spec, params, params.page_bytes as u64)
            .map_err(|e| SpecError::new(format!("{}: {}", id.name(), e.message())))?;
    }

    // Phase 1: build every workload's traces in parallel, via the
    // process-wide cache so repeated sweeps (and the other bench
    // targets) reuse them.
    let built: Vec<Arc<BuiltWorkload>> = pool.run(
        workloads
            .iter()
            .map(|w| {
                let w = *w;
                Box::new(move || w.build_cached(agents)) as Task<_>
            })
            .collect(),
    );
    let built_at = Instant::now();

    // Phase 2: one task per cell, submitted cost-descending. `slot` is
    // the cell's position in the canonical workload-major output order.
    struct Cell {
        slot: usize,
        id: SystemId,
        spec: SystemSpec,
        built: Arc<BuiltWorkload>,
        cost: u64,
    }
    let mut cells = Vec::with_capacity(workloads.len() * systems.len());
    for (wi, b) in built.iter().enumerate() {
        let ops = b.character.loads + b.character.stores + b.character.instructions / 64;
        for (si, (id, spec)) in systems.iter().enumerate() {
            cells.push(Cell {
                slot: wi * systems.len() + si,
                id: id.clone(),
                spec: spec.clone(),
                built: Arc::clone(b),
                cost: spec_weight(spec) * ops.max(1),
            });
        }
    }
    cells.sort_by(|a, b| b.cost.cmp(&a.cost).then(a.slot.cmp(&b.slot)));
    let order: Vec<usize> = cells.iter().map(|c| c.slot).collect();

    let p = *params;
    let ran = pool.run(
        cells
            .into_iter()
            .map(|c| {
                Box::new(move || {
                    simulate_spec_as(c.id, &c.spec, &c.built, &p)
                        .expect("spec validated before the sweep")
                }) as Task<_>
            })
            .collect(),
    );

    // Scatter back to canonical order, independent of who ran what.
    let mut outcomes: Vec<Option<RunOutcome>> = (0..order.len()).map(|_| None).collect();
    for (outcome, slot) in ran.into_iter().zip(order) {
        outcomes[slot] = Some(outcome);
    }
    let result = SuiteResult {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every cell simulated exactly once"))
            .collect(),
    };
    let stats = SweepStats {
        cells: result.outcomes.len(),
        elapsed: start.elapsed(),
        build: built_at - start,
        execute: built_at.elapsed(),
        threads: pool.threads(),
    };
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::simulate_built;
    use workloads::{Kernel, Scale};

    fn kind_weight(kind: SystemKind) -> u64 {
        spec_weight(&kind.spec())
    }

    #[test]
    fn sweep_matches_serial_nested_loop() {
        let kinds = [SystemKind::DramLess, SystemKind::NorIntf];
        let workloads: Vec<Workload> = [Kernel::Trisolv, Kernel::Durbin]
            .iter()
            .map(|&k| Workload::of(k, Scale(0.1)))
            .collect();
        let params = SystemParams {
            agents: 2,
            ..Default::default()
        };

        let mut serial = SuiteResult::default();
        for w in &workloads {
            let b = w.build(params.agents);
            for &k in &kinds {
                serial.outcomes.push(simulate_built(k, &b, &params));
            }
        }

        let pool = Pool::new(3);
        let (swept, stats) = sweep_on(&pool, &kinds, &workloads, &params);
        assert_eq!(stats.cells, 4);
        assert_eq!(swept.to_json(), serial.to_json());
    }

    #[test]
    fn every_kind_has_a_weight_order() {
        // The exact weights are heuristic; the invariant worth pinning
        // is that the proposed design is scheduled as cheaper than the
        // staging-bound and dense-flash systems it is compared against.
        assert!(kind_weight(SystemKind::Hetero) > kind_weight(SystemKind::DramLess));
        assert!(kind_weight(SystemKind::IntegratedTlc) > kind_weight(SystemKind::DramLess));
        assert!(kind_weight(SystemKind::DramLess) > kind_weight(SystemKind::Ideal));
    }

    #[test]
    fn sweep_specs_reports_display_names() {
        let spec = SystemSpec {
            name: Some("my-rig".into()),
            ..SystemKind::DramLess.spec()
        };
        let workloads = [Workload::of(Kernel::Trisolv, Scale(0.1))];
        let params = SystemParams {
            agents: 2,
            ..Default::default()
        };
        let r = sweep_specs(&[spec], &workloads, &params).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.outcomes[0].system, SystemId::Custom("my-rig".into()));
        assert!(r.get_named("my-rig", Kernel::Trisolv).is_some());
    }

    #[test]
    fn sweep_specs_rejects_malformed_specs_up_front() {
        let bad = SystemSpec {
            buffer: crate::spec::Buffer::None,
            ..SystemKind::Hetero.spec()
        };
        let workloads = [Workload::of(Kernel::Trisolv, Scale(0.1))];
        let err = sweep_specs(&[bad], &workloads, &SystemParams::default());
        assert!(err.is_err());
    }
}
