//! `dramless-sim` — run any (system, kernel) combination from the
//! command line and print (or emit as JSON) the outcome.
//!
//! ```sh
//! dramless-sim --system dram-less --kernel gemver
//! dramless-sim --system hetero --kernel all --scale 1.5 --json results.json
//! dramless-sim --list
//! ```

use dramless::{RunOutcome, SystemKind, SystemParams};
use std::process::ExitCode;
use workloads::{Kernel, Scale, Workload};

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    systems: Vec<SystemKind>,
    kernels: Vec<Kernel>,
    scale: Scale,
    seed: u64,
    agents: usize,
    json: Option<String>,
}

fn usage() -> &'static str {
    "dramless-sim: simulate the DRAM-less accelerated systems\n\
     \n\
     USAGE:\n\
       dramless-sim [--system <name>|all] [--kernel <name>|all]\n\
                    [--scale <f>] [--seed <n>] [--agents <n>]\n\
                    [--json <path>] [--list]\n\
     \n\
     OPTIONS:\n\
       --system   a Table I system (e.g. dram-less, hetero, page-buffer),\n\
                  or `all` for every evaluated design  [default: dram-less]\n\
       --kernel   a Polybench kernel (e.g. gemver, doitg), or `all`\n\
                  [default: gemver]\n\
       --scale    workload scale factor                [default: 1.0]\n\
       --seed     determinism seed                     [default: 42]\n\
       --agents   agent PEs running the kernel         [default: 7]\n\
       --json     also write the full SuiteResult as JSON\n\
       --list     print the available systems and kernels, then exit"
}

fn parse_system(name: &str) -> Option<SystemKind> {
    let norm = name.to_ascii_lowercase().replace(['_', ' '], "-");
    let mut all = SystemKind::EVALUATED.to_vec();
    all.push(SystemKind::Ideal);
    all.into_iter().find(|k| {
        k.label()
            .to_ascii_lowercase()
            .replace([' ', '(', ')'], "-")
            .trim_matches('-')
            == norm
            || k.label().to_ascii_lowercase() == norm
    })
}

fn parse_kernel(name: &str) -> Option<Kernel> {
    Kernel::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(name))
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        systems: vec![SystemKind::DramLess],
        kernels: vec![Kernel::Gemver],
        scale: Scale::paper(),
        seed: 42,
        agents: 7,
        json: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--system" => {
                let v = value("--system")?;
                opts.systems = if v == "all" {
                    SystemKind::EVALUATED.to_vec()
                } else {
                    vec![parse_system(&v).ok_or_else(|| format!("unknown system `{v}`"))?]
                };
            }
            "--kernel" => {
                let v = value("--kernel")?;
                opts.kernels = if v == "all" {
                    Kernel::ALL.to_vec()
                } else {
                    vec![parse_kernel(&v).ok_or_else(|| format!("unknown kernel `{v}`"))?]
                };
            }
            "--scale" => {
                let v = value("--scale")?;
                let f: f64 = v.parse().map_err(|_| format!("bad scale `{v}`"))?;
                if f <= 0.0 {
                    return Err("scale must be positive".into());
                }
                opts.scale = Scale(f);
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--agents" => {
                let v = value("--agents")?;
                let n: usize = v.parse().map_err(|_| format!("bad agent count `{v}`"))?;
                if !(1..=7).contains(&n) {
                    return Err("agents must be in 1..=7 (8 PEs, one serves)".into());
                }
                opts.agents = n;
            }
            "--json" => opts.json = Some(value("--json")?),
            "--list" => {
                println!("systems:");
                for k in SystemKind::EVALUATED {
                    println!("  {}", k.label());
                }
                println!("  Ideal");
                println!("kernels:");
                for k in Kernel::ALL {
                    println!("  {}", k.label());
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
    }
    Ok(opts)
}

fn print_row(out: &RunOutcome) {
    println!(
        "{:<22} {:<10} {:>12} {:>10.1} MB/s {:>12} {:>8.3} IPC",
        out.system.label(),
        out.kernel.label(),
        format!("{}", out.total_time),
        out.bandwidth() / 1e6,
        format!("{}", out.total_energy()),
        out.total_ipc()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = SystemParams {
        seed: opts.seed,
        agents: opts.agents,
        ..Default::default()
    };
    let workloads: Vec<Workload> = opts
        .kernels
        .iter()
        .map(|&k| Workload::of(k, opts.scale))
        .collect();
    // The work-stealing engine returns outcomes in workload-major order
    // — exactly the order the old nested loop printed them in.
    let (result, stats) = dramless::sweep::sweep_with_stats(&opts.systems, &workloads, &params);
    println!(
        "{:<22} {:<10} {:>12} {:>15} {:>12} {:>12}",
        "system", "kernel", "total time", "bandwidth", "energy", "aggregate"
    );
    for out in &result.outcomes {
        print_row(out);
    }
    println!(
        "\n{} cells in {:.3}s on {} thread(s) — {:.1} cells/s",
        stats.cells,
        stats.elapsed.as_secs_f64(),
        stats.threads,
        stats.cells_per_sec()
    );
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, result.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {} outcomes to {path}", result.outcomes.len());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.systems, vec![SystemKind::DramLess]);
        assert_eq!(o.kernels, vec![Kernel::Gemver]);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn parses_system_aliases() {
        assert_eq!(parse_system("dram-less"), Some(SystemKind::DramLess));
        assert_eq!(parse_system("DRAM-less"), Some(SystemKind::DramLess));
        assert_eq!(parse_system("hetero"), Some(SystemKind::Hetero));
        assert_eq!(parse_system("page-buffer"), Some(SystemKind::PageBuffer));
        assert_eq!(parse_system("ideal"), Some(SystemKind::Ideal));
        assert_eq!(parse_system("nope"), None);
    }

    #[test]
    fn parses_kernels() {
        assert_eq!(parse_kernel("gemver"), Some(Kernel::Gemver));
        assert_eq!(parse_kernel("jaco1D"), Some(Kernel::Jaco1d));
        assert_eq!(parse_kernel("bogus"), None);
    }

    #[test]
    fn parses_full_command_line() {
        let args: Vec<String> = [
            "--system",
            "all",
            "--kernel",
            "all",
            "--scale",
            "0.5",
            "--seed",
            "9",
            "--agents",
            "3",
            "--json",
            "/tmp/out.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse(&args).unwrap();
        assert_eq!(o.systems.len(), 11);
        assert_eq!(o.kernels.len(), 15);
        assert_eq!(o.scale.0, 0.5);
        assert_eq!(o.seed, 9);
        assert_eq!(o.agents, 3);
        assert_eq!(o.json.as_deref(), Some("/tmp/out.json"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--system".into(), "warp-drive".into()]).is_err());
        assert!(parse(&["--scale".into(), "-1".into()]).is_err());
        assert!(parse(&["--agents".into(), "9".into()]).is_err());
        assert!(parse(&["--frobnicate".into()]).is_err());
        assert!(parse(&["--seed".into()]).is_err());
    }
}
