//! `dramless-sim` — run any (system, kernel) combination from the
//! command line and print (or emit as JSON) the outcome.
//!
//! ```sh
//! dramless-sim --system dram-less --kernel gemver
//! dramless-sim --system hetero --kernel all --scale 1.5 --json results.json
//! dramless-sim --spec my_config.json --kernel gemver
//! dramless-sim --list-systems
//! ```

use dramless::replay::{self, Recording};
use dramless::{
    run_fleet, run_fleet_on, BalancerKind, FaultPlan, FidelityTier, FleetReport, FleetSpec,
    RunOutcome, SystemId, SystemKind, SystemParams, SystemSpec,
};
use sim_core::fault::FaultCounters;
use sim_core::probe::{AttrScope, AttrSummary, Cause};
use sim_core::time::Picos;
use std::ops::Range;
use std::process::ExitCode;
use util::json::{FromJson, ToJson};
use util::telemetry::MetricValue;
use workloads::{Kernel, Scale, Workload};

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    systems: Vec<SystemKind>,
    specs: Vec<SystemSpec>,
    /// The `--spec` file paths, kept so `top` can print a
    /// copy-pasteable `record` command line.
    spec_paths: Vec<String>,
    kernels: Vec<Kernel>,
    scale: Scale,
    seed: u64,
    agents: usize,
    json: Option<String>,
    metrics: bool,
    attr: bool,
    trace_out: Option<String>,
    faults: Option<FaultPlan>,
    /// The `--faults` file path (same purpose as `spec_paths`).
    faults_path: Option<String>,
    tier: Option<FidelityTier>,
    out: Option<String>,
    checkpoint_every: Option<u64>,
}

fn usage() -> &'static str {
    "dramless-sim: simulate the DRAM-less accelerated systems\n\
     \n\
     USAGE:\n\
       dramless-sim [--system <name>|all] [--spec <file.json>]\n\
                    [--kernel <name>|all] [--scale <f>] [--seed <n>]\n\
                    [--agents <n>] [--tier accurate|analytic]\n\
                    [--json <path>] [--metrics] [--attr]\n\
                    [--faults <file.json>] [--trace-out <path>]\n\
                    [--list] [--list-systems]\n\
       dramless-sim record [selection flags as above] [--out <run.json>]\n\
                    [--checkpoint-every <n>]\n\
       dramless-sim replay <run.json> [--window <a>..<b>] [--cell <i>]\n\
       dramless-sim serve --fleet <fleet.json> [--requests <n>]\n\
                    [--duration <ms>] [--balancer <name>] [--seed <n>]\n\
                    [--threads <n>] [--json <report.json>]\n\
       dramless-sim serve --template\n\
       dramless-sim top [selection flags for ONE system x ONE kernel]\n\
     \n\
     SUBCOMMANDS:\n\
       record          run the selected cells deterministically, emitting a\n\
                       recording: per-cell run fingerprints (schedule\n\
                       content-address, chained request-stream digest, report\n\
                       hash) plus state checkpoints every --checkpoint-every\n\
                       backend requests (default 50000); writes --out\n\
                       [default: run.json]\n\
       replay          re-execute a recording and fail loudly on any\n\
                       fingerprint divergence; with --window <a>..<b>, restore\n\
                       the nearest checkpoint at or before request <a> of cell\n\
                       --cell [default: 0] and re-execute just [a, b)\n\
       serve           fleet-scale multi-tenant serving: a seeded open-loop\n\
                       arrival process (poisson, bursty, diurnal) drives\n\
                       requests from many tenants across N simulated\n\
                       accelerators via a pluggable balancer (round-robin,\n\
                       least-loaded, qos-aware with admission control);\n\
                       prints per-class and per-accelerator QoS tables plus\n\
                       worst-request latency attribution; byte-identical at\n\
                       any --threads count; --template prints a starter\n\
                       FleetSpec JSON; --requests/--duration/--balancer/\n\
                       --seed override the spec file\n\
       top             tail forensics: run ONE system x ONE kernel with\n\
                       attribution on and print the cause breakdown, per-phase\n\
                       totals, and the top-K worst requests — each exec-phase\n\
                       entry names the request window to hand to\n\
                       `dramless-sim replay --window` for isolation\n\
     \n\
     OPTIONS:\n\
       --system        a Table I system (e.g. dram-less, hetero, page-buffer),\n\
                       or `all` for every evaluated design  [default: dram-less]\n\
       --spec          a SystemSpec JSON file composing a custom system\n\
                       (medium x datapath x buffer x control); repeatable,\n\
                       and combines with --system\n\
       --kernel        a Polybench kernel (e.g. gemver, doitg), or `all`\n\
                       [default: gemver]\n\
       --scale         workload scale factor                [default: 1.0]\n\
       --seed          determinism seed                     [default: 42]\n\
       --agents        agent PEs running the kernel         [default: 7]\n\
       --tier          fidelity tier for every cell: `accurate` replays\n\
                       each request cycle-accurately, `analytic` prices the\n\
                       memory schedule with the calibrated closed form\n\
                       (~40x faster, within committed per-preset drift\n\
                       bounds)                              [default: accurate]\n\
       --json          also write the full SuiteResult as JSON\n\
       --metrics       switch on telemetry for every cell: per-component\n\
                       counters and latency histograms, printed after the\n\
                       table and embedded in --json output\n\
       --attr          also attribute every memory request's latency to\n\
                       typed causes (queue wait, partition conflict,\n\
                       erase-blocked, buffer hit vs. array access, bursts,\n\
                       retry stalls, ...); prints a per-cell summary and adds\n\
                       a `latency_attribution` block to --json reports;\n\
                       implies --metrics\n\
       --faults        a FaultPlan JSON file: arm seeded, deterministic\n\
                       fault injection (PRAM drift/disturb/wear, SSD\n\
                       transients) plus ECC/retry/retirement for every\n\
                       cell; reports gain a `degraded` section\n\
       --trace-out     run ONE system x ONE kernel with event tracing and\n\
                       write a Chrome trace-event JSON (load in Perfetto:\n\
                       https://ui.perfetto.dev); implies --metrics\n\
       --list          print the available systems and kernels, then exit\n\
       --list-systems  print each preset's spec axes, then exit\n\
     \n\
     EXAMPLES:\n\
       # A configuration Table I never built: TLC flash over P2P DMA.\n\
       cat > tlc.json <<'EOF'\n\
       { \"name\": \"tlc-p2p\",\n\
         \"medium\": { \"FlashSsd\": { \"cell\": \"Tlc\" } },\n\
         \"datapath\": \"P2pDma\",\n\
         \"buffer\": { \"DramPageCache\": { \"frames\": null } },\n\
         \"control\": { \"HardwareAutomated\": { \"scheduler\": \"Final\" } } }\n\
       EOF\n\
       dramless-sim --spec tlc.json --system dram-less --kernel gemver"
}

fn parse_system(name: &str) -> Option<SystemKind> {
    let norm = name.to_ascii_lowercase().replace(['_', ' '], "-");
    let mut all = SystemKind::EVALUATED.to_vec();
    all.push(SystemKind::Ideal);
    all.into_iter().find(|k| {
        k.label()
            .to_ascii_lowercase()
            .replace([' ', '(', ')'], "-")
            .trim_matches('-')
            == norm
            || k.label().to_ascii_lowercase() == norm
    })
}

fn parse_kernel(name: &str) -> Option<Kernel> {
    Kernel::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(name))
}

fn load_spec(path: &str) -> Result<SystemSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SystemSpec::from_json_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn load_faults(path: &str) -> Result<FaultPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    FaultPlan::from_json_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn list_systems() {
    println!(
        "{:<22} {:<21} {:<15} {:<12} control",
        "preset", "medium", "datapath", "buffer"
    );
    let mut all = SystemKind::EVALUATED.to_vec();
    all.push(SystemKind::Ideal);
    for k in all {
        let s = k.spec();
        println!(
            "{:<22} {:<21} {:<15} {:<12} {}",
            k.label(),
            s.medium.label(),
            s.datapath.label(),
            s.buffer.label(),
            s.control.label()
        );
    }
    println!("\nany other medium x datapath x buffer x control combination");
    println!("can be composed as a JSON file and run with --spec <file>.");
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        systems: Vec::new(),
        specs: Vec::new(),
        spec_paths: Vec::new(),
        kernels: vec![Kernel::Gemver],
        scale: Scale::paper(),
        seed: 42,
        agents: 7,
        json: None,
        metrics: false,
        attr: false,
        trace_out: None,
        faults: None,
        faults_path: None,
        tier: None,
        out: None,
        checkpoint_every: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--system" => {
                let v = value("--system")?;
                opts.systems = if v == "all" {
                    SystemKind::EVALUATED.to_vec()
                } else {
                    vec![parse_system(&v).ok_or_else(|| format!("unknown system `{v}`"))?]
                };
            }
            "--spec" => {
                let v = value("--spec")?;
                opts.specs.push(load_spec(&v)?);
                opts.spec_paths.push(v);
            }
            "--kernel" => {
                let v = value("--kernel")?;
                opts.kernels = if v == "all" {
                    Kernel::ALL.to_vec()
                } else {
                    vec![parse_kernel(&v).ok_or_else(|| format!("unknown kernel `{v}`"))?]
                };
            }
            "--scale" => {
                let v = value("--scale")?;
                let f: f64 = v.parse().map_err(|_| format!("bad scale `{v}`"))?;
                if f <= 0.0 {
                    return Err("scale must be positive".into());
                }
                opts.scale = Scale(f);
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--agents" => {
                let v = value("--agents")?;
                let n: usize = v.parse().map_err(|_| format!("bad agent count `{v}`"))?;
                if !(1..=7).contains(&n) {
                    return Err("agents must be in 1..=7 (8 PEs, one serves)".into());
                }
                opts.agents = n;
            }
            "--tier" => {
                let v = value("--tier")?;
                opts.tier = Some(match v.to_ascii_lowercase().as_str() {
                    "accurate" => FidelityTier::Accurate,
                    "analytic" => FidelityTier::Analytic,
                    _ => return Err(format!("unknown tier `{v}` (accurate|analytic)")),
                });
            }
            "--json" => opts.json = Some(value("--json")?),
            "--out" => opts.out = Some(value("--out")?),
            "--checkpoint-every" => {
                let v = value("--checkpoint-every")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad checkpoint cadence `{v}`"))?;
                if n == 0 {
                    return Err("checkpoint cadence must be >= 1".into());
                }
                opts.checkpoint_every = Some(n);
            }
            "--metrics" => opts.metrics = true,
            "--attr" => {
                opts.attr = true;
                opts.metrics = true;
            }
            "--faults" => {
                let v = value("--faults")?;
                opts.faults = Some(load_faults(&v)?);
                opts.faults_path = Some(v);
            }
            "--trace-out" => {
                opts.trace_out = Some(value("--trace-out")?);
                opts.metrics = true;
            }
            "--list" => {
                println!("systems:");
                for k in SystemKind::EVALUATED {
                    println!("  {}", k.label());
                }
                println!("  Ideal");
                println!("kernels:");
                for k in Kernel::ALL {
                    println!("  {}", k.label());
                }
                std::process::exit(0);
            }
            "--list-systems" => {
                list_systems();
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
    }
    // Default: the proposed design — unless the user only asked for
    // custom specs.
    if opts.systems.is_empty() && opts.specs.is_empty() {
        opts.systems.push(SystemKind::DramLess);
    }
    Ok(opts)
}

fn print_header() {
    println!(
        "{:<22} {:<10} {:>12} {:>15} {:>12} {:>12}",
        "system", "kernel", "total time", "bandwidth", "energy", "aggregate"
    );
}

fn print_metrics(metrics: &util::telemetry::MetricSet) {
    if metrics.is_empty() {
        return;
    }
    println!("\nmetrics:");
    for (name, v) in metrics.iter() {
        match v {
            MetricValue::Counter(c) => println!("  {name:<28} {c}"),
            MetricValue::Gauge(g) => println!("  {name:<28} {g:.3}"),
            MetricValue::Histogram(h) => println!(
                "  {name:<28} n={} p50={}ns p90={}ns p99={}ns",
                h.count(),
                h.quantile_ns(0.5),
                h.quantile_ns(0.9),
                h.quantile_ns(0.99)
            ),
        }
    }
}

fn print_row(out: &RunOutcome) {
    println!(
        "{:<22} {:<10} {:>12} {:>10.1} MB/s {:>12} {:>8.3} IPC",
        out.system.name(),
        out.kernel.label(),
        format!("{}", out.total_time),
        out.bandwidth() / 1e6,
        format!("{}", out.total_energy()),
        out.total_ipc()
    );
}

/// The chaos-tier human summary: what was injected and what it cost,
/// readable without digging through the JSON `degraded` block.
fn print_degraded(d: &FaultCounters) {
    println!("\ndegraded:");
    println!(
        "  {} injected; ecc: {} corrected, {} uncorrectable; \
         {} retries, {} lines retired",
        d.injected, d.ecc_corrected, d.ecc_uncorrectable, d.retries, d.retired_lines
    );
    println!(
        "  ssd: {} transient faults, {} replays",
        d.ssd_transient_faults, d.ssd_retries
    );
    println!(
        "  retry stall: {} of request latency spent in retry/recovery",
        Picos::from_ps(d.retry_stall_ps)
    );
}

/// Percentage rendering that keeps tiny-but-nonzero shares visible.
fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "0.0%".to_string();
    }
    format!("{:.1}%", part as f64 * 100.0 / whole as f64)
}

/// One compact cause breakdown line: nonzero causes in declaration
/// order, each with its share of `whole`.
fn cause_line(causes: &[u64; sim_core::probe::NUM_CAUSES], whole: u64) -> String {
    Cause::ALL
        .into_iter()
        .filter(|&c| causes[c as usize] > 0)
        .map(|c| format!("{} {}", c.key(), pct(causes[c as usize], whole)))
        .collect::<Vec<_>>()
        .join("  ")
}

/// The per-cell attribution summary printed under `--attr`.
fn print_attr(out: &RunOutcome) {
    let Some(a) = &out.attr else { return };
    println!(
        "\nlatency attribution ({}/{}): {} requests, {} wall, {}",
        out.system.name(),
        out.kernel.label(),
        a.records,
        Picos::from_ps(a.wall_ps),
        if a.conserves() {
            "conserving".to_string()
        } else {
            format!("{} violation(s)", a.violations)
        }
    );
    println!("  causes: {}", cause_line(&a.total_causes(), a.wall_ps));
    for s in &a.scopes {
        println!(
            "  {:<9} {:>8} req {:>10}  {}",
            s.scope.key(),
            s.records,
            format!("{}", Picos::from_ps(s.wall_ps)),
            cause_line(&s.causes, s.wall_ps)
        );
    }
}

/// Expands parsed options into the cell grid every subcommand runs
/// over: `(id, spec)` pairs with the tier/telemetry/fault knobs
/// applied, the workload list, and the system parameters.
fn grid(opts: &Options) -> (Vec<(SystemId, SystemSpec)>, Vec<Workload>, SystemParams) {
    let params = SystemParams {
        seed: opts.seed,
        agents: opts.agents,
        ..Default::default()
    };
    let workloads: Vec<Workload> = opts
        .kernels
        .iter()
        .map(|&k| Workload::of(k, opts.scale))
        .collect();
    // Presets first, then custom specs, in command-line order.
    let mut systems: Vec<(SystemId, SystemSpec)> = opts
        .systems
        .iter()
        .map(|&k| (SystemId::Preset(k), k.spec()))
        .collect();
    systems.extend(
        opts.specs
            .iter()
            .map(|s| (SystemId::Custom(s.display_name()), s.clone())),
    );
    if let Some(tier) = opts.tier {
        for (_, spec) in systems.iter_mut() {
            spec.tier = tier;
        }
    }
    if opts.metrics {
        for (_, spec) in systems.iter_mut() {
            let tel = spec.telemetry.get_or_insert_with(Default::default);
            if opts.attr {
                tel.attribution = true;
            }
        }
    }
    if let Some(plan) = &opts.faults {
        for (_, spec) in systems.iter_mut() {
            spec.faults = Some(plan.clone());
        }
    }
    (systems, workloads, params)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        _ => cmd_run(&args),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let opts = match parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.out.is_some() || opts.checkpoint_every.is_some() {
        eprintln!("error: --out/--checkpoint-every belong to the `record` subcommand");
        return ExitCode::FAILURE;
    }
    let (systems, workloads, params) = grid(&opts);
    // A trace run is a single cell: one system, one kernel, with the
    // full event trace kept and exported.
    if let Some(path) = &opts.trace_out {
        if systems.len() != 1 || workloads.len() != 1 {
            eprintln!(
                "error: --trace-out traces exactly one cell; pick one \
                 system (or one --spec) and one kernel"
            );
            return ExitCode::FAILURE;
        }
        let (_, spec) = &systems[0];
        let built = workloads[0].build(params.agents);
        let (out, events) = match dramless::simulate_spec_traced(spec, &built, &params) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trace = util::telemetry::chrome_trace(&events);
        if let Err(e) = std::fs::write(path, trace.to_json_pretty()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        print_header();
        print_row(&out);
        print_metrics(&out.metrics);
        if let Some(d) = &out.degraded {
            print_degraded(d);
        }
        print_attr(&out);
        println!(
            "\nwrote {} trace events to {path} (open in https://ui.perfetto.dev)",
            events.len()
        );
        if let Some(json) = &opts.json {
            let suite = dramless::SuiteResult {
                outcomes: vec![out],
            };
            if let Err(e) = std::fs::write(json, suite.to_json()) {
                eprintln!("error: writing {json}: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    // The work-stealing engine returns outcomes in workload-major order
    // — exactly the order the old nested loop printed them in.
    let (result, stats) =
        match dramless::sweep::sweep_systems_with_stats(&systems, &workloads, &params) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
    print_header();
    for out in &result.outcomes {
        print_row(out);
    }
    println!(
        "\n{} cells in {:.3}s on {} thread(s) — {:.1} cells/s \
         (build {:.3}s, execute {:.3}s)",
        stats.cells,
        stats.elapsed.as_secs_f64(),
        stats.threads,
        stats.cells_per_sec(),
        stats.build.as_secs_f64(),
        stats.execute.as_secs_f64()
    );
    if opts.metrics {
        print_metrics(&result.aggregate_metrics());
        if let Some(d) = result.aggregate_degraded() {
            print_degraded(&d);
        }
    }
    if opts.attr {
        for out in &result.outcomes {
            print_attr(out);
        }
    }
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, result.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {} outcomes to {path}", result.outcomes.len());
    }
    ExitCode::SUCCESS
}

fn cmd_record(args: &[String]) -> ExitCode {
    let opts = match parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json.is_some() || opts.metrics || opts.trace_out.is_some() {
        eprintln!(
            "error: record emits a recording via --out; \
             --json/--metrics/--trace-out do not apply"
        );
        return ExitCode::FAILURE;
    }
    let (systems, workloads, params) = grid(&opts);
    let every = opts
        .checkpoint_every
        .unwrap_or(replay::DEFAULT_CHECKPOINT_EVERY);
    let rec = match replay::record_run(&systems, &workloads, &params, every) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = opts.out.as_deref().unwrap_or("run.json");
    if let Err(e) = std::fs::write(out, rec.to_json_string()) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{:<22} {:<10} {:>12} {:>12} {:>18} {:>18}",
        "system", "kernel", "requests", "checkpoints", "stream", "report"
    );
    for cell in &rec.cells {
        println!(
            "{:<22} {:<10} {:>12} {:>12} {:>#18x} {:>#18x}",
            cell.outcome.system.name(),
            cell.outcome.kernel.label(),
            cell.fingerprint.requests,
            cell.checkpoints.len(),
            cell.fingerprint.stream,
            cell.fingerprint.report
        );
    }
    println!(
        "\nwrote {} cell(s) to {out} (checkpoint every {every} requests)",
        rec.cells.len()
    );
    ExitCode::SUCCESS
}

/// Re-renders the selection flags so `top` can print a copy-pasteable
/// `record` command line that reproduces the same cell (attribution is
/// passive, so a recording made without `--attr` carries the identical
/// request stream).
fn selection_args(opts: &Options) -> String {
    let mut s = String::new();
    for k in &opts.systems {
        let alias = k
            .label()
            .to_ascii_lowercase()
            .replace([' ', '(', ')'], "-")
            .trim_matches('-')
            .to_string();
        s.push_str(&format!(" --system {alias}"));
    }
    for p in &opts.spec_paths {
        s.push_str(&format!(" --spec {p}"));
    }
    for k in &opts.kernels {
        s.push_str(&format!(" --kernel {}", k.label()));
    }
    s.push_str(&format!(" --scale {}", opts.scale.0));
    s.push_str(&format!(" --seed {}", opts.seed));
    s.push_str(&format!(" --agents {}", opts.agents));
    if let Some(tier) = opts.tier {
        s.push_str(match tier {
            FidelityTier::Accurate => " --tier accurate",
            FidelityTier::Analytic => " --tier analytic",
        });
    }
    if let Some(p) = &opts.faults_path {
        s.push_str(&format!(" --faults {p}"));
    }
    s
}

/// `top` — tail forensics for one cell: run it with attribution on and
/// print the cause breakdown plus the top-K worst requests, each with
/// the replay handle that isolates it.
fn cmd_top(args: &[String]) -> ExitCode {
    let mut opts = match parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json.is_some()
        || opts.trace_out.is_some()
        || opts.out.is_some()
        || opts.checkpoint_every.is_some()
    {
        eprintln!(
            "error: top prints to stdout; --json/--trace-out/--out/\
             --checkpoint-every do not apply"
        );
        return ExitCode::FAILURE;
    }
    opts.attr = true;
    opts.metrics = true;
    let (systems, workloads, params) = grid(&opts);
    if systems.len() != 1 || workloads.len() != 1 {
        eprintln!(
            "error: top profiles exactly one cell; pick one system \
             (or one --spec) and one kernel"
        );
        return ExitCode::FAILURE;
    }
    let (result, _) = match dramless::sweep::sweep_systems_with_stats(&systems, &workloads, &params)
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = &result.outcomes[0];
    let Some(a) = &out.attr else {
        eprintln!("error: the run produced no attribution summary");
        return ExitCode::FAILURE;
    };
    print_header();
    print_row(out);
    print_attr(out);
    if let Some(d) = &out.degraded {
        print_degraded(d);
    }
    print_top_table(a);
    if let Some(worst) = a.top.iter().find(|t| t.scope == AttrScope::Exec) {
        let sel = selection_args(&opts);
        println!(
            "\nisolate the worst exec-phase request without re-running the sweep:\n  \
             dramless-sim record{sel} --out run.json\n  \
             dramless-sim replay run.json --window {}..{}",
            worst.index,
            worst.index + 1
        );
    }
    ExitCode::SUCCESS
}

/// The tail-forensics table: worst requests first, full decomposition.
fn print_top_table(a: &AttrSummary) {
    println!("\ntop {} worst requests:", a.top.len());
    println!(
        "{:>3} {:<10} {:>10} {:<14} {:>12} {:>12}  causes",
        "#", "scope", "index", "source", "start", "duration"
    );
    for (i, t) in a.top.iter().enumerate() {
        println!(
            "{:>3} {:<10} {:>10} {:<14} {:>12} {:>12}  {}",
            i + 1,
            t.scope.key(),
            t.index,
            t.source,
            format!("{}", Picos::from_ps(t.start_ps)),
            format!("{}", Picos::from_ps(t.dur_ps)),
            cause_line(&t.causes, t.dur_ps)
        );
    }
}

/// Parsed `replay` subcommand options.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReplayOptions {
    path: String,
    window: Option<Range<u64>>,
    cell: usize,
}

/// Parses a `<a>..<b>` request window.
fn parse_window(s: &str) -> Result<Range<u64>, String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("bad window `{s}` (want <a>..<b>)"))?;
    let start: u64 = a.parse().map_err(|_| format!("bad window start `{a}`"))?;
    let end: u64 = b.parse().map_err(|_| format!("bad window end `{b}`"))?;
    if start >= end {
        return Err(format!("empty window `{s}`"));
    }
    Ok(start..end)
}

fn parse_replay(args: &[String]) -> Result<ReplayOptions, String> {
    let mut path: Option<String> = None;
    let mut window = None;
    let mut cell = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--window" => window = Some(parse_window(&value("--window")?)?),
            "--cell" => {
                let v = value("--cell")?;
                cell = v.parse().map_err(|_| format!("bad cell index `{v}`"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown replay argument `{other}`"))
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("replay takes exactly one recording file".into());
                }
            }
        }
    }
    Ok(ReplayOptions {
        path: path.ok_or("replay needs a recording file (dramless-sim replay <run.json>)")?,
        window,
        cell,
    })
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let opts = match parse_replay(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&opts.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let rec = match Recording::from_json_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: parsing {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    match &opts.window {
        Some(w) => match replay::replay(&rec, opts.cell, w.clone()) {
            Ok(r) => {
                println!(
                    "{}: resumed at request {} (nearest checkpoint), replayed to \
                     {}, re-verified {} checkpoint(s){}",
                    r.cell,
                    r.resumed_at,
                    r.replayed_to,
                    r.verified_checkpoints,
                    if r.completed {
                        "; ran to completion — final stream and report fingerprints match"
                    } else {
                        ""
                    }
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: replay FAILED: {e}");
                ExitCode::FAILURE
            }
        },
        None => match replay::verify(&rec) {
            Ok(reports) => {
                for r in &reports {
                    println!(
                        "{}: verified — {} request(s), {} checkpoint(s), report matches",
                        r.cell, r.replayed_to, r.verified_checkpoints
                    );
                }
                println!("\n{} cell(s) verified against {}", reports.len(), opts.path);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: replay FAILED: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

/// Parsed `serve` subcommand options.
#[derive(Debug, Clone, PartialEq)]
struct ServeOptions {
    fleet: Option<String>,
    template: bool,
    requests: Option<u64>,
    duration_ms: Option<u64>,
    balancer: Option<BalancerKind>,
    seed: Option<u64>,
    threads: Option<usize>,
    json: Option<String>,
}

fn parse_serve(args: &[String]) -> Result<ServeOptions, String> {
    let mut o = ServeOptions {
        fleet: None,
        template: false,
        requests: None,
        duration_ms: None,
        balancer: None,
        seed: None,
        threads: None,
        json: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--fleet" => o.fleet = Some(value("--fleet")?),
            "--template" => o.template = true,
            "--requests" => {
                let v = value("--requests")?;
                o.requests = Some(v.parse().map_err(|_| format!("bad request count `{v}`"))?);
            }
            "--duration" => {
                let v = value("--duration")?;
                o.duration_ms = Some(v.parse().map_err(|_| format!("bad duration `{v}` (ms)"))?);
            }
            "--balancer" => {
                let v = value("--balancer")?;
                o.balancer = Some(BalancerKind::from_label(&v).ok_or_else(|| {
                    let known: Vec<&str> = BalancerKind::ALL.iter().map(|b| b.label()).collect();
                    format!("unknown balancer `{v}` (one of: {})", known.join(", "))
                })?);
            }
            "--seed" => {
                let v = value("--seed")?;
                o.seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?);
            }
            "--threads" => {
                let v = value("--threads")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                o.threads = Some(n);
            }
            "--json" => o.json = Some(value("--json")?),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown serve argument `{other}`")),
        }
    }
    if o.template {
        if o.fleet.is_some() || o.requests.is_some() || o.duration_ms.is_some() {
            return Err("--template prints a starter spec and takes no other flags".into());
        }
    } else if o.fleet.is_none() {
        return Err("serve needs --fleet <fleet.json> (or --template for a starter spec)".into());
    }
    Ok(o)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let opts = match parse_serve(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.template {
        println!("{}", FleetSpec::example().to_json_pretty());
        return ExitCode::SUCCESS;
    }
    let path = opts.fleet.as_deref().expect("checked by parse_serve");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut spec = match FleetSpec::from_json_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: parsing {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = opts.requests {
        spec.requests = n;
    }
    if let Some(ms) = opts.duration_ms {
        spec.duration_ms = ms;
    }
    if let Some(b) = opts.balancer {
        spec.balancer = b;
    }
    if let Some(s) = opts.seed {
        spec.seed = s;
    }
    let started = std::time::Instant::now();
    let report = match opts.threads {
        Some(n) => run_fleet_on(&util::pool::Pool::new(n), &spec),
        None => run_fleet(&spec),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();
    print_fleet_report(&report);
    println!(
        "\nserved {} request(s) in {:.3}s wall — {:.0} req/s simulated \
         (re-run byte-identically at any --threads from the same spec + seed)",
        report.offered,
        elapsed.as_secs_f64(),
        report.offered as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if let Err(e) = report.check_conservation() {
        eprintln!("error: conservation check FAILED: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(json) = &opts.json {
        if let Err(e) = std::fs::write(json, report.to_json_pretty()) {
            eprintln!("error: writing {json}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote fleet report to {json}");
    }
    ExitCode::SUCCESS
}

/// Prints the per-class / per-tenant / per-accelerator QoS tables.
fn print_fleet_report(r: &FleetReport) {
    println!(
        "fleet `{}` — {} balancer, {} accelerator(s), {} tenant(s)",
        r.name,
        r.balancer.label(),
        r.accelerators,
        r.tenants
    );
    println!(
        "offered {} | completed {} | rejected {} | degraded {} | makespan {} | \
         {:.0} req/s offered",
        r.offered,
        r.completed,
        r.rejected,
        r.degraded,
        Picos::from_ps(r.makespan_ps),
        r.offered_rate_per_s()
    );
    println!(
        "\n{:<18} {:>8} {:>9} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "class", "offered", "completed", "rejected", "degraded", "p50", "p99", "p99.9"
    );
    for (class, c) in &r.classes {
        println!(
            "{:<18} {:>8} {:>9} {:>8} {:>8} {:>12} {:>12} {:>12}",
            class.key(),
            c.offered,
            c.completed,
            c.rejected,
            c.degraded,
            format!("{}", Picos::from_ns(c.latency.quantile_ns(0.50))),
            format!("{}", Picos::from_ns(c.latency.quantile_ns(0.99))),
            format!("{}", Picos::from_ns(c.latency.quantile_ns(0.999)))
        );
    }
    println!(
        "{:<18} {:>8} {:>9} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "all classes",
        r.offered,
        r.completed,
        r.rejected,
        r.degraded,
        format!("{}", Picos::from_ns(r.aggregate.quantile_ns(0.50))),
        format!("{}", Picos::from_ns(r.aggregate.quantile_ns(0.99))),
        format!("{}", Picos::from_ns(r.aggregate.quantile_ns(0.999)))
    );
    // The tenants hit hardest at the tail, worst first.
    let mut worst: Vec<_> = r.per_tenant.iter().filter(|t| t.completed > 0).collect();
    worst.sort_by_key(|t| std::cmp::Reverse((t.latency.quantile_ns(0.999), t.tenant)));
    if !worst.is_empty() {
        println!("\nworst tenants by p99.9:");
        println!(
            "{:>8} {:<18} {:>8} {:>8} {:>12} {:>12}",
            "tenant", "class", "offered", "rejected", "p50", "p99.9"
        );
        for t in worst.iter().take(5) {
            println!(
                "{:>8} {:<18} {:>8} {:>8} {:>12} {:>12}",
                t.tenant,
                t.class.key(),
                t.offered,
                t.rejected,
                format!("{}", Picos::from_ns(t.latency.quantile_ns(0.50))),
                format!("{}", Picos::from_ns(t.latency.quantile_ns(0.999)))
            );
        }
    }
    println!("\nper-accelerator:");
    println!(
        "{:>5} {:>9} {:>12} {:>12} {:>14} {:>7} {:>13}",
        "accel", "requests", "busy", "queue wait", "partition wait", "erases", "erase blocked"
    );
    for (i, a) in r.accels.iter().enumerate() {
        println!(
            "{:>5} {:>9} {:>12} {:>12} {:>14} {:>7} {:>13}",
            i,
            a.requests,
            format!("{}", Picos::from_ps(a.busy_ps)),
            format!("{}", Picos::from_ps(a.queue_wait_ps)),
            format!("{}", Picos::from_ps(a.partition_wait_ps)),
            a.erase_windows,
            format!("{}", Picos::from_ps(a.erase_blocked_ps))
        );
    }
    print_fleet_top(&r.attr);
}

/// The fleet variant of the tail-forensics table: adds the owning tenant.
fn print_fleet_top(a: &AttrSummary) {
    if a.top.is_empty() {
        return;
    }
    println!("\ntop {} worst requests:", a.top.len());
    println!(
        "{:>3} {:>8} {:>10} {:>12} {:>12}  causes",
        "#", "tenant", "request", "start", "duration"
    );
    for (i, t) in a.top.iter().enumerate() {
        println!(
            "{:>3} {:>8} {:>10} {:>12} {:>12}  {}",
            i + 1,
            t.tenant.map_or("-".to_string(), |t| t.to_string()),
            t.index,
            format!("{}", Picos::from_ps(t.start_ps)),
            format!("{}", Picos::from_ps(t.dur_ps)),
            cause_line(&t.causes, t.dur_ps)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::json::ToJson;

    #[test]
    fn parses_defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.systems, vec![SystemKind::DramLess]);
        assert_eq!(o.kernels, vec![Kernel::Gemver]);
        assert_eq!(o.seed, 42);
        assert!(o.specs.is_empty());
    }

    #[test]
    fn parses_system_aliases() {
        assert_eq!(parse_system("dram-less"), Some(SystemKind::DramLess));
        assert_eq!(parse_system("DRAM-less"), Some(SystemKind::DramLess));
        assert_eq!(parse_system("hetero"), Some(SystemKind::Hetero));
        assert_eq!(parse_system("page-buffer"), Some(SystemKind::PageBuffer));
        assert_eq!(parse_system("ideal"), Some(SystemKind::Ideal));
        assert_eq!(parse_system("nope"), None);
    }

    #[test]
    fn parses_kernels() {
        assert_eq!(parse_kernel("gemver"), Some(Kernel::Gemver));
        assert_eq!(parse_kernel("jaco1D"), Some(Kernel::Jaco1d));
        assert_eq!(parse_kernel("bogus"), None);
    }

    #[test]
    fn parses_full_command_line() {
        let args: Vec<String> = [
            "--system",
            "all",
            "--kernel",
            "all",
            "--scale",
            "0.5",
            "--seed",
            "9",
            "--agents",
            "3",
            "--json",
            "/tmp/out.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse(&args).unwrap();
        assert_eq!(o.systems.len(), 11);
        assert_eq!(o.kernels.len(), 15);
        assert_eq!(o.scale.0, 0.5);
        assert_eq!(o.seed, 9);
        assert_eq!(o.agents, 3);
        assert_eq!(o.json.as_deref(), Some("/tmp/out.json"));
    }

    #[test]
    fn parses_spec_files() {
        let spec = SystemSpec {
            name: Some("cli-test".into()),
            ..SystemKind::Heterodirect.spec()
        };
        let path = std::env::temp_dir().join("dramless-sim-cli-test-spec.json");
        std::fs::write(&path, spec.to_json_pretty()).unwrap();
        let args = vec!["--spec".to_string(), path.display().to_string()];
        let o = parse(&args).unwrap();
        // A lone --spec replaces the default preset.
        assert!(o.systems.is_empty());
        assert_eq!(o.specs, vec![spec]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parses_telemetry_flags() {
        let o = parse(&["--metrics".to_string()]).unwrap();
        assert!(o.metrics);
        assert!(o.trace_out.is_none());
        let o = parse(&["--trace-out".to_string(), "/tmp/t.json".to_string()]).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t.json"));
        assert!(o.metrics, "--trace-out implies --metrics");
        assert!(parse(&["--trace-out".to_string()]).is_err());
    }

    #[test]
    fn parses_attr_flag() {
        let o = parse(&[]).unwrap();
        assert!(!o.attr);
        let o = parse(&["--attr".to_string()]).unwrap();
        assert!(o.attr);
        assert!(o.metrics, "--attr implies --metrics");
    }

    #[test]
    fn selection_args_round_trips_through_parse() {
        let args: Vec<String> = [
            "--system",
            "dram-less",
            "--kernel",
            "trisolv",
            "--scale",
            "0.25",
            "--seed",
            "7",
            "--agents",
            "3",
            "--tier",
            "analytic",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse(&args).unwrap();
        let rendered: Vec<String> = selection_args(&o)
            .split_whitespace()
            .map(String::from)
            .collect();
        let o2 = parse(&rendered).unwrap();
        assert_eq!(o2.systems, o.systems);
        assert_eq!(o2.kernels, o.kernels);
        assert_eq!(o2.scale.0, o.scale.0);
        assert_eq!(o2.seed, o.seed);
        assert_eq!(o2.agents, o.agents);
        assert_eq!(o2.tier, o.tier);
    }

    #[test]
    fn parses_fault_plan_files() {
        let plan = FaultPlan::seeded(11);
        let path = std::env::temp_dir().join("dramless-sim-cli-test-faults.json");
        std::fs::write(&path, plan.to_json_pretty()).unwrap();
        let o = parse(&["--faults".to_string(), path.display().to_string()]).unwrap();
        assert_eq!(o.faults, Some(plan));
        std::fs::remove_file(&path).ok();
        assert!(parse(&["--faults".to_string()]).is_err());
        assert!(parse(&["--faults".into(), "/no/such/plan.json".into()]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--system".into(), "warp-drive".into()]).is_err());
        assert!(parse(&["--scale".into(), "-1".into()]).is_err());
        assert!(parse(&["--agents".into(), "9".into()]).is_err());
        assert!(parse(&["--frobnicate".into()]).is_err());
        assert!(parse(&["--seed".into()]).is_err());
        assert!(parse(&["--spec".into(), "/no/such/file.json".into()]).is_err());
    }

    #[test]
    fn parses_record_flags() {
        let o = parse(&[
            "--out".to_string(),
            "rec.json".to_string(),
            "--checkpoint-every".to_string(),
            "500".to_string(),
        ])
        .unwrap();
        assert_eq!(o.out.as_deref(), Some("rec.json"));
        assert_eq!(o.checkpoint_every, Some(500));
        // Typed errors, not panics: missing values, zero cadence, junk.
        assert!(parse(&["--out".into()]).is_err());
        assert!(parse(&["--checkpoint-every".into()]).is_err());
        assert!(parse(&["--checkpoint-every".into(), "0".into()]).is_err());
        assert!(parse(&["--checkpoint-every".into(), "soon".into()]).is_err());
    }

    #[test]
    fn parses_windows() {
        assert_eq!(parse_window("80..140"), Ok(80..140));
        assert_eq!(parse_window("0..1"), Ok(0..1));
        assert!(parse_window("80").is_err());
        assert!(parse_window("80..").is_err());
        assert!(parse_window("..140").is_err());
        assert!(parse_window("140..80").is_err(), "backwards window");
        assert!(parse_window("80..80").is_err(), "empty window");
        assert!(parse_window("a..b").is_err());
    }

    #[test]
    fn parses_serve_command_lines() {
        let args: Vec<String> = [
            "--fleet",
            "fleet.json",
            "--requests",
            "10000",
            "--duration",
            "250",
            "--balancer",
            "qos-aware",
            "--seed",
            "7",
            "--threads",
            "4",
            "--json",
            "report.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_serve(&args).unwrap();
        assert_eq!(o.fleet.as_deref(), Some("fleet.json"));
        assert_eq!(o.requests, Some(10_000));
        assert_eq!(o.duration_ms, Some(250));
        assert_eq!(o.balancer, Some(BalancerKind::QosAware));
        assert_eq!(o.seed, Some(7));
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.json.as_deref(), Some("report.json"));
        assert!(!o.template);
        // Template mode stands alone.
        let o = parse_serve(&["--template".to_string()]).unwrap();
        assert!(o.template);
        assert!(parse_serve(&["--template".into(), "--fleet".into(), "f.json".into()]).is_err());
        // Typed errors, not panics.
        assert!(parse_serve(&[]).is_err(), "--fleet is required");
        assert!(parse_serve(&["--fleet".into()]).is_err());
        assert!(parse_serve(&[
            "--fleet".into(),
            "f.json".into(),
            "--threads".into(),
            "0".into()
        ])
        .is_err());
        assert!(parse_serve(&[
            "--fleet".into(),
            "f.json".into(),
            "--balancer".into(),
            "warp".into()
        ])
        .is_err());
        assert!(parse_serve(&["--bogus".into()]).is_err());
    }

    #[test]
    fn serve_template_spec_round_trips() {
        let spec = FleetSpec::example();
        let parsed = FleetSpec::from_json_str(&spec.to_json_pretty()).unwrap();
        assert_eq!(parsed, spec);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn parses_replay_command_lines() {
        let args: Vec<String> = ["run.json", "--window", "80..140", "--cell", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_replay(&args).unwrap();
        assert_eq!(
            o,
            ReplayOptions {
                path: "run.json".into(),
                window: Some(80..140),
                cell: 3,
            }
        );
        // Defaults: whole-recording verify of cell 0.
        let o = parse_replay(&["run.json".to_string()]).unwrap();
        assert_eq!(o.window, None);
        assert_eq!(o.cell, 0);
        // Typed errors, not panics.
        assert!(parse_replay(&[]).is_err(), "missing recording file");
        assert!(parse_replay(&["a.json".into(), "b.json".into()]).is_err());
        assert!(parse_replay(&["run.json".into(), "--window".into()]).is_err());
        assert!(parse_replay(&["run.json".into(), "--cell".into(), "x".into()]).is_err());
        assert!(parse_replay(&["run.json".into(), "--bogus".into()]).is_err());
    }
}
