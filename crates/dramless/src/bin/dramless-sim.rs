//! `dramless-sim` — run any (system, kernel) combination from the
//! command line and print (or emit as JSON) the outcome.
//!
//! ```sh
//! dramless-sim --system dram-less --kernel gemver
//! dramless-sim --system hetero --kernel all --scale 1.5 --json results.json
//! dramless-sim --spec my_config.json --kernel gemver
//! dramless-sim --list-systems
//! ```

use dramless::{
    FaultPlan, FidelityTier, RunOutcome, SystemId, SystemKind, SystemParams, SystemSpec,
};
use std::process::ExitCode;
use util::json::{FromJson, ToJson};
use util::telemetry::MetricValue;
use workloads::{Kernel, Scale, Workload};

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    systems: Vec<SystemKind>,
    specs: Vec<SystemSpec>,
    kernels: Vec<Kernel>,
    scale: Scale,
    seed: u64,
    agents: usize,
    json: Option<String>,
    metrics: bool,
    trace_out: Option<String>,
    faults: Option<FaultPlan>,
    tier: Option<FidelityTier>,
}

fn usage() -> &'static str {
    "dramless-sim: simulate the DRAM-less accelerated systems\n\
     \n\
     USAGE:\n\
       dramless-sim [--system <name>|all] [--spec <file.json>]\n\
                    [--kernel <name>|all] [--scale <f>] [--seed <n>]\n\
                    [--agents <n>] [--tier accurate|analytic]\n\
                    [--json <path>] [--metrics]\n\
                    [--faults <file.json>] [--trace-out <path>]\n\
                    [--list] [--list-systems]\n\
     \n\
     OPTIONS:\n\
       --system        a Table I system (e.g. dram-less, hetero, page-buffer),\n\
                       or `all` for every evaluated design  [default: dram-less]\n\
       --spec          a SystemSpec JSON file composing a custom system\n\
                       (medium x datapath x buffer x control); repeatable,\n\
                       and combines with --system\n\
       --kernel        a Polybench kernel (e.g. gemver, doitg), or `all`\n\
                       [default: gemver]\n\
       --scale         workload scale factor                [default: 1.0]\n\
       --seed          determinism seed                     [default: 42]\n\
       --agents        agent PEs running the kernel         [default: 7]\n\
       --tier          fidelity tier for every cell: `accurate` replays\n\
                       each request cycle-accurately, `analytic` prices the\n\
                       memory schedule with the calibrated closed form\n\
                       (~40x faster, within committed per-preset drift\n\
                       bounds)                              [default: accurate]\n\
       --json          also write the full SuiteResult as JSON\n\
       --metrics       switch on telemetry for every cell: per-component\n\
                       counters and latency histograms, printed after the\n\
                       table and embedded in --json output\n\
       --faults        a FaultPlan JSON file: arm seeded, deterministic\n\
                       fault injection (PRAM drift/disturb/wear, SSD\n\
                       transients) plus ECC/retry/retirement for every\n\
                       cell; reports gain a `degraded` section\n\
       --trace-out     run ONE system x ONE kernel with event tracing and\n\
                       write a Chrome trace-event JSON (load in Perfetto:\n\
                       https://ui.perfetto.dev); implies --metrics\n\
       --list          print the available systems and kernels, then exit\n\
       --list-systems  print each preset's spec axes, then exit\n\
     \n\
     EXAMPLES:\n\
       # A configuration Table I never built: TLC flash over P2P DMA.\n\
       cat > tlc.json <<'EOF'\n\
       { \"name\": \"tlc-p2p\",\n\
         \"medium\": { \"FlashSsd\": { \"cell\": \"Tlc\" } },\n\
         \"datapath\": \"P2pDma\",\n\
         \"buffer\": { \"DramPageCache\": { \"frames\": null } },\n\
         \"control\": { \"HardwareAutomated\": { \"scheduler\": \"Final\" } } }\n\
       EOF\n\
       dramless-sim --spec tlc.json --system dram-less --kernel gemver"
}

fn parse_system(name: &str) -> Option<SystemKind> {
    let norm = name.to_ascii_lowercase().replace(['_', ' '], "-");
    let mut all = SystemKind::EVALUATED.to_vec();
    all.push(SystemKind::Ideal);
    all.into_iter().find(|k| {
        k.label()
            .to_ascii_lowercase()
            .replace([' ', '(', ')'], "-")
            .trim_matches('-')
            == norm
            || k.label().to_ascii_lowercase() == norm
    })
}

fn parse_kernel(name: &str) -> Option<Kernel> {
    Kernel::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(name))
}

fn load_spec(path: &str) -> Result<SystemSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SystemSpec::from_json_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn load_faults(path: &str) -> Result<FaultPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    FaultPlan::from_json_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn list_systems() {
    println!(
        "{:<22} {:<21} {:<15} {:<12} control",
        "preset", "medium", "datapath", "buffer"
    );
    let mut all = SystemKind::EVALUATED.to_vec();
    all.push(SystemKind::Ideal);
    for k in all {
        let s = k.spec();
        println!(
            "{:<22} {:<21} {:<15} {:<12} {}",
            k.label(),
            s.medium.label(),
            s.datapath.label(),
            s.buffer.label(),
            s.control.label()
        );
    }
    println!("\nany other medium x datapath x buffer x control combination");
    println!("can be composed as a JSON file and run with --spec <file>.");
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        systems: Vec::new(),
        specs: Vec::new(),
        kernels: vec![Kernel::Gemver],
        scale: Scale::paper(),
        seed: 42,
        agents: 7,
        json: None,
        metrics: false,
        trace_out: None,
        faults: None,
        tier: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--system" => {
                let v = value("--system")?;
                opts.systems = if v == "all" {
                    SystemKind::EVALUATED.to_vec()
                } else {
                    vec![parse_system(&v).ok_or_else(|| format!("unknown system `{v}`"))?]
                };
            }
            "--spec" => {
                let v = value("--spec")?;
                opts.specs.push(load_spec(&v)?);
            }
            "--kernel" => {
                let v = value("--kernel")?;
                opts.kernels = if v == "all" {
                    Kernel::ALL.to_vec()
                } else {
                    vec![parse_kernel(&v).ok_or_else(|| format!("unknown kernel `{v}`"))?]
                };
            }
            "--scale" => {
                let v = value("--scale")?;
                let f: f64 = v.parse().map_err(|_| format!("bad scale `{v}`"))?;
                if f <= 0.0 {
                    return Err("scale must be positive".into());
                }
                opts.scale = Scale(f);
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--agents" => {
                let v = value("--agents")?;
                let n: usize = v.parse().map_err(|_| format!("bad agent count `{v}`"))?;
                if !(1..=7).contains(&n) {
                    return Err("agents must be in 1..=7 (8 PEs, one serves)".into());
                }
                opts.agents = n;
            }
            "--tier" => {
                let v = value("--tier")?;
                opts.tier = Some(match v.to_ascii_lowercase().as_str() {
                    "accurate" => FidelityTier::Accurate,
                    "analytic" => FidelityTier::Analytic,
                    _ => return Err(format!("unknown tier `{v}` (accurate|analytic)")),
                });
            }
            "--json" => opts.json = Some(value("--json")?),
            "--metrics" => opts.metrics = true,
            "--faults" => {
                let v = value("--faults")?;
                opts.faults = Some(load_faults(&v)?);
            }
            "--trace-out" => {
                opts.trace_out = Some(value("--trace-out")?);
                opts.metrics = true;
            }
            "--list" => {
                println!("systems:");
                for k in SystemKind::EVALUATED {
                    println!("  {}", k.label());
                }
                println!("  Ideal");
                println!("kernels:");
                for k in Kernel::ALL {
                    println!("  {}", k.label());
                }
                std::process::exit(0);
            }
            "--list-systems" => {
                list_systems();
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
    }
    // Default: the proposed design — unless the user only asked for
    // custom specs.
    if opts.systems.is_empty() && opts.specs.is_empty() {
        opts.systems.push(SystemKind::DramLess);
    }
    Ok(opts)
}

fn print_header() {
    println!(
        "{:<22} {:<10} {:>12} {:>15} {:>12} {:>12}",
        "system", "kernel", "total time", "bandwidth", "energy", "aggregate"
    );
}

fn print_metrics(metrics: &util::telemetry::MetricSet) {
    if metrics.is_empty() {
        return;
    }
    println!("\nmetrics:");
    for (name, v) in metrics.iter() {
        match v {
            MetricValue::Counter(c) => println!("  {name:<28} {c}"),
            MetricValue::Gauge(g) => println!("  {name:<28} {g:.3}"),
            MetricValue::Histogram(h) => println!(
                "  {name:<28} n={} p50={}ns p90={}ns p99={}ns",
                h.count(),
                h.quantile_ns(0.5),
                h.quantile_ns(0.9),
                h.quantile_ns(0.99)
            ),
        }
    }
}

fn print_row(out: &RunOutcome) {
    println!(
        "{:<22} {:<10} {:>12} {:>10.1} MB/s {:>12} {:>8.3} IPC",
        out.system.name(),
        out.kernel.label(),
        format!("{}", out.total_time),
        out.bandwidth() / 1e6,
        format!("{}", out.total_energy()),
        out.total_ipc()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = SystemParams {
        seed: opts.seed,
        agents: opts.agents,
        ..Default::default()
    };
    let workloads: Vec<Workload> = opts
        .kernels
        .iter()
        .map(|&k| Workload::of(k, opts.scale))
        .collect();
    // Presets first, then custom specs, in command-line order.
    let mut systems: Vec<(SystemId, SystemSpec)> = opts
        .systems
        .iter()
        .map(|&k| (SystemId::Preset(k), k.spec()))
        .collect();
    systems.extend(
        opts.specs
            .iter()
            .map(|s| (SystemId::Custom(s.display_name()), s.clone())),
    );
    if let Some(tier) = opts.tier {
        for (_, spec) in systems.iter_mut() {
            spec.tier = tier;
        }
    }
    if opts.metrics {
        for (_, spec) in systems.iter_mut() {
            spec.telemetry.get_or_insert_with(Default::default);
        }
    }
    if let Some(plan) = &opts.faults {
        for (_, spec) in systems.iter_mut() {
            spec.faults = Some(plan.clone());
        }
    }
    // A trace run is a single cell: one system, one kernel, with the
    // full event trace kept and exported.
    if let Some(path) = &opts.trace_out {
        if systems.len() != 1 || workloads.len() != 1 {
            eprintln!(
                "error: --trace-out traces exactly one cell; pick one \
                 system (or one --spec) and one kernel"
            );
            return ExitCode::FAILURE;
        }
        let (_, spec) = &systems[0];
        let built = workloads[0].build(params.agents);
        let (out, events) = match dramless::simulate_spec_traced(spec, &built, &params) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trace = util::telemetry::chrome_trace(&events);
        if let Err(e) = std::fs::write(path, trace.to_json_pretty()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        print_header();
        print_row(&out);
        print_metrics(&out.metrics);
        println!(
            "\nwrote {} trace events to {path} (open in https://ui.perfetto.dev)",
            events.len()
        );
        if let Some(json) = &opts.json {
            let suite = dramless::SuiteResult {
                outcomes: vec![out],
            };
            if let Err(e) = std::fs::write(json, suite.to_json()) {
                eprintln!("error: writing {json}: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    // The work-stealing engine returns outcomes in workload-major order
    // — exactly the order the old nested loop printed them in.
    let (result, stats) =
        match dramless::sweep::sweep_systems_with_stats(&systems, &workloads, &params) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
    print_header();
    for out in &result.outcomes {
        print_row(out);
    }
    println!(
        "\n{} cells in {:.3}s on {} thread(s) — {:.1} cells/s \
         (build {:.3}s, execute {:.3}s)",
        stats.cells,
        stats.elapsed.as_secs_f64(),
        stats.threads,
        stats.cells_per_sec(),
        stats.build.as_secs_f64(),
        stats.execute.as_secs_f64()
    );
    if opts.metrics {
        print_metrics(&result.aggregate_metrics());
    }
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, result.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {} outcomes to {path}", result.outcomes.len());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::json::ToJson;

    #[test]
    fn parses_defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.systems, vec![SystemKind::DramLess]);
        assert_eq!(o.kernels, vec![Kernel::Gemver]);
        assert_eq!(o.seed, 42);
        assert!(o.specs.is_empty());
    }

    #[test]
    fn parses_system_aliases() {
        assert_eq!(parse_system("dram-less"), Some(SystemKind::DramLess));
        assert_eq!(parse_system("DRAM-less"), Some(SystemKind::DramLess));
        assert_eq!(parse_system("hetero"), Some(SystemKind::Hetero));
        assert_eq!(parse_system("page-buffer"), Some(SystemKind::PageBuffer));
        assert_eq!(parse_system("ideal"), Some(SystemKind::Ideal));
        assert_eq!(parse_system("nope"), None);
    }

    #[test]
    fn parses_kernels() {
        assert_eq!(parse_kernel("gemver"), Some(Kernel::Gemver));
        assert_eq!(parse_kernel("jaco1D"), Some(Kernel::Jaco1d));
        assert_eq!(parse_kernel("bogus"), None);
    }

    #[test]
    fn parses_full_command_line() {
        let args: Vec<String> = [
            "--system",
            "all",
            "--kernel",
            "all",
            "--scale",
            "0.5",
            "--seed",
            "9",
            "--agents",
            "3",
            "--json",
            "/tmp/out.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse(&args).unwrap();
        assert_eq!(o.systems.len(), 11);
        assert_eq!(o.kernels.len(), 15);
        assert_eq!(o.scale.0, 0.5);
        assert_eq!(o.seed, 9);
        assert_eq!(o.agents, 3);
        assert_eq!(o.json.as_deref(), Some("/tmp/out.json"));
    }

    #[test]
    fn parses_spec_files() {
        let spec = SystemSpec {
            name: Some("cli-test".into()),
            ..SystemKind::Heterodirect.spec()
        };
        let path = std::env::temp_dir().join("dramless-sim-cli-test-spec.json");
        std::fs::write(&path, spec.to_json_pretty()).unwrap();
        let args = vec!["--spec".to_string(), path.display().to_string()];
        let o = parse(&args).unwrap();
        // A lone --spec replaces the default preset.
        assert!(o.systems.is_empty());
        assert_eq!(o.specs, vec![spec]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parses_telemetry_flags() {
        let o = parse(&["--metrics".to_string()]).unwrap();
        assert!(o.metrics);
        assert!(o.trace_out.is_none());
        let o = parse(&["--trace-out".to_string(), "/tmp/t.json".to_string()]).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t.json"));
        assert!(o.metrics, "--trace-out implies --metrics");
        assert!(parse(&["--trace-out".to_string()]).is_err());
    }

    #[test]
    fn parses_fault_plan_files() {
        let plan = FaultPlan::seeded(11);
        let path = std::env::temp_dir().join("dramless-sim-cli-test-faults.json");
        std::fs::write(&path, plan.to_json_pretty()).unwrap();
        let o = parse(&["--faults".to_string(), path.display().to_string()]).unwrap();
        assert_eq!(o.faults, Some(plan));
        std::fs::remove_file(&path).ok();
        assert!(parse(&["--faults".to_string()]).is_err());
        assert!(parse(&["--faults".into(), "/no/such/plan.json".into()]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--system".into(), "warp-drive".into()]).is_err());
        assert!(parse(&["--scale".into(), "-1".into()]).is_err());
        assert!(parse(&["--agents".into(), "9".into()]).is_err());
        assert!(parse(&["--frobnicate".into()]).is_err());
        assert!(parse(&["--seed".into()]).is_err());
        assert!(parse(&["--spec".into(), "/no/such/file.json".into()]).is_err());
    }
}
