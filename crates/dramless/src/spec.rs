//! Declarative system composition: the paper's architecture *space*.
//!
//! Table I enumerates twelve points, but its rows are orthogonal axes:
//! a storage **medium**, the **datapath** connecting it to the agent
//! PEs, an optional internal DRAM **buffer**, and the **control** logic
//! driving the PRAM subsystem (the Fig. 13 ablation axis). A
//! [`SystemSpec`] names one point in that space as plain data;
//! [`crate::system::build_system`] turns it into a runnable backend and
//! the single phase-driven runner plays any workload through it.
//!
//! Every [`SystemKind`] is now just a named preset — [`SystemKind::spec`]
//! returns the spec that reproduces it bit-for-bit — and specs
//! serialize through `util::json`, so configurations the paper never
//! built (TLC flash behind P2P DMA, an Interleaving scheduler behind a
//! staged path, …) run from a JSON file via `dramless-sim --spec`.

use crate::config::SystemKind;
use flash::CellKind;
use pram_ctrl::{FirmwareParams, SchedulerKind};
use sim_core::fault::FaultPlan;
use sim_core::mem::FidelityTier;
use std::fmt;
use util::json::{field, FromJson, Json, JsonError, ToJson};

/// The storage medium holding the dataset (Table I row "storage").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Medium {
    /// An NVMe-class flash SSD outside the accelerator (Hetero family).
    FlashSsd {
        /// Flash cell kind (Table I: the evaluated SSD uses MLC).
        cell: CellKind,
    },
    /// An Optane-like PRAM SSD outside the accelerator.
    PramSsd,
    /// 9x-nm PRAM behind a serial NOR interface.
    NorPram,
    /// Raw flash dies inside the accelerator (Integrated family).
    IntegratedFlash {
        /// Flash cell kind (SLC/MLC/TLC tiers).
        cell: CellKind,
    },
    /// The paper's 3x-nm PRAM sample on the accelerator's memory bus.
    Pram3x,
    /// Plain DRAM large enough for the whole dataset (the Ideal bound).
    Dram,
}

/// How data moves between the medium and the agent PEs (Table I row
/// "interface/datapath").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Datapath {
    /// Staged through the host software storage stack (§III-A).
    HostMediated,
    /// Staged by peer-to-peer DMA, bypassing the host stack.
    P2pDma,
    /// Mapped into the PEs' address space; every load/store hits the
    /// medium directly.
    DirectLoadStore,
    /// Whole-page transfers into an internal buffer (flash-style).
    PageInterface,
}

util::json_unit_enum!(Datapath {
    HostMediated,
    P2pDma,
    DirectLoadStore,
    PageInterface
});

/// The accelerator's internal buffering (Table I row "internal DRAM").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Buffer {
    /// No internal buffer: the datapath serves the medium's latency.
    None,
    /// An internal DRAM page cache in front of the medium.
    DramPageCache {
        /// Cache capacity in frames; `None` sizes it from the workload
        /// footprint and [`crate::SystemParams::capacity_pressure`],
        /// exactly like the Table I presets.
        frames: Option<usize>,
    },
}

/// Who drives the PRAM subsystem (the §VI control-logic axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Control {
    /// The paper's hardware-automated controller.
    HardwareAutomated {
        /// Scheduler variant (Fig. 13: BareMetal/Interleaving/
        /// SelectiveErasing/Final).
        scheduler: SchedulerKind,
    },
    /// SSD-style firmware on an embedded CPU fronting the same datapath.
    Firmware {
        /// Scheduler of the underlying PRAM subsystem.
        scheduler: SchedulerKind,
        /// Firmware execution-cost parameters.
        params: FirmwareParams,
    },
}

/// Telemetry knob of a spec: `Some` switches on event tracing and the
/// per-component metric registry for every run of this spec.
///
/// Metrics land in [`crate::RunOutcome::metrics`]; the event trace is
/// surfaced by the traced entry points
/// ([`crate::system::simulate_spec_traced`]) and the `dramless-sim
/// --trace-out` flag. Absent (`None`, the default everywhere), every
/// probe stays disabled and reports are byte-identical to an
/// uninstrumented build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Ring-buffer capacity of the event tracer: the trace keeps the
    /// *last* `trace_events` events and counts the overflow.
    pub trace_events: usize,
    /// Per-request latency attribution: every memory request carries a
    /// [`sim_core::probe::LatencySpan`] and the report gains a
    /// `latency_attribution` block (cause totals, top-K worst requests,
    /// sim-time windows). Off by default.
    pub attribution: bool,
}

// Hand-written (not `json_struct!`) so `attribution` is omitted when
// false: telemetry specs (and their reports) from before the knob
// existed parse and serialize byte-identically.
impl ToJson for TelemetrySpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![("trace_events".to_string(), self.trace_events.to_json())];
        if self.attribution {
            fields.push(("attribution".to_string(), self.attribution.to_json()));
        }
        Json::Obj(fields)
    }
}

impl FromJson for TelemetrySpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TelemetrySpec {
            trace_events: field(v, "trace_events")?,
            attribution: field::<Option<bool>>(v, "attribution")?.unwrap_or(false),
        })
    }
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec {
            trace_events: 65_536,
            attribution: false,
        }
    }
}

/// One point in the architecture space, as plain serializable data.
///
/// # Examples
///
/// A configuration Table I never built — TLC flash behind peer-to-peer
/// DMA:
///
/// ```
/// use dramless::{Buffer, Control, Datapath, Medium, SystemSpec};
/// use flash::CellKind;
/// use pram_ctrl::SchedulerKind;
///
/// let spec = SystemSpec {
///     name: Some("tlc-heterodirect".into()),
///     medium: Medium::FlashSsd { cell: CellKind::Tlc },
///     datapath: Datapath::P2pDma,
///     buffer: Buffer::DramPageCache { frames: None },
///     control: Control::HardwareAutomated { scheduler: SchedulerKind::Final },
///     telemetry: None,
///     faults: None,
///     tier: Default::default(),
/// };
/// let text = util::json::ToJson::to_json_pretty(&spec);
/// let back = <SystemSpec as util::json::FromJson>::from_json_str(&text).unwrap();
/// assert_eq!(back, spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Optional display name used in reports; `None` derives one from
    /// the axes.
    pub name: Option<String>,
    /// The storage medium.
    pub medium: Medium,
    /// The datapath between medium and PEs.
    pub datapath: Datapath,
    /// Internal buffering.
    pub buffer: Buffer,
    /// PRAM control logic.
    pub control: Control,
    /// Observability: `Some` enables tracing + metrics for this spec's
    /// runs. Serialized only when present, so existing spec files and
    /// reports are unchanged.
    pub telemetry: Option<TelemetrySpec>,
    /// Fault injection: `Some` threads a seeded [`FaultPlan`] through
    /// every backend this spec builds (PRAM error model, ECC/retry,
    /// SSD transients) and adds a `degraded` section to reports. Like
    /// `telemetry`, the key is serialized only when present, so
    /// fault-free specs and reports are byte-identical to before.
    pub faults: Option<FaultPlan>,
    /// Fidelity tier: [`FidelityTier::Accurate`] (the default) runs the
    /// protocol-level models; [`FidelityTier::Analytic`] runs the
    /// calibrated closed-form models (see `crate::analytic`). Serialized
    /// only when non-default, so existing spec files are unchanged.
    pub tier: FidelityTier,
}

// Hand-written (not `json_struct!`) so the `telemetry` and `faults`
// keys are *omitted* when `None`: specs with those knobs off serialize
// exactly as they did before the knobs existed.
impl ToJson for SystemSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), self.name.to_json()),
            ("medium".to_string(), self.medium.to_json()),
            ("datapath".to_string(), self.datapath.to_json()),
            ("buffer".to_string(), self.buffer.to_json()),
            ("control".to_string(), self.control.to_json()),
        ];
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry".to_string(), t.to_json()));
        }
        if let Some(f) = &self.faults {
            fields.push(("faults".to_string(), f.to_json()));
        }
        if self.tier != FidelityTier::default() {
            fields.push(("tier".to_string(), self.tier.to_json()));
        }
        Json::Obj(fields)
    }
}

impl FromJson for SystemSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SystemSpec {
            name: field(v, "name")?,
            medium: field(v, "medium")?,
            datapath: field(v, "datapath")?,
            buffer: field(v, "buffer")?,
            control: field(v, "control")?,
            telemetry: field(v, "telemetry")?,
            faults: field(v, "faults")?,
            tier: field::<Option<FidelityTier>>(v, "tier")?.unwrap_or_default(),
        })
    }
}

/// A spec that names a combination the composition rules cannot build
/// (e.g. flash served over direct load/store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    /// Creates the error.
    pub fn new(msg: impl Into<String>) -> Self {
        SpecError { msg: msg.into() }
    }

    /// The human-readable reason.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system spec: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

fn cell_label(cell: CellKind) -> &'static str {
    match cell {
        CellKind::Slc => "slc",
        CellKind::Mlc => "mlc",
        CellKind::Tlc => "tlc",
    }
}

impl Medium {
    /// Short axis label used in derived display names.
    pub fn label(self) -> String {
        match self {
            Medium::FlashSsd { cell } => format!("flash-ssd({})", cell_label(cell)),
            Medium::PramSsd => "pram-ssd".into(),
            Medium::NorPram => "nor-pram".into(),
            Medium::IntegratedFlash { cell } => format!("integrated-flash({})", cell_label(cell)),
            Medium::Pram3x => "pram-3x".into(),
            Medium::Dram => "dram".into(),
        }
    }
}

impl Datapath {
    /// Short axis label used in derived display names.
    pub fn label(self) -> &'static str {
        match self {
            Datapath::HostMediated => "host-mediated",
            Datapath::P2pDma => "p2p-dma",
            Datapath::DirectLoadStore => "load-store",
            Datapath::PageInterface => "page-interface",
        }
    }
}

impl Buffer {
    /// Short axis label used in derived display names.
    pub fn label(self) -> String {
        match self {
            Buffer::None => "no-buffer".into(),
            Buffer::DramPageCache { frames: None } => "dram-cache".into(),
            Buffer::DramPageCache { frames: Some(n) } => format!("dram-cache({n})"),
        }
    }
}

impl Control {
    /// Short axis label used in derived display names.
    pub fn label(self) -> String {
        match self {
            Control::HardwareAutomated { scheduler } => format!("hw({})", scheduler.label()),
            Control::Firmware { scheduler, .. } => format!("fw({})", scheduler.label()),
        }
    }
}

impl SystemSpec {
    /// The name reports use for this spec: [`SystemSpec::name`] if set,
    /// otherwise a `medium+datapath+buffer+control` string derived from
    /// the axes.
    pub fn display_name(&self) -> String {
        if let Some(name) = &self.name {
            return name.clone();
        }
        format!(
            "{}+{}+{}+{}",
            self.medium.label(),
            self.datapath.label(),
            self.buffer.label(),
            self.control.label()
        )
    }
}

// Data-carrying enums serialize externally tagged (serde's default
// layout): unit variants as their name string, data variants as a
// one-key object.

/// Externally-tagged variant: `{ "Tag": { ...body } }` — shared by the
/// spec and traffic JSON layers.
pub(crate) fn tagged(tag: &str, body: Vec<(String, Json)>) -> Json {
    Json::Obj(vec![(tag.to_string(), Json::Obj(body))])
}

/// Splits an externally-tagged value into `(tag, body)`.
pub(crate) fn variant<'j>(ty: &str, v: &'j Json) -> Result<(&'j str, &'j Json), JsonError> {
    match v {
        Json::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
        _ => Err(JsonError::new(format!(
            "expected {ty} variant (string or one-key object), got {}",
            v.kind()
        ))),
    }
}

impl ToJson for Medium {
    fn to_json(&self) -> Json {
        match self {
            Medium::FlashSsd { cell } => {
                tagged("FlashSsd", vec![("cell".to_string(), cell.to_json())])
            }
            Medium::PramSsd => Json::Str("PramSsd".to_string()),
            Medium::NorPram => Json::Str("NorPram".to_string()),
            Medium::IntegratedFlash { cell } => tagged(
                "IntegratedFlash",
                vec![("cell".to_string(), cell.to_json())],
            ),
            Medium::Pram3x => Json::Str("Pram3x".to_string()),
            Medium::Dram => Json::Str("Dram".to_string()),
        }
    }
}

impl FromJson for Medium {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(s) = v.as_str() {
            return match s {
                "PramSsd" => Ok(Medium::PramSsd),
                "NorPram" => Ok(Medium::NorPram),
                "Pram3x" => Ok(Medium::Pram3x),
                "Dram" => Ok(Medium::Dram),
                other => Err(JsonError::new(format!("unknown Medium variant {other:?}"))),
            };
        }
        let (tag, body) = variant("Medium", v)?;
        match tag {
            "FlashSsd" => Ok(Medium::FlashSsd {
                cell: field(body, "cell")?,
            }),
            "IntegratedFlash" => Ok(Medium::IntegratedFlash {
                cell: field(body, "cell")?,
            }),
            other => Err(JsonError::new(format!("unknown Medium variant {other:?}"))),
        }
    }
}

impl ToJson for Buffer {
    fn to_json(&self) -> Json {
        match self {
            Buffer::None => Json::Str("None".to_string()),
            Buffer::DramPageCache { frames } => tagged(
                "DramPageCache",
                vec![("frames".to_string(), frames.to_json())],
            ),
        }
    }
}

impl FromJson for Buffer {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(s) = v.as_str() {
            return match s {
                "None" => Ok(Buffer::None),
                other => Err(JsonError::new(format!("unknown Buffer variant {other:?}"))),
            };
        }
        let (tag, body) = variant("Buffer", v)?;
        match tag {
            "DramPageCache" => Ok(Buffer::DramPageCache {
                frames: field(body, "frames")?,
            }),
            other => Err(JsonError::new(format!("unknown Buffer variant {other:?}"))),
        }
    }
}

impl ToJson for Control {
    fn to_json(&self) -> Json {
        match self {
            Control::HardwareAutomated { scheduler } => tagged(
                "HardwareAutomated",
                vec![("scheduler".to_string(), scheduler.to_json())],
            ),
            Control::Firmware { scheduler, params } => tagged(
                "Firmware",
                vec![
                    ("scheduler".to_string(), scheduler.to_json()),
                    ("params".to_string(), params.to_json()),
                ],
            ),
        }
    }
}

impl FromJson for Control {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, body) = variant("Control", v)?;
        match tag {
            "HardwareAutomated" => Ok(Control::HardwareAutomated {
                scheduler: field(body, "scheduler")?,
            }),
            "Firmware" => Ok(Control::Firmware {
                scheduler: field(body, "scheduler")?,
                params: field(body, "params")?,
            }),
            other => Err(JsonError::new(format!("unknown Control variant {other:?}"))),
        }
    }
}

impl SystemKind {
    /// The spec that reproduces this Table I preset bit-for-bit
    /// (`tests/spec_equivalence.rs` locks the equivalence in).
    pub fn spec(self) -> SystemSpec {
        let final_hw = Control::HardwareAutomated {
            scheduler: SchedulerKind::Final,
        };
        let cache = Buffer::DramPageCache { frames: None };
        let (medium, datapath, buffer, control) = match self {
            SystemKind::Hetero => (
                Medium::FlashSsd {
                    cell: CellKind::Mlc,
                },
                Datapath::HostMediated,
                cache,
                final_hw,
            ),
            SystemKind::Heterodirect => (
                Medium::FlashSsd {
                    cell: CellKind::Mlc,
                },
                Datapath::P2pDma,
                cache,
                final_hw,
            ),
            SystemKind::HeteroPram => (Medium::PramSsd, Datapath::HostMediated, cache, final_hw),
            SystemKind::HeterodirectPram => (Medium::PramSsd, Datapath::P2pDma, cache, final_hw),
            SystemKind::NorIntf => (
                Medium::NorPram,
                Datapath::DirectLoadStore,
                Buffer::None,
                final_hw,
            ),
            SystemKind::IntegratedSlc => (
                Medium::IntegratedFlash {
                    cell: CellKind::Slc,
                },
                Datapath::PageInterface,
                cache,
                final_hw,
            ),
            SystemKind::IntegratedMlc => (
                Medium::IntegratedFlash {
                    cell: CellKind::Mlc,
                },
                Datapath::PageInterface,
                cache,
                final_hw,
            ),
            SystemKind::IntegratedTlc => (
                Medium::IntegratedFlash {
                    cell: CellKind::Tlc,
                },
                Datapath::PageInterface,
                cache,
                final_hw,
            ),
            SystemKind::PageBuffer => (
                Medium::Pram3x,
                Datapath::PageInterface,
                cache,
                Control::HardwareAutomated {
                    scheduler: SchedulerKind::Interleaving,
                },
            ),
            SystemKind::DramLess => (
                Medium::Pram3x,
                Datapath::DirectLoadStore,
                Buffer::None,
                final_hw,
            ),
            SystemKind::DramLessFirmware => (
                Medium::Pram3x,
                Datapath::DirectLoadStore,
                Buffer::None,
                Control::Firmware {
                    scheduler: SchedulerKind::Final,
                    params: FirmwareParams::default(),
                },
            ),
            SystemKind::Ideal => (
                Medium::Dram,
                Datapath::DirectLoadStore,
                Buffer::None,
                final_hw,
            ),
        };
        SystemSpec {
            name: Some(self.label().to_string()),
            medium,
            datapath,
            buffer,
            control,
            telemetry: None,
            faults: None,
            tier: FidelityTier::Accurate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_table1_axes() {
        // Table I row checks: the staged systems carry a DRAM cache, the
        // load/store systems none, the Integrated family pages flash.
        for kind in SystemKind::EVALUATED {
            let s = kind.spec();
            assert_eq!(
                matches!(s.buffer, Buffer::DramPageCache { .. }),
                kind.has_internal_dram(),
                "{kind}: buffer axis"
            );
            assert_eq!(
                matches!(s.datapath, Datapath::HostMediated | Datapath::P2pDma),
                kind.is_heterogeneous(),
                "{kind}: datapath axis"
            );
        }
        assert_eq!(
            SystemKind::Ideal.spec().medium,
            Medium::Dram,
            "Ideal holds everything in DRAM"
        );
    }

    #[test]
    fn preset_specs_round_trip() {
        let mut all = SystemKind::EVALUATED.to_vec();
        all.push(SystemKind::Ideal);
        for kind in all {
            let spec = kind.spec();
            let text = spec.to_json_string();
            let back = SystemSpec::from_json_str(&text).unwrap();
            assert_eq!(back, spec, "{kind}");
        }
    }

    #[test]
    fn custom_spec_round_trips_without_name() {
        let spec = SystemSpec {
            name: None,
            medium: Medium::FlashSsd {
                cell: CellKind::Tlc,
            },
            datapath: Datapath::P2pDma,
            buffer: Buffer::DramPageCache { frames: Some(128) },
            control: Control::HardwareAutomated {
                scheduler: SchedulerKind::Interleaving,
            },
            telemetry: None,
            faults: None,
            tier: FidelityTier::Accurate,
        };
        let back = SystemSpec::from_json_str(&spec.to_json_pretty()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(
            back.display_name(),
            "flash-ssd(tlc)+p2p-dma+dram-cache(128)+hw(Interleaving)"
        );
    }

    #[test]
    fn malformed_specs_are_errors_not_panics() {
        assert!(SystemSpec::from_json_str("{}").is_err());
        assert!(SystemSpec::from_json_str(r#"{"medium":"Warp"}"#).is_err());
        assert!(Medium::from_json_str(r#"{"FlashSsd":{"cell":"Qlc"}}"#).is_err());
        assert!(Control::from_json_str(r#""HardwareAutomated""#).is_err());
    }

    #[test]
    fn telemetry_knob_is_omitted_when_off_and_round_trips_when_on() {
        let off = SystemKind::DramLess.spec();
        assert!(!off.to_json_string().contains("telemetry"));

        let on = SystemSpec {
            telemetry: Some(TelemetrySpec {
                trace_events: 1024,
                ..Default::default()
            }),
            ..off.clone()
        };
        let text = on.to_json_pretty();
        assert!(text.contains("\"telemetry\""));
        let back = SystemSpec::from_json_str(&text).unwrap();
        assert_eq!(back, on);

        // A spec file written before the knob existed still parses.
        let old = SystemSpec::from_json_str(&off.to_json_string()).unwrap();
        assert_eq!(old, off);
    }

    #[test]
    fn faults_knob_is_omitted_when_off_and_round_trips_when_on() {
        let off = SystemKind::DramLess.spec();
        assert!(!off.to_json_string().contains("faults"));

        let on = SystemSpec {
            faults: Some(FaultPlan::seeded(7)),
            ..off.clone()
        };
        let text = on.to_json_pretty();
        assert!(text.contains("\"faults\""));
        let back = SystemSpec::from_json_str(&text).unwrap();
        assert_eq!(back, on);

        // A spec file written before the knob existed still parses.
        let old = SystemSpec::from_json_str(&off.to_json_string()).unwrap();
        assert_eq!(old, off);
    }

    #[test]
    fn tier_knob_is_omitted_when_accurate_and_round_trips_when_analytic() {
        let acc = SystemKind::DramLess.spec();
        assert!(!acc.to_json_string().contains("tier"));

        let ana = SystemSpec {
            tier: FidelityTier::Analytic,
            ..acc.clone()
        };
        let text = ana.to_json_pretty();
        assert!(text.contains("\"tier\": \"Analytic\""));
        let back = SystemSpec::from_json_str(&text).unwrap();
        assert_eq!(back, ana);

        // A spec file written before the knob existed still parses.
        let old = SystemSpec::from_json_str(&acc.to_json_string()).unwrap();
        assert_eq!(old, acc);
    }

    #[test]
    fn preset_display_names_are_figure_labels() {
        assert_eq!(SystemKind::DramLess.spec().display_name(), "DRAM-less");
        assert_eq!(SystemKind::HeteroPram.spec().display_name(), "Hetero-PRAM");
    }
}
