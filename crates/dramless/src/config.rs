//! System configurations (Table I).

use std::fmt;

/// The evaluated accelerated-system designs.
///
/// The first ten are Table I's columns; [`SystemKind::DramLessFirmware`]
/// is the §VI firmware baseline and [`SystemKind::Ideal`] the Fig. 1
/// all-in-memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Flash SSD + host-mediated staging + accelerator DRAM.
    Hetero,
    /// Flash SSD + peer-to-peer DMA + accelerator DRAM.
    Heterodirect,
    /// Optane-like PRAM SSD + host-mediated staging.
    HeteroPram,
    /// Optane-like PRAM SSD + peer-to-peer DMA.
    HeterodirectPram,
    /// 9x-nm PRAM behind a serial NOR interface, accessed directly.
    NorIntf,
    /// SLC flash inside the accelerator behind a DRAM page buffer.
    IntegratedSlc,
    /// MLC flash inside the accelerator.
    IntegratedMlc,
    /// TLC flash inside the accelerator.
    IntegratedTlc,
    /// The 3x-nm PRAM behind a page interface + DRAM buffer.
    PageBuffer,
    /// The proposed design: hardware-automated PRAM controller with the
    /// Final scheduler, accessed by load/store.
    DramLess,
    /// Same datapath managed by SSD-style firmware on a 3-core ARM.
    DramLessFirmware,
    /// An idealized system whose whole dataset fits in fast memory.
    Ideal,
}

util::json_unit_enum!(SystemKind {
    Hetero,
    Heterodirect,
    HeteroPram,
    HeterodirectPram,
    NorIntf,
    IntegratedSlc,
    IntegratedMlc,
    IntegratedTlc,
    PageBuffer,
    DramLess,
    DramLessFirmware,
    Ideal,
});

impl SystemKind {
    /// Table I's ten columns, in figure order.
    pub const TABLE1: [SystemKind; 10] = [
        SystemKind::Hetero,
        SystemKind::Heterodirect,
        SystemKind::HeteroPram,
        SystemKind::HeterodirectPram,
        SystemKind::NorIntf,
        SystemKind::IntegratedSlc,
        SystemKind::IntegratedMlc,
        SystemKind::IntegratedTlc,
        SystemKind::PageBuffer,
        SystemKind::DramLess,
    ];

    /// Table I plus the firmware variant (the Fig. 15/16/17 x-axis).
    pub const EVALUATED: [SystemKind; 11] = [
        SystemKind::Hetero,
        SystemKind::Heterodirect,
        SystemKind::HeteroPram,
        SystemKind::HeterodirectPram,
        SystemKind::NorIntf,
        SystemKind::IntegratedSlc,
        SystemKind::IntegratedMlc,
        SystemKind::IntegratedTlc,
        SystemKind::PageBuffer,
        SystemKind::DramLessFirmware,
        SystemKind::DramLess,
    ];

    /// The figure label.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Hetero => "Hetero",
            SystemKind::Heterodirect => "Heterodirect",
            SystemKind::HeteroPram => "Hetero-PRAM",
            SystemKind::HeterodirectPram => "Heterodirect-PRAM",
            SystemKind::NorIntf => "NOR-intf",
            SystemKind::IntegratedSlc => "Integrated-SLC",
            SystemKind::IntegratedMlc => "Integrated-MLC",
            SystemKind::IntegratedTlc => "Integrated-TLC",
            SystemKind::PageBuffer => "PAGE-buffer",
            SystemKind::DramLess => "DRAM-less",
            SystemKind::DramLessFirmware => "DRAM-less (firmware)",
            SystemKind::Ideal => "Ideal",
        }
    }

    /// Is this a heterogeneous system (external SSD + staging)?
    pub fn is_heterogeneous(self) -> bool {
        matches!(
            self,
            SystemKind::Hetero
                | SystemKind::Heterodirect
                | SystemKind::HeteroPram
                | SystemKind::HeterodirectPram
        )
    }

    /// Does the accelerator carry an internal DRAM buffer (Table I row
    /// "Internal DRAM")?
    pub fn has_internal_dram(self) -> bool {
        matches!(
            self,
            SystemKind::Hetero
                | SystemKind::Heterodirect
                | SystemKind::HeteroPram
                | SystemKind::HeterodirectPram
                | SystemKind::IntegratedSlc
                | SystemKind::IntegratedMlc
                | SystemKind::IntegratedTlc
                | SystemKind::PageBuffer
                | SystemKind::Ideal
        )
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Identity of a simulated system in reports: either a Table I preset
/// or a custom [`crate::spec::SystemSpec`] run under its display name.
///
/// Serializes exactly like [`SystemKind`] for presets (the variant-name
/// string), so every report/bench JSON schema is unchanged; custom
/// systems appear as their name string. Compares transparently against
/// `SystemKind`, so `outcome.system == SystemKind::DramLess` keeps
/// working.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SystemId {
    /// One of the named Table I presets.
    Preset(SystemKind),
    /// A custom spec, identified by its display name.
    Custom(String),
}

impl SystemId {
    /// The display name (the preset's figure label, or the custom name).
    pub fn name(&self) -> &str {
        match self {
            SystemId::Preset(k) => k.label(),
            SystemId::Custom(s) => s,
        }
    }

    /// The preset, if this identifies one.
    pub fn preset(&self) -> Option<SystemKind> {
        match self {
            SystemId::Preset(k) => Some(*k),
            SystemId::Custom(_) => None,
        }
    }
}

impl From<SystemKind> for SystemId {
    fn from(kind: SystemKind) -> Self {
        SystemId::Preset(kind)
    }
}

impl PartialEq<SystemKind> for SystemId {
    fn eq(&self, other: &SystemKind) -> bool {
        matches!(self, SystemId::Preset(k) if k == other)
    }
}

impl PartialEq<SystemId> for SystemKind {
    fn eq(&self, other: &SystemId) -> bool {
        other == self
    }
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl util::json::ToJson for SystemId {
    fn to_json(&self) -> util::json::Json {
        match self {
            // Identical to SystemKind's layout: presets are byte-for-byte
            // what the pre-spec reports serialized.
            SystemId::Preset(k) => util::json::ToJson::to_json(k),
            SystemId::Custom(s) => util::json::Json::Str(s.clone()),
        }
    }
}

impl util::json::FromJson for SystemId {
    fn from_json(v: &util::json::Json) -> Result<Self, util::json::JsonError> {
        if let Ok(kind) = <SystemKind as util::json::FromJson>::from_json(v) {
            return Ok(SystemId::Preset(kind));
        }
        match v.as_str() {
            Some(s) => Ok(SystemId::Custom(s.to_string())),
            None => Err(util::json::JsonError::new(format!(
                "expected system name string, got {}",
                v.kind()
            ))),
        }
    }
}

/// Tunable parameters shared by every configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Agent PEs running kernels (the platform has 8 PEs; one serves).
    pub agents: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Working-set to buffer-capacity ratio. The paper runs ≥-1 GB-scale
    /// datasets against 1 GB buffers; we scale footprints down, so the
    /// *pressure ratio* is preserved instead of the absolute sizes:
    /// internal DRAM buffers hold `footprint / capacity_pressure` bytes,
    /// and heterogeneous systems re-stage `capacity_pressure` rounds.
    pub capacity_pressure: f64,
    /// Page size used by the page-interface configurations. Scaled down
    /// from the paper's 16 KB in proportion to the reduced footprints;
    /// flash array times are scaled by the same factor so per-byte
    /// bandwidth matches Table I.
    pub page_bytes: u32,
    /// Synthetic kernel-image bytes per agent (the offload payload).
    pub image_bytes_per_agent: u32,
    /// Time-series bucket width for IPC/power sampling.
    pub sample_bucket_us: u64,
}

util::json_struct!(SystemParams {
    agents,
    seed,
    capacity_pressure,
    page_bytes,
    image_bytes_per_agent,
    sample_bucket_us,
});

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams {
            agents: 7,
            seed: 42,
            capacity_pressure: 2.0,
            page_bytes: 4096,
            image_bytes_per_agent: 512,
            sample_bucket_us: 20,
        }
    }
}

impl SystemParams {
    /// Page-size scale factor relative to the paper's 16 KB pages.
    pub fn page_scale_divisor(&self) -> u64 {
        (16 * 1024 / self.page_bytes).max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_match_paper_membership() {
        assert_eq!(SystemKind::TABLE1.len(), 10);
        assert_eq!(SystemKind::EVALUATED.len(), 11);
        assert!(SystemKind::Hetero.is_heterogeneous());
        assert!(!SystemKind::DramLess.is_heterogeneous());
        // Table I "Internal DRAM" row: NOR-intf and DRAM-less are the
        // only evaluated designs without one.
        for k in SystemKind::TABLE1 {
            let expect = !matches!(k, SystemKind::NorIntf | SystemKind::DramLess);
            assert_eq!(k.has_internal_dram(), expect, "{k}");
        }
    }

    #[test]
    fn labels_are_figure_labels() {
        assert_eq!(SystemKind::HeteroPram.label(), "Hetero-PRAM");
        assert_eq!(SystemKind::DramLessFirmware.label(), "DRAM-less (firmware)");
    }

    #[test]
    fn page_scale_divisor() {
        let p = SystemParams::default();
        assert_eq!(p.page_scale_divisor(), 4); // 16 KB -> 4 KB
    }

    #[test]
    fn system_id_serializes_like_system_kind() {
        use util::json::{FromJson, ToJson};
        let id = SystemId::Preset(SystemKind::DramLess);
        assert_eq!(id.to_json_string(), SystemKind::DramLess.to_json_string());
        assert_eq!(
            SystemId::from_json_str("\"DramLess\"").unwrap(),
            SystemId::Preset(SystemKind::DramLess)
        );
        assert_eq!(
            SystemId::from_json_str("\"my-custom-rig\"").unwrap(),
            SystemId::Custom("my-custom-rig".to_string())
        );
        assert!(SystemId::from_json_str("17").is_err());
    }

    #[test]
    fn system_id_compares_against_kind() {
        let id: SystemId = SystemKind::Hetero.into();
        assert_eq!(id, SystemKind::Hetero);
        assert_eq!(SystemKind::Hetero, id);
        assert_ne!(SystemId::Custom("Hetero".into()), SystemKind::Hetero);
        assert_eq!(id.name(), "Hetero");
        assert_eq!(id.preset(), Some(SystemKind::Hetero));
    }
}
