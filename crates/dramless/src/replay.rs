//! Deterministic record/replay: run fingerprints, periodic checkpoints,
//! and window re-execution (wasm-rr style).
//!
//! **Record** plays each `(system, workload)` cell through the normal
//! phase runner, but drives the execution phase through the
//! [`accel::exec::ScheduleCursor`] slice loop directly so it can
//! interleave bookkeeping at arbitration-slice boundaries:
//!
//! * a chained FNV-1a **stream fingerprint** commits to every backend
//!   request (address, kind) and the completion clock of every batch;
//! * every ~`checkpoint_every` requests it captures a [`Checkpoint`]:
//!   the cursor's [`StateImage`] plus the composed backend's, tagged
//!   with the request count and the stream digest at that boundary.
//!
//! The cell's [`RunFingerprint`] additionally commits to the schedule
//! content-address (the same [`workloads::cache::traces_fingerprint`]
//! value the schedule memo table is keyed by) and to the final report
//! JSON, so a recording pins *inputs*, *request stream* and *outputs*.
//!
//! **Replay** restores the nearest checkpoint at or before the window
//! start and re-executes slices until the window end. Phases 1–2
//! (offload, bulk stage-in) are deterministic pure functions of the
//! spec and workload, so replay re-runs them fresh and then restores
//! only the execution-phase images over the prepared state. Every
//! recorded checkpoint the window crosses must reproduce its stream
//! digest exactly; any mismatch fails loudly with
//! [`ReplayError::Divergence`] instead of silently continuing from
//! corrupt state. A window that reaches the end of the run also
//! re-verifies the final report fingerprint.
//!
//! Fault injection replays for free: fault draws are stateless hashes
//! keyed by per-line counters that live inside the controller images.
//!
//! The analytic fidelity tier prices the whole execution phase in one
//! closed form — there is no request stream to checkpoint — so its
//! cells record an empty checkpoint list and verify by re-running and
//! comparing report fingerprints; asking for a `--window` on one is a
//! typed error.

use crate::analytic::ExecModel;
use crate::config::{SystemId, SystemParams};
use crate::report::RunOutcome;
use crate::spec::{SpecError, SystemSpec};
use crate::system::{build_system, finalize_run, prepare_phases, PreparedRun};
use accel::exec::{Accelerator, ScheduleCursor};
use sim_core::mem::{FidelityTier, MemoryBackend};
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::Snapshot;
use std::fmt;
use std::ops::Range;
use util::fingerprint::fnv1a;
use util::json::ToJson;
use workloads::Workload;

/// Default checkpoint cadence in backend requests.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 50_000;

/// Schema version of [`Recording`] files this build reads and writes.
pub const RECORDING_VERSION: u32 = 1;

/// The per-cell commitment: schedule content-address, request stream,
/// and final report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFingerprint {
    /// Content address of the workload's traces —
    /// [`workloads::cache::traces_fingerprint`], the same value the
    /// schedule memo table is keyed by. Replay proves it is re-deriving
    /// the same request stream before comparing anything downstream.
    pub schedule: u64,
    /// Total backend requests the execution phase issued (zero for
    /// analytic-tier cells, which have no request stream).
    pub requests: u64,
    /// The chained stream digest after the final request
    /// ([`ScheduleCursor::stream_fingerprint`]; zero for analytic).
    pub stream: u64,
    /// FNV-1a over the cell's full [`RunOutcome`] JSON.
    pub report: u64,
}

util::json_struct!(RunFingerprint {
    schedule,
    requests,
    stream,
    report
});

/// One restore point: the execution cursor's image and the composed
/// backend's image at an arbitration-slice boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Backend requests issued when the images were taken.
    pub requests: u64,
    /// The stream digest at that boundary — replay re-verifies it both
    /// right after restoring (catching tampered cursor images) and when
    /// a later window crosses this boundary.
    pub stream: u64,
    /// The [`ScheduleCursor`] image.
    pub exec: StateImage,
    /// The composed execution backend's image.
    pub backend: StateImage,
}

util::json_struct!(Checkpoint {
    requests,
    stream,
    exec,
    backend
});

/// One recorded `(system, workload)` cell: everything needed to re-run
/// it and to check the re-run against the original.
#[derive(Debug, Clone)]
pub struct CellRecording {
    /// The spec the cell ran under (telemetry stripped — see
    /// [`record_cell`]).
    pub spec: SystemSpec,
    /// The workload (rebuilt deterministically on replay).
    pub workload: Workload,
    /// The run's commitment.
    pub fingerprint: RunFingerprint,
    /// Periodic restore points, ascending by request count; the first
    /// one is always at request zero. Empty for analytic-tier cells.
    pub checkpoints: Vec<Checkpoint>,
    /// The straight run's full outcome.
    pub outcome: RunOutcome,
}

util::json_struct!(CellRecording {
    spec,
    workload,
    fingerprint,
    checkpoints,
    outcome
});

/// A recorded run: the parameters plus every cell, in workload-major
/// order (the same order the sweep engine reports in).
#[derive(Debug, Clone)]
pub struct Recording {
    /// [`RECORDING_VERSION`] at record time.
    pub version: u32,
    /// The system parameters every cell ran under (replay uses these,
    /// not the caller's).
    pub params: SystemParams,
    /// The checkpoint cadence the recording was taken with.
    pub checkpoint_every: u64,
    /// The recorded cells.
    pub cells: Vec<CellRecording>,
}

util::json_struct!(Recording {
    version,
    params,
    checkpoint_every,
    cells
});

/// Why a recording could not be taken or a replay failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The spec's axes do not compose.
    Spec(SpecError),
    /// A component failed to image or restore.
    Snapshot(SnapshotError),
    /// The recording was written by an incompatible build.
    UnsupportedVersion {
        /// The version this build reads.
        expected: u32,
        /// The version found in the file.
        got: u32,
    },
    /// The cell index does not exist in the recording.
    NoSuchCell {
        /// The requested index.
        index: usize,
        /// How many cells the recording holds.
        cells: usize,
    },
    /// The rebuilt workload's traces hash differently than recorded:
    /// the replay would re-derive a different request stream.
    ScheduleMismatch {
        /// The cell's display label.
        cell: String,
        /// The recorded schedule content-address.
        expected: u64,
        /// The content-address of the rebuilt traces.
        got: u64,
    },
    /// The re-executed stream stopped matching the recorded digests —
    /// the replay is not the run that was recorded.
    Divergence {
        /// The cell's display label.
        cell: String,
        /// The request count of the recorded boundary that failed.
        at_requests: u64,
        /// The recorded stream digest.
        expected: u64,
        /// The digest the replay produced.
        got: u64,
    },
    /// The replay completed but its report hashes differently.
    ReportMismatch {
        /// The cell's display label.
        cell: String,
        /// The recorded report fingerprint.
        expected: u64,
        /// The fingerprint of the replayed report.
        got: u64,
    },
    /// The requested window cannot be served.
    BadWindow {
        /// The cell's display label.
        cell: String,
        /// What was wrong with it.
        detail: String,
    },
    /// The cell has no request stream to window into (analytic tier).
    NoRequestStream {
        /// The cell's display label.
        cell: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Spec(e) => write!(f, "{e}"),
            ReplayError::Snapshot(e) => write!(f, "{e}"),
            ReplayError::UnsupportedVersion { expected, got } => write!(
                f,
                "recording version v{got} is not the v{expected} this build reads"
            ),
            ReplayError::NoSuchCell { index, cells } => {
                write!(f, "cell {index} does not exist (recording has {cells})")
            }
            ReplayError::ScheduleMismatch {
                cell,
                expected,
                got,
            } => write!(
                f,
                "{cell}: rebuilt traces hash to {got:#018x}, recording was taken \
                 over {expected:#018x} — different workload build"
            ),
            ReplayError::Divergence {
                cell,
                at_requests,
                expected,
                got,
            } => write!(
                f,
                "{cell}: replay diverged at request {at_requests}: recorded stream \
                 digest {expected:#018x}, replayed {got:#018x}"
            ),
            ReplayError::ReportMismatch {
                cell,
                expected,
                got,
            } => write!(
                f,
                "{cell}: replayed report hashes to {got:#018x}, recorded \
                 {expected:#018x}"
            ),
            ReplayError::BadWindow { cell, detail } => write!(f, "{cell}: bad window: {detail}"),
            ReplayError::NoRequestStream { cell } => write!(
                f,
                "{cell}: analytic-tier cells have no request stream; replay the \
                 whole recording (no --window) to verify them"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SpecError> for ReplayError {
    fn from(e: SpecError) -> Self {
        ReplayError::Spec(e)
    }
}

impl From<SnapshotError> for ReplayError {
    fn from(e: SnapshotError) -> Self {
        ReplayError::Snapshot(e)
    }
}

/// What one window replay (or full verification) did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowReport {
    /// The cell's display label (`system/kernel`).
    pub cell: String,
    /// Request count of the checkpoint the replay resumed from.
    pub resumed_at: u64,
    /// Request count the replay stopped at (slice-granular, so it can
    /// overshoot the window end).
    pub replayed_to: u64,
    /// Recorded checkpoints the window crossed and re-verified.
    pub verified_checkpoints: usize,
    /// Whether the replay ran the cell to completion (and therefore
    /// also re-verified the final stream and report fingerprints).
    pub completed: bool,
}

/// FNV-1a over a report's full JSON — the `report` lane of
/// [`RunFingerprint`].
pub fn report_fingerprint(out: &RunOutcome) -> u64 {
    fnv1a(out.to_json_string().as_bytes())
}

fn cell_label(rec: &CellRecording) -> String {
    format!(
        "{}/{}",
        rec.outcome.system.name(),
        rec.outcome.kernel.label()
    )
}

fn checkpoint_of(
    cur: &ScheduleCursor,
    backend: &dyn MemoryBackend,
) -> Result<Checkpoint, ReplayError> {
    Ok(Checkpoint {
        requests: cur.mem_requests(),
        stream: cur.stream_fingerprint(),
        exec: cur.snapshot(),
        backend: backend.snapshot_state()?,
    })
}

/// Records one `(system, workload)` cell: runs it exactly like the
/// normal runner (bit-identical outcome) while fingerprinting the
/// request stream and checkpointing every ~`checkpoint_every` requests.
///
/// The spec's telemetry knob is stripped for the recorded run: metrics
/// fold into the report JSON, and a *windowed* replay could only ever
/// re-collect a suffix of them, so recorded cells run untelemetried to
/// keep the report fingerprint replayable.
///
/// # Errors
///
/// [`ReplayError::Spec`] when the spec does not compose, and
/// [`ReplayError::Snapshot`] when a backend cannot be imaged.
///
/// # Panics
///
/// Panics if `checkpoint_every` is zero.
pub fn record_cell(
    id: SystemId,
    spec: &SystemSpec,
    workload: &Workload,
    params: &SystemParams,
    checkpoint_every: u64,
) -> Result<CellRecording, ReplayError> {
    assert!(checkpoint_every > 0, "checkpoint cadence must be >= 1");
    let mut spec = spec.clone();
    spec.telemetry = None;
    let built = workload.build_cached(params.agents);
    let armed = spec.faults.is_some();
    let sys = build_system(&spec, params, built.character.footprint)?;
    let mut prep = prepare_phases(sys, &built, params, None);
    let schedule = workloads::cache::traces_fingerprint(&built);

    let (fingerprint, checkpoints, outcome) = match spec.tier {
        FidelityTier::Analytic => {
            let model = ExecModel::for_spec(&spec, &built, params)?;
            let exec = model.exec(&prep.cfg);
            let out = finalize_run(id, prep, &built, None, armed, exec);
            let fingerprint = RunFingerprint {
                schedule,
                requests: 0,
                stream: 0,
                report: report_fingerprint(&out),
            };
            (fingerprint, Vec::new(), out)
        }
        FidelityTier::Accurate => {
            let sched = workloads::cache::schedule_for(&built, prep.cfg.l1, prep.cfg.l2);
            let accel = Accelerator::new(prep.cfg);
            let mut cur = accel.schedule_cursor(prep.exec_start, &sched, prep.sys.backend.as_mut());
            // The request-zero checkpoint anchors every window: restore
            // it and the replay is the straight run.
            let mut checkpoints = vec![checkpoint_of(&cur, prep.sys.backend.as_ref())?];
            let mut next = checkpoint_every;
            while accel.advance_slice(&mut cur, &sched, prep.sys.backend.as_mut()) {
                if cur.mem_requests() >= next {
                    checkpoints.push(checkpoint_of(&cur, prep.sys.backend.as_ref())?);
                    next = cur.mem_requests() + checkpoint_every;
                }
            }
            let requests = cur.mem_requests();
            let stream = cur.stream_fingerprint();
            let exec = accel.finish_schedule(&cur, &sched);
            let out = finalize_run(id, prep, &built, None, armed, exec);
            let fingerprint = RunFingerprint {
                schedule,
                requests,
                stream,
                report: report_fingerprint(&out),
            };
            (fingerprint, checkpoints, out)
        }
    };
    Ok(CellRecording {
        spec,
        workload: *workload,
        fingerprint,
        checkpoints,
        outcome,
    })
}

/// Records every `(system, workload)` pair in workload-major order (the
/// sweep engine's reporting order).
///
/// # Errors
///
/// The first cell that fails to compose or image aborts the recording.
///
/// # Panics
///
/// Panics if `checkpoint_every` is zero.
pub fn record_run(
    systems: &[(SystemId, SystemSpec)],
    workloads: &[Workload],
    params: &SystemParams,
    checkpoint_every: u64,
) -> Result<Recording, ReplayError> {
    let mut cells = Vec::new();
    for w in workloads {
        for (id, spec) in systems {
            cells.push(record_cell(id.clone(), spec, w, params, checkpoint_every)?);
        }
    }
    Ok(Recording {
        version: RECORDING_VERSION,
        params: *params,
        checkpoint_every,
        cells,
    })
}

/// Rebuilds a recorded cell's system and workload and positions a fresh
/// cursor at the start of execution, after proving the rebuilt traces
/// content-address matches the recording.
fn reprepare(
    rec: &CellRecording,
    params: &SystemParams,
    label: &str,
) -> Result<(PreparedRun, std::sync::Arc<accel::sched::MemSchedule>), ReplayError> {
    let built = rec.workload.build_cached(params.agents);
    let got = workloads::cache::traces_fingerprint(&built);
    if got != rec.fingerprint.schedule {
        return Err(ReplayError::ScheduleMismatch {
            cell: label.to_string(),
            expected: rec.fingerprint.schedule,
            got,
        });
    }
    let sys = build_system(&rec.spec, params, built.character.footprint)?;
    let prep = prepare_phases(sys, &built, params, None);
    let sched = workloads::cache::schedule_for(&built, prep.cfg.l1, prep.cfg.l2);
    Ok((prep, sched))
}

/// Replays one cell's request window `[window.start, window.end)`:
/// restores the nearest checkpoint at or before the window start,
/// re-executes slices until the window end (or the end of the run), and
/// verifies the stream digest of every recorded checkpoint crossed. A
/// replay that reaches the end of the run also re-verifies the final
/// stream digest and the report fingerprint.
///
/// # Errors
///
/// [`ReplayError::Divergence`] the moment a recorded digest is not
/// reproduced; [`ReplayError::NoRequestStream`] for analytic-tier
/// cells; [`ReplayError::BadWindow`] for an empty window or one that
/// starts past the recorded stream; plus the composition/restore
/// errors.
pub fn replay_window(
    rec: &CellRecording,
    params: &SystemParams,
    window: Range<u64>,
) -> Result<WindowReport, ReplayError> {
    let label = cell_label(rec);
    if rec.spec.tier == FidelityTier::Analytic {
        return Err(ReplayError::NoRequestStream { cell: label });
    }
    if window.start >= window.end {
        return Err(ReplayError::BadWindow {
            cell: label,
            detail: format!("empty window {}..{}", window.start, window.end),
        });
    }
    if window.start > rec.fingerprint.requests {
        return Err(ReplayError::BadWindow {
            cell: label,
            detail: format!(
                "window starts at request {} but the recorded stream has {}",
                window.start, rec.fingerprint.requests
            ),
        });
    }
    let ckpt = match rec
        .checkpoints
        .iter()
        .take_while(|c| c.requests <= window.start)
        .last()
    {
        Some(c) => c,
        None => {
            return Err(ReplayError::BadWindow {
                cell: label,
                detail: "no checkpoint at or before the window start".to_string(),
            })
        }
    };

    let (mut prep, sched) = reprepare(rec, params, &label)?;
    let accel = Accelerator::new(prep.cfg);
    let mut cur = accel.schedule_cursor(prep.exec_start, &sched, prep.sys.backend.as_mut());
    prep.sys.backend.restore_state(&ckpt.backend)?;
    cur.restore(&ckpt.exec)?;
    if cur.mem_requests() != ckpt.requests || cur.stream_fingerprint() != ckpt.stream {
        // The cursor image disagrees with its own envelope — a tampered
        // or cross-wired checkpoint.
        return Err(ReplayError::Divergence {
            cell: label,
            at_requests: ckpt.requests,
            expected: ckpt.stream,
            got: cur.stream_fingerprint(),
        });
    }
    let resumed_at = ckpt.requests;

    // Recorded checkpoints strictly after the resume point, in order.
    let mut next_i = rec
        .checkpoints
        .iter()
        .position(|c| c.requests > resumed_at)
        .unwrap_or(rec.checkpoints.len());
    let mut verified = 0usize;
    while cur.mem_requests() < window.end
        && accel.advance_slice(&mut cur, &sched, prep.sys.backend.as_mut())
    {
        while next_i < rec.checkpoints.len()
            && rec.checkpoints[next_i].requests <= cur.mem_requests()
        {
            let c = &rec.checkpoints[next_i];
            // Slice boundaries are deterministic, so the replay must
            // land on exactly the recorded request count with exactly
            // the recorded digest; passing over it means the request
            // stream itself changed shape.
            if c.requests < cur.mem_requests() || cur.stream_fingerprint() != c.stream {
                return Err(ReplayError::Divergence {
                    cell: label,
                    at_requests: c.requests,
                    expected: c.stream,
                    got: cur.stream_fingerprint(),
                });
            }
            verified += 1;
            next_i += 1;
        }
    }

    let completed = cur.is_done();
    if completed {
        if cur.mem_requests() != rec.fingerprint.requests
            || cur.stream_fingerprint() != rec.fingerprint.stream
        {
            return Err(ReplayError::Divergence {
                cell: label,
                at_requests: rec.fingerprint.requests,
                expected: rec.fingerprint.stream,
                got: cur.stream_fingerprint(),
            });
        }
        let exec = accel.finish_schedule(&cur, &sched);
        let built = rec.workload.build_cached(params.agents);
        let armed = rec.spec.faults.is_some();
        let out = finalize_run(rec.outcome.system.clone(), prep, &built, None, armed, exec);
        let got = report_fingerprint(&out);
        if got != rec.fingerprint.report {
            return Err(ReplayError::ReportMismatch {
                cell: label,
                expected: rec.fingerprint.report,
                got,
            });
        }
    }
    Ok(WindowReport {
        cell: label,
        resumed_at,
        replayed_to: cur.mem_requests(),
        verified_checkpoints: verified,
        completed,
    })
}

/// Fully re-verifies one cell: accurate-tier cells replay the whole
/// stream from the request-zero checkpoint (crossing and checking every
/// recorded checkpoint, the final stream digest, and the report
/// fingerprint); analytic-tier cells re-run the closed form and compare
/// report fingerprints.
///
/// # Errors
///
/// Same as [`replay_window`], minus the window errors.
pub fn verify_cell(
    rec: &CellRecording,
    params: &SystemParams,
) -> Result<WindowReport, ReplayError> {
    match rec.spec.tier {
        FidelityTier::Accurate => replay_window(rec, params, 0..u64::MAX),
        FidelityTier::Analytic => {
            let label = cell_label(rec);
            let built = rec.workload.build_cached(params.agents);
            let got_sched = workloads::cache::traces_fingerprint(&built);
            if got_sched != rec.fingerprint.schedule {
                return Err(ReplayError::ScheduleMismatch {
                    cell: label,
                    expected: rec.fingerprint.schedule,
                    got: got_sched,
                });
            }
            let armed = rec.spec.faults.is_some();
            let sys = build_system(&rec.spec, params, built.character.footprint)?;
            let prep = prepare_phases(sys, &built, params, None);
            let model = ExecModel::for_spec(&rec.spec, &built, params)?;
            let exec = model.exec(&prep.cfg);
            let out = finalize_run(rec.outcome.system.clone(), prep, &built, None, armed, exec);
            let got = report_fingerprint(&out);
            if got != rec.fingerprint.report {
                return Err(ReplayError::ReportMismatch {
                    cell: label,
                    expected: rec.fingerprint.report,
                    got,
                });
            }
            Ok(WindowReport {
                cell: label,
                resumed_at: 0,
                replayed_to: 0,
                verified_checkpoints: 0,
                completed: true,
            })
        }
    }
}

/// Checks a recording's schema version.
///
/// # Errors
///
/// [`ReplayError::UnsupportedVersion`] when the file was written by an
/// incompatible build.
pub fn check_version(rec: &Recording) -> Result<(), ReplayError> {
    if rec.version != RECORDING_VERSION {
        return Err(ReplayError::UnsupportedVersion {
            expected: RECORDING_VERSION,
            got: rec.version,
        });
    }
    Ok(())
}

/// Fully re-verifies every cell of a recording, in order.
///
/// # Errors
///
/// The first cell that diverges (or fails to compose) aborts the
/// verification with its error.
pub fn verify(rec: &Recording) -> Result<Vec<WindowReport>, ReplayError> {
    check_version(rec)?;
    rec.cells
        .iter()
        .map(|c| verify_cell(c, &rec.params))
        .collect()
}

/// Replays the request window `[window.start, window.end)` of one cell
/// of a recording.
///
/// # Errors
///
/// [`ReplayError::NoSuchCell`] for an out-of-range index, plus
/// everything [`replay_window`] can return.
pub fn replay(
    rec: &Recording,
    cell: usize,
    window: Range<u64>,
) -> Result<WindowReport, ReplayError> {
    check_version(rec)?;
    match rec.cells.get(cell) {
        Some(c) => replay_window(c, &rec.params, window),
        None => Err(ReplayError::NoSuchCell {
            index: cell,
            cells: rec.cells.len(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use workloads::{Kernel, Scale};

    fn small() -> (SystemSpec, Workload, SystemParams) {
        (
            SystemKind::DramLess.spec(),
            Workload::of(Kernel::Gemver, Scale(0.25)),
            SystemParams::default(),
        )
    }

    /// Records `small()` with a cadence that yields several mid-run
    /// checkpoints.
    fn recorded() -> (CellRecording, SystemParams) {
        let (spec, w, params) = small();
        let id = SystemId::Preset(SystemKind::DramLess);
        // First pass learns the stream length, second pass checkpoints
        // at quarter intervals.
        let probe = record_cell(id.clone(), &spec, &w, &params, u64::MAX / 2).unwrap();
        let every = (probe.fingerprint.requests / 4).max(1);
        let rec = record_cell(id, &spec, &w, &params, every).unwrap();
        (rec, params)
    }

    #[test]
    fn recording_is_bit_identical_to_the_straight_run_and_verifies() {
        let (rec, params) = recorded();
        let built = rec.workload.build_cached(params.agents);
        let straight = crate::system::simulate_spec_as(
            SystemId::Preset(SystemKind::DramLess),
            &rec.spec,
            &built,
            &params,
        )
        .unwrap();
        assert_eq!(
            rec.outcome.to_json_string(),
            straight.to_json_string(),
            "recording must not perturb the run"
        );
        assert_eq!(rec.fingerprint.report, report_fingerprint(&straight));
        assert!(
            rec.checkpoints.len() >= 3,
            "want mid-run checkpoints, got {}",
            rec.checkpoints.len()
        );
        let rep = verify_cell(&rec, &params).unwrap();
        assert!(rep.completed);
        assert_eq!(rep.resumed_at, 0);
        assert_eq!(rep.verified_checkpoints, rec.checkpoints.len() - 1);
        assert_eq!(rep.replayed_to, rec.fingerprint.requests);
    }

    #[test]
    fn window_replay_resumes_from_a_mid_run_checkpoint() {
        let (rec, params) = recorded();
        let mid = rec.checkpoints[1].requests;
        let end = rec.checkpoints[2].requests;
        let rep = replay_window(&rec, &params, mid..end).unwrap();
        assert_eq!(
            rep.resumed_at, mid,
            "nearest checkpoint is the window start"
        );
        assert!(rep.replayed_to >= end);
        assert!(rep.verified_checkpoints >= 1);
        // A window *inside* a checkpoint interval resumes from the one
        // before it.
        let rep = replay_window(&rec, &params, (mid + 1)..end).unwrap();
        assert_eq!(rep.resumed_at, mid);
    }

    #[test]
    fn tampered_cursor_image_is_rejected_at_restore() {
        let (mut rec, params) = recorded();
        let mid = rec.checkpoints[1].requests;
        rec.checkpoints[1].stream ^= 1;
        let err = replay_window(&rec, &params, mid..(mid + 1)).unwrap_err();
        assert!(matches!(err, ReplayError::Divergence { .. }), "{err}");
    }

    #[test]
    fn tampered_backend_image_diverges_downstream() {
        let (mut rec, params) = recorded();
        // Swap in the request-zero backend image: the envelope is valid
        // and the cursor restores cleanly, but the device timeline is
        // behind — replay must catch the divergence, not run through.
        let stale = rec.checkpoints[0].backend.clone();
        rec.checkpoints[1].backend = stale;
        let mid = rec.checkpoints[1].requests;
        let err = replay_window(&rec, &params, mid..u64::MAX).unwrap_err();
        assert!(
            matches!(
                err,
                ReplayError::Divergence { .. } | ReplayError::ReportMismatch { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn windows_are_validated() {
        let (rec, params) = recorded();
        assert!(matches!(
            replay_window(&rec, &params, 5..5),
            Err(ReplayError::BadWindow { .. })
        ));
        assert!(matches!(
            replay_window(&rec, &params, (rec.fingerprint.requests + 1)..u64::MAX),
            Err(ReplayError::BadWindow { .. })
        ));
    }

    #[test]
    fn analytic_cells_verify_by_report_and_reject_windows() {
        let (mut spec, w, params) = small();
        spec.tier = FidelityTier::Analytic;
        let id = SystemId::Preset(SystemKind::DramLess);
        let rec = record_cell(id, &spec, &w, &params, 1000).unwrap();
        assert!(rec.checkpoints.is_empty());
        assert_eq!(rec.fingerprint.requests, 0);
        let rep = verify_cell(&rec, &params).unwrap();
        assert!(rep.completed);
        assert!(matches!(
            replay_window(&rec, &params, 0..10),
            Err(ReplayError::NoRequestStream { .. })
        ));
    }

    #[test]
    fn recordings_round_trip_through_json() {
        let (rec, params) = recorded();
        let full = Recording {
            version: RECORDING_VERSION,
            params,
            checkpoint_every: 1000,
            cells: vec![rec],
        };
        let text = full.to_json_string();
        let back = <Recording as util::json::FromJson>::from_json_str(&text).unwrap();
        assert_eq!(back.to_json_string(), text);
        let reports = verify(&back).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].completed);
    }

    #[test]
    fn wrong_version_is_a_typed_error() {
        let params = SystemParams::default();
        let rec = Recording {
            version: RECORDING_VERSION + 1,
            params,
            checkpoint_every: 1,
            cells: Vec::new(),
        };
        assert!(matches!(
            verify(&rec),
            Err(ReplayError::UnsupportedVersion { .. })
        ));
    }
}
