//! Fleet-scale multi-tenant serving over simulated accelerators.
//!
//! The missing layer between the paper's closed kernel batches and the
//! ROADMAP's north star — a production service: open-loop traffic from
//! a [`TenantModel`] population is dispatched by a pluggable load
//! balancer across `N` simulated accelerators, each running the same
//! composed [`SystemSpec`] stack. Requests are priced with the
//! calibrated analytic execution model, then queue against live fleet
//! state the analytic tier cannot see alone:
//!
//! * **Slot queueing** — each accelerator serves a bounded number of
//!   concurrent kernels; excess requests wait ([`Cause::QueueWait`]).
//! * **Partition contention** — a tenant's working set lives in one of
//!   its accelerator's PRAM partitions; concurrent requests hashed to
//!   the same partition serialize ([`Cause::PartitionConflict`]).
//! * **Erase-blocking windows** — accumulated writes on PRAM-bearing
//!   media periodically trigger the 60 ms selective-erase window from
//!   `pram::PramTiming`, stalling the partition
//!   ([`Cause::EraseBlocked`]) — the driver of fleet p99.9.
//!
//! Every per-request latency decomposes into those causes plus service
//! time, conserving by construction, and feeds the PR 9 attribution
//! layer through the `sim-core` probe (tagged per tenant) plus the log2
//! latency histograms per tenant and per QoS class.
//!
//! Determinism: the serving loop is serial and seeded; histogram
//! aggregation fans out over a worker pool in *fixed-size chunks* whose
//! boundaries do not depend on the thread count, and merges partials in
//! submission order — so a fleet report is byte-identical at any
//! thread count and replays entirely from its seed.

use std::collections::BTreeMap;

use sim_core::probe::{AttrScope, Telemetry};
use sim_core::time::Picos;
use util::json::{field, FromJson, Json, JsonError, ToJson};
use util::pool::{self, Pool, Task};
use util::rng::stream_seed;
use util::telemetry::{AttrSummary, Cause, LatencyHistogram, TopRequest};
use workloads::{Kernel, Scale, Workload};

use crate::analytic::ExecModel;
use crate::config::SystemParams;
use crate::spec::{Medium, SpecError, SystemSpec};
use crate::traffic::{ArrivalGen, ArrivalProcess, ClassMix, QosClass, TenantModel, NUM_CLASSES};
use accel::exec::AccelConfig;

/// Stream label for the tenant → partition hash (see `traffic.rs` for
/// the sibling labels; values are frozen).
const STREAM_PART: u64 = 0xF1EE_7007;

/// PRAM partitions per accelerator a tenant's working set can hash to —
/// the paper's per-chip partition count.
const PARTITIONS: usize = 8;

/// Aggregation chunk size. Fixed (never derived from the worker count)
/// so the chunk boundaries — and therefore every partial histogram —
/// are identical at any thread count.
const AGG_CHUNK: usize = 4096;

/// How requests are spread across the fleet's accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BalancerKind {
    /// Rotate through accelerators by arrival ordinal, load-blind.
    RoundRobin,
    /// Dispatch to the accelerator with the shortest slot backlog.
    LeastLoaded,
    /// Least-loaded dispatch plus admission control: past the backlog
    /// limit, best-effort requests are rejected and throughput-class
    /// requests are admitted but counted degraded. Latency-sensitive
    /// requests are always admitted untouched.
    QosAware,
}

util::json_unit_enum!(BalancerKind {
    RoundRobin,
    LeastLoaded,
    QosAware
});

impl BalancerKind {
    /// Every balancer, in serialization order.
    pub const ALL: [BalancerKind; 3] = [
        BalancerKind::RoundRobin,
        BalancerKind::LeastLoaded,
        BalancerKind::QosAware,
    ];

    /// Stable kebab-case label used by the CLI and test names.
    pub fn label(self) -> &'static str {
        match self {
            BalancerKind::RoundRobin => "round-robin",
            BalancerKind::LeastLoaded => "least-loaded",
            BalancerKind::QosAware => "qos-aware",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<BalancerKind> {
        BalancerKind::ALL.into_iter().find(|b| b.label() == label)
    }
}

/// A serving cell: the system composition, fleet shape, tenant
/// population and offered traffic of one fleet run. Serializable — the
/// CLI's `serve --fleet fleet.json` input.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Display name; defaults to the balancer label when absent.
    pub name: Option<String>,
    /// The composition every accelerator in the fleet runs.
    pub system: SystemSpec,
    /// Accelerators in the cell.
    pub accelerators: usize,
    /// Concurrent kernel slots per accelerator.
    pub slots_per_accel: usize,
    /// The dispatch policy.
    pub balancer: BalancerKind,
    /// Tenant population size.
    pub tenants: u32,
    /// Population weights across QoS classes.
    pub class_mix: ClassMix,
    /// The open-loop arrival process.
    pub arrivals: ArrivalProcess,
    /// Kernel pool requests draw from.
    pub kernels: Vec<Kernel>,
    /// Workload scale factor for every kernel.
    pub scale: f64,
    /// Agents (worker lanes) per kernel run — the analytic model's
    /// parallelism knob.
    pub agents: usize,
    /// Master seed: arrivals, tenant population and partition hashes
    /// all derive from it.
    pub seed: u64,
    /// Offered requests; 0 means unbounded (then `duration_ms` must
    /// bound the run).
    pub requests: u64,
    /// Simulated serving horizon in milliseconds; 0 means unbounded
    /// (then `requests` must bound the run). Arrivals past the horizon
    /// are not offered.
    pub duration_ms: u64,
    /// QoS-aware admission limit: the slot backlog (in milliseconds)
    /// beyond which best-effort traffic is rejected and
    /// throughput-class traffic is counted degraded.
    pub admit_ms: f64,
    /// Accumulated writes (KiB) per accelerator that trigger one
    /// erase-blocking window on PRAM-bearing media; 0 disables the
    /// write wall.
    pub erase_every_kb: u64,
}

util::json_struct!(FleetSpec {
    name,
    system,
    accelerators,
    slots_per_accel,
    balancer,
    tenants,
    class_mix,
    arrivals,
    kernels,
    scale,
    agents,
    seed,
    requests,
    duration_ms,
    admit_ms,
    erase_every_kb
});

impl FleetSpec {
    /// A small, fully-populated example cell — the CLI's
    /// `serve --template` output and the documentation starting point.
    pub fn example() -> FleetSpec {
        FleetSpec {
            name: Some("example-cell".to_string()),
            system: crate::config::SystemKind::DramLess.spec(),
            accelerators: 4,
            slots_per_accel: 2,
            balancer: BalancerKind::QosAware,
            tenants: 64,
            class_mix: ClassMix::default(),
            arrivals: ArrivalProcess::Bursty {
                base_per_s: 300.0,
                burst_per_s: 3_000.0,
                mean_burst_ms: 20.0,
                mean_calm_ms: 80.0,
            },
            kernels: vec![Kernel::Trisolv, Kernel::Durbin, Kernel::Jaco1d],
            scale: 0.1,
            agents: 2,
            seed: 42,
            requests: 2_000,
            duration_ms: 0,
            admit_ms: 30.0,
            erase_every_kb: 512,
        }
    }

    /// The cell's display name.
    pub fn display_name(&self) -> &str {
        self.name
            .as_deref()
            .unwrap_or_else(|| self.balancer.label())
    }

    /// Whether the composed medium carries PRAM (and therefore sees
    /// erase-blocking windows).
    pub fn pram_bearing(&self) -> bool {
        matches!(
            self.system.medium,
            Medium::Pram3x | Medium::PramSsd | Medium::NorPram
        )
    }

    /// The pricing parameters for the per-kernel analytic runs.
    pub fn params(&self) -> SystemParams {
        SystemParams {
            agents: self.agents,
            seed: self.seed,
            ..SystemParams::default()
        }
    }

    /// The tenant population this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the population, mix or kernel pool is
    /// invalid.
    pub fn tenant_model(&self) -> Result<TenantModel, SpecError> {
        TenantModel::new(self.seed, self.tenants, &self.class_mix, &self.kernels)
    }

    /// Validates the fleet shape (the system composition is validated
    /// separately when the analytic model is built).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] describing the first offending knob.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.accelerators == 0 {
            return Err(SpecError::new("fleet needs at least one accelerator"));
        }
        if self.slots_per_accel == 0 {
            return Err(SpecError::new("slots_per_accel must be >= 1"));
        }
        if self.agents == 0 {
            return Err(SpecError::new("agents must be >= 1"));
        }
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(SpecError::new(format!(
                "scale must be finite and > 0, got {}",
                self.scale
            )));
        }
        if self.requests == 0 && self.duration_ms == 0 {
            return Err(SpecError::new(
                "either requests or duration_ms must bound the run",
            ));
        }
        if !self.admit_ms.is_finite() || self.admit_ms < 0.0 {
            return Err(SpecError::new(format!(
                "admit_ms must be finite and >= 0, got {}",
                self.admit_ms
            )));
        }
        if self.balancer == BalancerKind::QosAware && self.admit_ms == 0.0 {
            return Err(SpecError::new(
                "the qos-aware balancer needs admit_ms > 0 (a zero limit \
                 rejects every queued best-effort request)",
            ));
        }
        if self.system.faults.is_some() {
            return Err(SpecError::new(
                "fleet serving prices requests analytically and does not \
                 model fault injection; drop the faults knob",
            ));
        }
        self.arrivals.validate()?;
        self.tenant_model().map(|_| ())
    }

    /// The partition (within its accelerator) tenant `tenant`'s working
    /// set hashes to.
    pub fn partition_of(&self, tenant: u32) -> usize {
        (stream_seed(self.seed, &[STREAM_PART, u64::from(tenant)]) % PARTITIONS as u64) as usize
    }
}

/// The analytic price of one kernel from the pool: service time per
/// request and the write volume it contributes to the erase wall.
#[derive(Debug, Clone, Copy)]
struct KernelPrice {
    service_ps: u64,
    write_bytes: u64,
}

/// Prices every kernel in the pool, fanned out over `pool` (results in
/// kernel order — deterministic at any thread count).
fn price_kernels(
    pool: &Pool,
    spec: &FleetSpec,
) -> Result<BTreeMap<Kernel, KernelPrice>, SpecError> {
    let params = spec.params();
    let tasks: Vec<Task<Result<(Kernel, KernelPrice), SpecError>>> = spec
        .kernels
        .iter()
        .map(|&kernel| {
            let system = spec.system.clone();
            let scale = spec.scale;
            let agents = params.agents;
            let task: Task<Result<(Kernel, KernelPrice), SpecError>> = Box::new(move || {
                let w = Workload::of(kernel, Scale(scale));
                let built = w.build(agents);
                let model = ExecModel::for_spec(&system, &built, &params)?;
                let cfg = AccelConfig {
                    pes: params.agents + 1,
                    sample_bucket: Picos::from_us(params.sample_bucket_us),
                    ..Default::default()
                };
                let exec = model.exec(&cfg);
                Ok((
                    kernel,
                    KernelPrice {
                        service_ps: exec.total_time.as_ps().max(1),
                        write_bytes: exec.bytes_to_mem,
                    },
                ))
            });
            task
        })
        .collect();
    pool.run(tasks).into_iter().collect()
}

/// Live state of one simulated accelerator during the serving loop.
struct AccelState {
    /// Per-slot completion times.
    slots: Vec<u64>,
    /// Per-partition completion times.
    partitions: [u64; PARTITIONS],
    /// Write bytes accumulated since the last erase window.
    bytes_since_erase: u64,
    stats: AccelStats,
}

impl AccelState {
    fn new(slots: usize) -> AccelState {
        AccelState {
            slots: vec![0; slots],
            partitions: [0; PARTITIONS],
            bytes_since_erase: 0,
            stats: AccelStats::default(),
        }
    }

    /// The wait a request arriving `now` would see for a slot.
    fn backlog_ps(&self, now: u64) -> u64 {
        self.slots
            .iter()
            .map(|&free| free.saturating_sub(now))
            .min()
            .expect("at least one slot")
    }

    /// The index of the earliest-free slot (ties break low).
    fn best_slot(&self) -> usize {
        let mut best = 0;
        for (i, &free) in self.slots.iter().enumerate() {
            if free < self.slots[best] {
                best = i;
            }
        }
        best
    }
}

/// One served (or rejected) request — the serving loop's output row,
/// consumed by the parallel aggregation phase.
#[derive(Debug, Clone, Copy)]
struct Done {
    tenant: u32,
    class: QosClass,
    latency_ps: u64,
    rejected: bool,
    degraded: bool,
}

/// Per-accelerator serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccelStats {
    /// Requests served (admitted) on this accelerator.
    pub requests: u64,
    /// Busy time: service plus erase windows.
    pub busy_ps: u64,
    /// Total slot-queue wait its requests saw.
    pub queue_wait_ps: u64,
    /// Total partition-conflict wait its requests saw.
    pub partition_wait_ps: u64,
    /// Erase-blocking windows triggered.
    pub erase_windows: u64,
    /// Total time requests spent blocked behind erase windows.
    pub erase_blocked_ps: u64,
}

util::json_struct!(AccelStats {
    requests,
    busy_ps,
    queue_wait_ps,
    partition_wait_ps,
    erase_windows,
    erase_blocked_ps
});

/// Serving totals for one QoS class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassStats {
    /// Requests offered by tenants of this class.
    pub offered: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests served but past the admission limit.
    pub degraded: u64,
    /// Completed-request latency distribution.
    pub latency: LatencyHistogram,
}

/// Serving totals for one tenant (same shape as [`ClassStats`] plus
/// identity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: u32,
    /// The tenant's QoS class.
    pub class: QosClass,
    /// Requests the tenant offered.
    pub offered: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests served degraded.
    pub degraded: u64,
    /// Completed-request latency distribution.
    pub latency: LatencyHistogram,
}

/// Serializes one class/tenant stats row: counts, derived quantiles
/// (p50/p99/p99.9 — re-derived on parse, so round trips stay
/// byte-stable) and the full histogram.
fn stats_row(
    head: Vec<(String, Json)>,
    offered: u64,
    completed: u64,
    rejected: u64,
    degraded: u64,
    latency: &LatencyHistogram,
) -> Json {
    let mut fields = head;
    fields.extend([
        ("offered".to_string(), Json::U64(offered)),
        ("completed".to_string(), Json::U64(completed)),
        ("rejected".to_string(), Json::U64(rejected)),
        ("degraded".to_string(), Json::U64(degraded)),
        ("p50_ns".to_string(), Json::U64(latency.quantile_ns(0.50))),
        ("p99_ns".to_string(), Json::U64(latency.quantile_ns(0.99))),
        ("p999_ns".to_string(), Json::U64(latency.quantile_ns(0.999))),
        ("latency".to_string(), latency.to_json()),
    ]);
    Json::Obj(fields)
}

/// The serialized outcome of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The cell's display name.
    pub name: String,
    /// The dispatch policy that ran.
    pub balancer: BalancerKind,
    /// Accelerators in the cell.
    pub accelerators: usize,
    /// Tenant population size.
    pub tenants: u32,
    /// Requests offered by the arrival process.
    pub offered: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests served degraded.
    pub degraded: u64,
    /// Simulated time of the last completion.
    pub makespan_ps: u64,
    /// Fleet-wide completed-request latency distribution.
    pub aggregate: LatencyHistogram,
    /// Per-class totals, in [`QosClass::ALL`] order (always all three).
    pub classes: Vec<(QosClass, ClassStats)>,
    /// Per-tenant totals, ascending tenant id, tenants that offered
    /// traffic only.
    pub per_tenant: Vec<TenantStats>,
    /// Per-accelerator counters, in accelerator order.
    pub accels: Vec<AccelStats>,
    /// The PR 9 attribution summary over every completed request:
    /// conservation ledger, cause totals, tenant-tagged tail forensics
    /// and the sim-time window series.
    pub attr: AttrSummary,
}

impl FleetReport {
    /// The conservation invariant of a fleet report: class and tenant
    /// breakdowns each partition the fleet aggregate — counts and
    /// histograms both — and the attribution ledger covers exactly the
    /// completed requests. Returns the first discrepancy.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.offered != self.completed + self.rejected {
            return Err(format!(
                "offered {} != completed {} + rejected {}",
                self.offered, self.completed, self.rejected
            ));
        }
        if self.aggregate.count() != self.completed {
            return Err(format!(
                "aggregate histogram holds {} requests, completed {}",
                self.aggregate.count(),
                self.completed
            ));
        }
        let mut class_merge = LatencyHistogram::new();
        for (class, c) in &self.classes {
            if c.offered != c.completed + c.rejected {
                return Err(format!(
                    "class {}: offered != completed + rejected",
                    class.key()
                ));
            }
            if c.latency.count() != c.completed {
                return Err(format!("class {}: histogram vs completed", class.key()));
            }
            class_merge.merge(&c.latency);
        }
        if class_merge != self.aggregate {
            return Err("class histograms do not merge to the aggregate".to_string());
        }
        let mut tenant_merge = LatencyHistogram::new();
        let mut offered = 0;
        for t in &self.per_tenant {
            if t.offered != t.completed + t.rejected {
                return Err(format!(
                    "tenant {}: offered != completed + rejected",
                    t.tenant
                ));
            }
            if t.latency.count() != t.completed {
                return Err(format!("tenant {}: histogram vs completed", t.tenant));
            }
            offered += t.offered;
            tenant_merge.merge(&t.latency);
        }
        if offered != self.offered {
            return Err(format!(
                "tenant offered sum {offered} != fleet offered {}",
                self.offered
            ));
        }
        if tenant_merge != self.aggregate {
            return Err("tenant histograms do not merge to the aggregate".to_string());
        }
        let accel_requests: u64 = self.accels.iter().map(|a| a.requests).sum();
        if accel_requests != self.completed {
            return Err(format!(
                "accelerator request sum {accel_requests} != completed {}",
                self.completed
            ));
        }
        if self.attr.records != self.completed {
            return Err(format!(
                "attribution records {} != completed {}",
                self.attr.records, self.completed
            ));
        }
        if !self.attr.conserves() {
            return Err(format!(
                "attribution does not conserve: {} violations, {} ps attributed vs {} ps wall",
                self.attr.violations, self.attr.attributed_ps, self.attr.wall_ps
            ));
        }
        Ok(())
    }

    /// Whether [`check_conservation`](Self::check_conservation) passes.
    pub fn conserves(&self) -> bool {
        self.check_conservation().is_ok()
    }

    /// Offered requests per simulated second.
    pub fn offered_rate_per_s(&self) -> f64 {
        if self.makespan_ps == 0 {
            return 0.0;
        }
        self.offered as f64 / (Picos::from_ps(self.makespan_ps).as_secs_f64())
    }

    /// The single worst request of the run (the head of the attribution
    /// `top` table); `None` only when nothing completed. Fleet entries
    /// always carry their owning tenant, so this is the starting point
    /// for tail forensics.
    pub fn top_request(&self) -> Option<&TopRequest> {
        self.attr.top.first()
    }

    /// The stats row of `class` (always present).
    pub fn class(&self, class: QosClass) -> &ClassStats {
        &self
            .classes
            .iter()
            .find(|(c, _)| *c == class)
            .expect("all classes present")
            .1
    }
}

impl ToJson for FleetReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("balancer".to_string(), self.balancer.to_json()),
            (
                "accelerators".to_string(),
                Json::U64(self.accelerators as u64),
            ),
            ("tenants".to_string(), Json::U64(u64::from(self.tenants))),
            ("offered".to_string(), Json::U64(self.offered)),
            ("completed".to_string(), Json::U64(self.completed)),
            ("rejected".to_string(), Json::U64(self.rejected)),
            ("degraded".to_string(), Json::U64(self.degraded)),
            ("makespan_ps".to_string(), Json::U64(self.makespan_ps)),
            ("aggregate".to_string(), self.aggregate.to_json()),
            (
                "classes".to_string(),
                Json::Arr(
                    self.classes
                        .iter()
                        .map(|(class, c)| {
                            stats_row(
                                vec![("class".to_string(), Json::Str(class.key().to_string()))],
                                c.offered,
                                c.completed,
                                c.rejected,
                                c.degraded,
                                &c.latency,
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "per_tenant".to_string(),
                Json::Arr(
                    self.per_tenant
                        .iter()
                        .map(|t| {
                            stats_row(
                                vec![
                                    ("tenant".to_string(), Json::U64(u64::from(t.tenant))),
                                    ("class".to_string(), Json::Str(t.class.key().to_string())),
                                ],
                                t.offered,
                                t.completed,
                                t.rejected,
                                t.degraded,
                                &t.latency,
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "accels".to_string(),
                Json::Arr(self.accels.iter().map(ToJson::to_json).collect()),
            ),
            ("latency_attribution".to_string(), self.attr.to_json()),
        ])
    }
}

impl FromJson for FleetReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let class_of = |o: &Json| -> Result<QosClass, JsonError> {
            let key = o
                .get("class")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError::new("stats row missing class"))?;
            QosClass::from_key(key)
                .ok_or_else(|| JsonError::new(format!("unknown QoS class `{key}`")))
        };
        let classes = v
            .get("classes")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("fleet report missing classes"))?
            .iter()
            .map(|o| {
                Ok((
                    class_of(o)?,
                    ClassStats {
                        offered: field(o, "offered")?,
                        completed: field(o, "completed")?,
                        rejected: field(o, "rejected")?,
                        degraded: field(o, "degraded")?,
                        latency: field(o, "latency")?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let per_tenant = v
            .get("per_tenant")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("fleet report missing per_tenant"))?
            .iter()
            .map(|o| {
                Ok(TenantStats {
                    tenant: field(o, "tenant")?,
                    class: class_of(o)?,
                    offered: field(o, "offered")?,
                    completed: field(o, "completed")?,
                    rejected: field(o, "rejected")?,
                    degraded: field(o, "degraded")?,
                    latency: field(o, "latency")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(FleetReport {
            name: field(v, "name")?,
            balancer: field(v, "balancer")?,
            accelerators: field::<u64>(v, "accelerators")? as usize,
            tenants: field(v, "tenants")?,
            offered: field(v, "offered")?,
            completed: field(v, "completed")?,
            rejected: field(v, "rejected")?,
            degraded: field(v, "degraded")?,
            makespan_ps: field(v, "makespan_ps")?,
            aggregate: field(v, "aggregate")?,
            classes,
            per_tenant,
            accels: field(v, "accels")?,
            attr: field(v, "latency_attribution")?,
        })
    }
}

/// Partial tallies of one aggregation chunk.
struct Tally {
    aggregate: LatencyHistogram,
    classes: Vec<ClassStats>,
    tenants: BTreeMap<u32, TenantStats>,
}

/// Tallies one fixed-size chunk of serving-loop output rows.
fn tally_chunk(model: &TenantModel, chunk: &[Done]) -> Tally {
    let mut aggregate = LatencyHistogram::new();
    let mut classes = vec![ClassStats::default(); NUM_CLASSES];
    let mut tenants: BTreeMap<u32, TenantStats> = BTreeMap::new();
    for d in chunk {
        let class_i = d.class as usize;
        let t = tenants.entry(d.tenant).or_insert_with(|| TenantStats {
            tenant: d.tenant,
            class: model.class_of(d.tenant),
            offered: 0,
            completed: 0,
            rejected: 0,
            degraded: 0,
            latency: LatencyHistogram::new(),
        });
        classes[class_i].offered += 1;
        t.offered += 1;
        if d.rejected {
            classes[class_i].rejected += 1;
            t.rejected += 1;
            continue;
        }
        classes[class_i].completed += 1;
        t.completed += 1;
        if d.degraded {
            classes[class_i].degraded += 1;
            t.degraded += 1;
        }
        aggregate.record_ps(d.latency_ps);
        classes[class_i].latency.record_ps(d.latency_ps);
        t.latency.record_ps(d.latency_ps);
    }
    Tally {
        aggregate,
        classes,
        tenants,
    }
}

/// Runs the fleet described by `spec` on the global worker pool.
///
/// # Errors
///
/// Returns [`SpecError`] when the spec is invalid or the system
/// composition has no calibration entry.
pub fn run_fleet(spec: &FleetSpec) -> Result<FleetReport, SpecError> {
    run_fleet_on(pool::global(), spec)
}

/// Runs the fleet described by `spec` on an explicit worker pool.
///
/// The serving loop is serial (fleet state is one global ordered
/// timeline); the pool parallelizes kernel pricing up front and
/// histogram aggregation at the end, both in thread-count-independent
/// work units — the report is byte-identical at any pool width.
///
/// # Errors
///
/// Returns [`SpecError`] when the spec is invalid or the system
/// composition has no calibration entry.
pub fn run_fleet_on(pool: &Pool, spec: &FleetSpec) -> Result<FleetReport, SpecError> {
    spec.validate()?;
    let prices = price_kernels(pool, spec)?;
    let model = spec.tenant_model()?;
    let mut arrivals = ArrivalGen::new(spec.arrivals, spec.seed)?;

    let erase_window_ps = pram::PramTiming::default().t_erase.as_ps();
    let erase_every_bytes = if spec.pram_bearing() {
        spec.erase_every_kb * 1024
    } else {
        0
    };
    let admit_ps = (spec.admit_ms * 1e9).round() as u64;
    let horizon_ps = spec.duration_ms * 1_000_000_000;

    // The serving loop: serial, seeded, one global timeline.
    let telemetry = Telemetry::with_attribution(0);
    let probe = telemetry.probe();
    let mut accels: Vec<AccelState> = (0..spec.accelerators)
        .map(|_| AccelState::new(spec.slots_per_accel))
        .collect();
    let mut done: Vec<Done> = Vec::new();
    let mut makespan_ps = 0u64;
    let mut seq = 0u64;
    loop {
        if spec.requests > 0 && seq >= spec.requests {
            break;
        }
        let at = arrivals.next_arrival();
        if horizon_ps > 0 && at.as_ps() > horizon_ps {
            break;
        }
        let req = model.request(seq, at);
        seq += 1;
        let now = at.as_ps();

        // Dispatch.
        let least_loaded = (0..accels.len())
            .min_by_key(|&i| (accels[i].backlog_ps(now), i))
            .expect("at least one accelerator");
        let (target, backlog) = match spec.balancer {
            BalancerKind::RoundRobin => {
                let i = (req.seq % accels.len() as u64) as usize;
                (i, accels[i].backlog_ps(now))
            }
            BalancerKind::LeastLoaded | BalancerKind::QosAware => {
                (least_loaded, accels[least_loaded].backlog_ps(now))
            }
        };
        let over_limit = spec.balancer == BalancerKind::QosAware && backlog > admit_ps;
        if over_limit && req.class == QosClass::BestEffort {
            done.push(Done {
                tenant: req.tenant,
                class: req.class,
                latency_ps: 0,
                rejected: true,
                degraded: false,
            });
            continue;
        }
        let degraded = over_limit && req.class == QosClass::Throughput;

        // Serve: slot queueing, partition contention, the erase wall,
        // then the calibrated service time.
        let price = prices[&req.kernel];
        let a = &mut accels[target];
        let slot = a.best_slot();
        let start_slot = now.max(a.slots[slot]);
        let partition = spec.partition_of(req.tenant);
        let start_exec = start_slot.max(a.partitions[partition]);
        let erase_block = if erase_every_bytes > 0 {
            a.bytes_since_erase += price.write_bytes;
            if a.bytes_since_erase >= erase_every_bytes {
                a.bytes_since_erase -= erase_every_bytes;
                a.stats.erase_windows += 1;
                erase_window_ps
            } else {
                0
            }
        } else {
            0
        };
        let finish = start_exec + erase_block + price.service_ps;
        a.slots[slot] = finish;
        a.partitions[partition] = finish;
        a.stats.requests += 1;
        a.stats.busy_ps += erase_block + price.service_ps;
        a.stats.queue_wait_ps += start_slot - now;
        a.stats.partition_wait_ps += start_exec - start_slot;
        a.stats.erase_blocked_ps += erase_block;
        makespan_ps = makespan_ps.max(finish);

        // Attribution: tag the probe cursor with the request's identity,
        // then bucket the monotone cursor — conserving by construction.
        probe.attr_tag(AttrScope::Exec, req.seq);
        probe.attr_tag_tenant(req.tenant);
        let mut span = probe.attr_span(at).expect("attribution hub is live");
        span.advance(Cause::QueueWait, Picos::from_ps(start_slot));
        span.advance(Cause::PartitionConflict, Picos::from_ps(start_exec));
        span.advance(
            Cause::EraseBlocked,
            Picos::from_ps(start_exec + erase_block),
        );
        span.advance(Cause::ArrayAccess, Picos::from_ps(finish));
        probe.attr_record("fleet.request", &span);

        done.push(Done {
            tenant: req.tenant,
            class: req.class,
            latency_ps: finish - now,
            rejected: false,
            degraded,
        });
    }
    probe.attr_untag_tenant();

    // Aggregation: fixed-size chunks fan out over the pool; partials
    // merge in submission order, so the result is thread-count
    // independent.
    let tasks: Vec<Task<Tally>> = done
        .chunks(AGG_CHUNK)
        .map(|chunk| {
            let chunk = chunk.to_vec();
            let model = model.clone();
            let task: Task<Tally> = Box::new(move || tally_chunk(&model, &chunk));
            task
        })
        .collect();
    let mut aggregate = LatencyHistogram::new();
    let mut classes = vec![ClassStats::default(); NUM_CLASSES];
    let mut tenants: BTreeMap<u32, TenantStats> = BTreeMap::new();
    for tally in pool.run(tasks) {
        aggregate.merge(&tally.aggregate);
        for (total, part) in classes.iter_mut().zip(tally.classes) {
            total.offered += part.offered;
            total.completed += part.completed;
            total.rejected += part.rejected;
            total.degraded += part.degraded;
            total.latency.merge(&part.latency);
        }
        for (id, part) in tally.tenants {
            let t = tenants.entry(id).or_insert_with(|| TenantStats {
                tenant: id,
                class: part.class,
                offered: 0,
                completed: 0,
                rejected: 0,
                degraded: 0,
                latency: LatencyHistogram::new(),
            });
            t.offered += part.offered;
            t.completed += part.completed;
            t.rejected += part.rejected;
            t.degraded += part.degraded;
            t.latency.merge(&part.latency);
        }
    }

    let completed: u64 = classes.iter().map(|c| c.completed).sum();
    let rejected: u64 = classes.iter().map(|c| c.rejected).sum();
    let degraded: u64 = classes.iter().map(|c| c.degraded).sum();
    Ok(FleetReport {
        name: spec.display_name().to_string(),
        balancer: spec.balancer,
        accelerators: spec.accelerators,
        tenants: spec.tenants,
        offered: seq,
        completed,
        rejected,
        degraded,
        makespan_ps,
        aggregate,
        classes: QosClass::ALL.into_iter().zip(classes).collect(),
        per_tenant: tenants.into_values().collect(),
        accels: accels.into_iter().map(|a| a.stats).collect(),
        attr: telemetry.attribution().expect("attribution hub is live"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> FleetSpec {
        FleetSpec {
            tenants: 16,
            requests: 400,
            accelerators: 2,
            kernels: vec![Kernel::Trisolv, Kernel::Durbin],
            ..FleetSpec::example()
        }
    }

    #[test]
    fn fleet_spec_round_trips_through_json() {
        let spec = FleetSpec::example();
        let text = spec.to_json_pretty();
        let back = FleetSpec::from_json_str(&text).expect("spec parses");
        assert_eq!(back, spec);
        assert_eq!(back.to_json_pretty(), text);
    }

    #[test]
    fn invalid_fleet_shapes_are_rejected() {
        let cases: Vec<(&str, FleetSpec)> = vec![
            (
                "no accelerators",
                FleetSpec {
                    accelerators: 0,
                    ..tiny_spec()
                },
            ),
            (
                "no slots",
                FleetSpec {
                    slots_per_accel: 0,
                    ..tiny_spec()
                },
            ),
            (
                "unbounded",
                FleetSpec {
                    requests: 0,
                    duration_ms: 0,
                    ..tiny_spec()
                },
            ),
            (
                "qos-aware without limit",
                FleetSpec {
                    balancer: BalancerKind::QosAware,
                    admit_ms: 0.0,
                    ..tiny_spec()
                },
            ),
            (
                "faults armed",
                FleetSpec {
                    system: SystemSpec {
                        faults: Some(sim_core::fault::FaultPlan::seeded(1)),
                        ..tiny_spec().system
                    },
                    ..tiny_spec()
                },
            ),
        ];
        for (what, spec) in cases {
            assert!(spec.validate().is_err(), "{what} must be rejected");
        }
    }

    #[test]
    fn a_small_cell_serves_and_conserves() {
        let report = run_fleet(&tiny_spec()).expect("cell serves");
        assert_eq!(report.offered, 400);
        assert!(report.completed > 0);
        report.check_conservation().expect("fleet report conserves");
        // Attribution carries tenant tags on fleet runs.
        assert!(report.attr.top.iter().all(|t| t.tenant.is_some()));
        assert!(report.attr.top.iter().all(|t| t.source == "fleet.request"));
    }

    #[test]
    fn balancers_disagree_but_offer_identical_traffic() {
        let mut reports = Vec::new();
        for balancer in BalancerKind::ALL {
            let report = run_fleet(&FleetSpec {
                balancer,
                ..tiny_spec()
            })
            .expect("cell serves");
            report.check_conservation().expect("conserves");
            reports.push(report);
        }
        // Same seed, same arrivals: offered traffic is identical.
        assert!(reports.windows(2).all(|w| w[0].offered == w[1].offered));
        // Only the QoS-aware balancer may reject, and only best-effort.
        assert_eq!(reports[0].rejected, 0, "round-robin never rejects");
        assert_eq!(reports[1].rejected, 0, "least-loaded never rejects");
        for (class, c) in &reports[2].classes {
            if *class != QosClass::BestEffort {
                assert_eq!(c.rejected, 0, "{} must never be rejected", class.key());
            }
            if *class != QosClass::Throughput {
                assert_eq!(c.degraded, 0, "{} must never be degraded", class.key());
            }
        }
    }

    #[test]
    fn report_round_trips_byte_stable() {
        let report = run_fleet(&tiny_spec()).expect("cell serves");
        let text = report.to_json_pretty();
        let back = FleetReport::from_json_str(&text).expect("report parses");
        assert_eq!(back, report);
        assert_eq!(back.to_json_pretty(), text);
    }

    #[test]
    fn the_write_wall_surfaces_in_the_tail() {
        // A one-slot cell under bursty load with a tight erase budget:
        // erase windows must fire and dominate the worst requests.
        let spec = FleetSpec {
            accelerators: 1,
            slots_per_accel: 1,
            balancer: BalancerKind::RoundRobin,
            erase_every_kb: 64,
            requests: 800,
            ..tiny_spec()
        };
        let report = run_fleet(&spec).expect("cell serves");
        report.check_conservation().expect("conserves");
        let windows: u64 = report.accels.iter().map(|a| a.erase_windows).sum();
        assert!(windows > 0, "the erase wall never fired");
        let worst = &report.attr.top[0];
        assert!(
            worst.causes[Cause::EraseBlocked as usize] > 0,
            "worst request not erase-blocked: {worst:?}"
        );
        // p99.9 reflects the 60 ms window; p50 does not.
        let agg = &report.aggregate;
        assert!(agg.quantile_ns(0.999) >= 60_000_000);
        assert!(agg.quantile_ns(0.50) < agg.quantile_ns(0.999));

        // Disabling the wall removes the cliff under identical traffic.
        let calm = run_fleet(&FleetSpec {
            erase_every_kb: 0,
            ..spec
        })
        .expect("cell serves");
        assert_eq!(calm.offered, report.offered);
        assert!(calm.aggregate.quantile_ns(0.999) < agg.quantile_ns(0.999));
    }

    #[test]
    fn dram_media_never_sees_erase_windows() {
        let spec = FleetSpec {
            system: crate::config::SystemKind::Ideal.spec(),
            erase_every_kb: 64,
            ..tiny_spec()
        };
        assert!(!spec.pram_bearing());
        let report = run_fleet(&spec).expect("cell serves");
        assert!(report.accels.iter().all(|a| a.erase_windows == 0));
    }
}
