#![warn(missing_docs)]

//! # dramless
//!
//! The top-level crate of the DRAM-less reproduction: it composes the
//! substrate crates into the **eleven accelerated-system configurations**
//! the paper evaluates (Table I, plus the "DRAM-less (firmware)" and
//! "ideal" reference points), runs the Polybench-derived workloads on
//! them, and produces the measurements behind every figure:
//!
//! * [`config`] — [`SystemKind`] and tunable [`SystemParams`];
//! * [`system`] — backend construction and the end-to-end [`simulate`]
//!   runner (kernel offload → optional staging → execution → writeback);
//! * [`report`] — [`RunOutcome`] with time decomposition, energy ledger
//!   and derived metrics, plus suite-sweep helpers;
//! * [`sweep`] — the work-stealing sweep engine: every
//!   `config × workload` cell is an independent stealable task,
//!   scheduled cost-descending on [`util::pool`], with byte-identical
//!   output at any thread count (`DRAMLESS_THREADS`).
//!
//! # Quick start
//!
//! ```
//! use dramless::{simulate, SystemKind, SystemParams};
//! use workloads::{Kernel, Scale, Workload};
//!
//! // A non-degenerate footprint so capacity pressure is in play.
//! let w = Workload::of(Kernel::Gemver, Scale(0.8));
//! let dl = simulate(SystemKind::DramLess, &w, &SystemParams::default());
//! let het = simulate(SystemKind::Hetero, &w, &SystemParams::default());
//! assert!(dl.bandwidth() > het.bandwidth());
//! ```

pub mod config;
pub mod report;
pub mod sweep;
pub mod system;

pub use config::{SystemKind, SystemParams};
pub use report::{Breakdown, RunOutcome, SuiteResult};
pub use sweep::{sweep_with_stats, SweepStats};
pub use system::{run_suite, simulate, simulate_dramless_scheduler};
