#![warn(missing_docs)]

//! # dramless
//!
//! The top-level crate of the DRAM-less reproduction: it composes the
//! substrate crates into the **eleven accelerated-system configurations**
//! the paper evaluates (Table I, plus the "DRAM-less (firmware)" and
//! "ideal" reference points), runs the Polybench-derived workloads on
//! them, and produces the measurements behind every figure:
//!
//! * [`config`] — [`SystemKind`] presets, [`SystemId`] report
//!   identities and tunable [`SystemParams`];
//! * [`spec`] — the declarative [`SystemSpec`] composition layer: any
//!   medium × datapath × buffer × control point in the architecture
//!   space, as serializable plain data ([`SystemKind::spec`] names the
//!   twelve presets);
//! * [`system`] — the [`system::build_system`] factory and the single
//!   phase-driven runner every configuration goes through (kernel
//!   offload → optional staging → execution → writeback);
//! * [`report`] — [`RunOutcome`] with time decomposition, energy ledger
//!   and derived metrics, plus suite-sweep helpers;
//! * [`sweep`] — the work-stealing sweep engine: every
//!   `config × workload` cell is an independent stealable task,
//!   scheduled cost-descending on [`util::pool`], with byte-identical
//!   output at any thread count (`DRAMLESS_THREADS`). Custom specs get
//!   the same engine via [`sweep::sweep_specs`].
//!
//! # Quick start
//!
//! ```
//! use dramless::{simulate, SystemKind, SystemParams};
//! use workloads::{Kernel, Scale, Workload};
//!
//! // A non-degenerate footprint so capacity pressure is in play.
//! let w = Workload::of(Kernel::Gemver, Scale(0.8));
//! let dl = simulate(SystemKind::DramLess, &w, &SystemParams::default());
//! let het = simulate(SystemKind::Hetero, &w, &SystemParams::default());
//! assert!(dl.bandwidth() > het.bandwidth());
//! ```
//!
//! # Composing a system the paper never built
//!
//! ```
//! use dramless::{simulate_spec, Buffer, Datapath, SystemKind, SystemParams, SystemSpec};
//! use workloads::{Kernel, Scale, Workload};
//!
//! // Table I's Hetero, but staged over peer-to-peer DMA with TLC flash.
//! let spec = SystemSpec {
//!     name: Some("tlc-p2p".into()),
//!     datapath: Datapath::P2pDma,
//!     medium: dramless::Medium::FlashSsd { cell: flash::CellKind::Tlc },
//!     ..SystemKind::Hetero.spec()
//! };
//! let w = Workload::of(Kernel::Trisolv, Scale(0.1));
//! let out = simulate_spec(&spec, &w, &SystemParams::default()).unwrap();
//! assert!(out.bandwidth() > 0.0);
//! assert_eq!(out.system.name(), "tlc-p2p");
//! ```

pub mod analytic;
pub mod config;
pub mod fleet;
pub mod replay;
pub mod report;
pub mod spec;
pub mod sweep;
pub mod system;
pub mod traffic;

pub use config::{SystemId, SystemKind, SystemParams};
pub use fleet::{run_fleet, run_fleet_on, BalancerKind, FleetReport, FleetSpec};
pub use replay::{CellRecording, Checkpoint, Recording, ReplayError, RunFingerprint, WindowReport};
pub use report::{Breakdown, RunOutcome, SuiteResult};
pub use sim_core::fault::{FaultCounters, FaultPlan};
pub use sim_core::mem::FidelityTier;
pub use spec::{Buffer, Control, Datapath, Medium, SpecError, SystemSpec, TelemetrySpec};
pub use sweep::{sweep_specs, sweep_with_stats, SweepStats};
pub use system::{
    build_system, run_suite, simulate, simulate_built, simulate_dramless_scheduler, simulate_spec,
    simulate_spec_built, simulate_spec_traced, ComposedSystem,
};
pub use traffic::{ArrivalGen, ArrivalProcess, ClassMix, QosClass, Request, TenantModel};
