//! Open-loop multi-tenant traffic generation for fleet serving.
//!
//! The paper evaluates closed batches of kernels; a production fleet
//! sees open-loop arrivals from thousands of tenants instead. This
//! module provides the demand side of that picture:
//!
//! * [`ArrivalProcess`] / [`ArrivalGen`] — seeded open-loop arrival
//!   timestamp generators: Poisson, bursty (a two-state Markov-modulated
//!   Poisson process) and diurnal (sinusoidally rate-modulated, sampled
//!   by thinning). Timestamps are strictly increasing and a pure
//!   function of `(process, seed)`.
//! * [`QosClass`] / [`ClassMix`] — the three service classes tenants
//!   buy, and the population mix across them.
//! * [`TenantModel`] — a deterministic tenant population: every
//!   per-tenant property (class, preferred kernel) and every per-request
//!   draw (owning tenant, kernel) is a stateless [`stream_seed`] hash,
//!   so request `seq` is the same no matter when, in what order, or on
//!   which thread it is asked for.
//!
//! The [`fleet`](crate::fleet) module consumes [`Request`]s from here
//! and prices them against the calibrated analytic execution model.

use sim_core::time::Picos;
use util::json::{field, FromJson, Json, JsonError, ToJson};
use util::rng::{stream_seed, stream_unit, Rng64};
use workloads::Kernel;

use crate::spec::{tagged, variant, SpecError};

/// Number of QoS classes (the length of [`QosClass::ALL`]).
pub const NUM_CLASSES: usize = 3;

/// The service class a tenant bought. Classes change how the QoS-aware
/// balancer treats a request under load; they never change its price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Interactive traffic: dispatched to the least-loaded accelerator,
    /// never rejected, never degraded.
    LatencySensitive,
    /// Bulk traffic with a service objective: admitted even under load
    /// but counted `degraded` once backlog passes the admission limit.
    Throughput,
    /// Scavenger traffic: rejected outright when backlog passes the
    /// admission limit.
    BestEffort,
}

util::json_unit_enum!(QosClass {
    LatencySensitive,
    Throughput,
    BestEffort
});

impl QosClass {
    /// Every class, in serialization order.
    pub const ALL: [QosClass; NUM_CLASSES] = [
        QosClass::LatencySensitive,
        QosClass::Throughput,
        QosClass::BestEffort,
    ];

    /// Stable snake_case key used in report JSON and CLI output.
    pub fn key(self) -> &'static str {
        match self {
            QosClass::LatencySensitive => "latency_sensitive",
            QosClass::Throughput => "throughput",
            QosClass::BestEffort => "best_effort",
        }
    }

    /// Inverse of [`key`](Self::key).
    pub fn from_key(key: &str) -> Option<QosClass> {
        QosClass::ALL.into_iter().find(|c| c.key() == key)
    }
}

/// Population weights across the three QoS classes. Weights are
/// relative, not probabilities — `{1, 2, 1}` and `{0.25, 0.5, 0.25}`
/// describe the same mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMix {
    /// Relative weight of latency-sensitive tenants.
    pub latency_sensitive: f64,
    /// Relative weight of throughput tenants.
    pub throughput: f64,
    /// Relative weight of best-effort tenants.
    pub best_effort: f64,
}

util::json_struct!(ClassMix {
    latency_sensitive,
    throughput,
    best_effort
});

impl Default for ClassMix {
    /// A production-flavored default: a latency-sensitive minority over
    /// a throughput majority with a best-effort scavenger tier.
    fn default() -> Self {
        ClassMix {
            latency_sensitive: 0.2,
            throughput: 0.5,
            best_effort: 0.3,
        }
    }
}

impl ClassMix {
    /// Validates the weights: finite, non-negative, positive sum.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the offending weight.
    pub fn validate(&self) -> Result<(), SpecError> {
        for (name, w) in [
            ("latency_sensitive", self.latency_sensitive),
            ("throughput", self.throughput),
            ("best_effort", self.best_effort),
        ] {
            if !w.is_finite() || w < 0.0 {
                return Err(SpecError::new(format!(
                    "class mix weight {name} must be finite and >= 0, got {w}"
                )));
            }
        }
        if self.latency_sensitive + self.throughput + self.best_effort <= 0.0 {
            return Err(SpecError::new("class mix weights must not all be zero"));
        }
        Ok(())
    }

    /// Cumulative class boundaries in `[0, 1]`: a uniform draw below
    /// the first is latency-sensitive, below the second is throughput,
    /// else best-effort.
    fn thresholds(&self) -> (f64, f64) {
        let total = self.latency_sensitive + self.throughput + self.best_effort;
        let ls = self.latency_sensitive / total;
        (ls, ls + self.throughput / total)
    }
}

/// A seeded open-loop arrival process. All rates are in requests per
/// simulated second; generated timestamps are strictly increasing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate.
    Poisson {
        /// Mean arrival rate.
        rate_per_s: f64,
    },
    /// A two-state Markov-modulated Poisson process: exponentially
    /// distributed calm and burst episodes, each with its own arrival
    /// rate — the open-loop shape that drives requests into the 60 ms
    /// erase-blocking window.
    Bursty {
        /// Arrival rate during calm episodes.
        base_per_s: f64,
        /// Arrival rate during burst episodes.
        burst_per_s: f64,
        /// Mean burst-episode length in milliseconds.
        mean_burst_ms: f64,
        /// Mean calm-episode length in milliseconds.
        mean_calm_ms: f64,
    },
    /// Sinusoidally rate-modulated arrivals (a compressed day/night
    /// cycle), sampled exactly by thinning against the peak rate.
    Diurnal {
        /// Cycle-average arrival rate.
        mean_per_s: f64,
        /// Relative modulation depth in `[0, 1]`: the rate swings
        /// between `mean * (1 - swing)` and `mean * (1 + swing)`.
        swing: f64,
        /// Cycle period in milliseconds.
        period_ms: f64,
    },
}

impl ArrivalProcess {
    /// Short lowercase tag for CLI output and test labels.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }

    /// The long-run mean arrival rate in requests per second.
    pub fn mean_rate_per_s(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            ArrivalProcess::Bursty {
                base_per_s,
                burst_per_s,
                mean_burst_ms,
                mean_calm_ms,
            } => {
                // Time-weighted over the stationary episode lengths.
                (base_per_s * mean_calm_ms + burst_per_s * mean_burst_ms)
                    / (mean_calm_ms + mean_burst_ms)
            }
            ArrivalProcess::Diurnal { mean_per_s, .. } => mean_per_s,
        }
    }

    /// Validates rates and shape parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] describing the offending parameter.
    pub fn validate(&self) -> Result<(), SpecError> {
        let positive = |name: &str, v: f64| -> Result<(), SpecError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(SpecError::new(format!(
                    "arrival parameter {name} must be finite and > 0, got {v}"
                )))
            }
        };
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => positive("rate_per_s", rate_per_s),
            ArrivalProcess::Bursty {
                base_per_s,
                burst_per_s,
                mean_burst_ms,
                mean_calm_ms,
            } => {
                positive("base_per_s", base_per_s)?;
                positive("burst_per_s", burst_per_s)?;
                positive("mean_burst_ms", mean_burst_ms)?;
                positive("mean_calm_ms", mean_calm_ms)
            }
            ArrivalProcess::Diurnal {
                mean_per_s,
                swing,
                period_ms,
            } => {
                positive("mean_per_s", mean_per_s)?;
                positive("period_ms", period_ms)?;
                if !swing.is_finite() || !(0.0..=1.0).contains(&swing) {
                    return Err(SpecError::new(format!(
                        "arrival parameter swing must be in [0, 1], got {swing}"
                    )));
                }
                Ok(())
            }
        }
    }
}

impl ToJson for ArrivalProcess {
    fn to_json(&self) -> Json {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => tagged(
                "Poisson",
                vec![("rate_per_s".to_string(), rate_per_s.to_json())],
            ),
            ArrivalProcess::Bursty {
                base_per_s,
                burst_per_s,
                mean_burst_ms,
                mean_calm_ms,
            } => tagged(
                "Bursty",
                vec![
                    ("base_per_s".to_string(), base_per_s.to_json()),
                    ("burst_per_s".to_string(), burst_per_s.to_json()),
                    ("mean_burst_ms".to_string(), mean_burst_ms.to_json()),
                    ("mean_calm_ms".to_string(), mean_calm_ms.to_json()),
                ],
            ),
            ArrivalProcess::Diurnal {
                mean_per_s,
                swing,
                period_ms,
            } => tagged(
                "Diurnal",
                vec![
                    ("mean_per_s".to_string(), mean_per_s.to_json()),
                    ("swing".to_string(), swing.to_json()),
                    ("period_ms".to_string(), period_ms.to_json()),
                ],
            ),
        }
    }
}

impl FromJson for ArrivalProcess {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, body) = variant("ArrivalProcess", v)?;
        match tag {
            "Poisson" => Ok(ArrivalProcess::Poisson {
                rate_per_s: field(body, "rate_per_s")?,
            }),
            "Bursty" => Ok(ArrivalProcess::Bursty {
                base_per_s: field(body, "base_per_s")?,
                burst_per_s: field(body, "burst_per_s")?,
                mean_burst_ms: field(body, "mean_burst_ms")?,
                mean_calm_ms: field(body, "mean_calm_ms")?,
            }),
            "Diurnal" => Ok(ArrivalProcess::Diurnal {
                mean_per_s: field(body, "mean_per_s")?,
                swing: field(body, "swing")?,
                period_ms: field(body, "period_ms")?,
            }),
            other => Err(JsonError::new(format!(
                "unknown ArrivalProcess variant {other:?}"
            ))),
        }
    }
}

/// Converts an exponential draw in seconds to a strictly positive
/// picosecond step.
fn step_ps(dt_s: f64) -> u64 {
    ((dt_s * 1e12).ceil() as u64).max(1)
}

/// A seeded arrival-timestamp generator for one [`ArrivalProcess`].
///
/// The sequence is a pure function of `(process, seed)`: two generators
/// built alike produce identical timestamps forever. Timestamps are
/// strictly increasing (every step is at least 1 ps).
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: Rng64,
    now_ps: u64,
    /// Bursty state: whether the current episode is a burst, and when
    /// it ends.
    in_burst: bool,
    episode_until_ps: u64,
}

impl ArrivalGen {
    /// A generator starting at simulated time zero.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the process parameters are invalid.
    pub fn new(process: ArrivalProcess, seed: u64) -> Result<Self, SpecError> {
        process.validate()?;
        let mut rng = Rng64::seed(stream_seed(seed, &[STREAM_ARRIVALS]));
        let episode_until_ps = match process {
            ArrivalProcess::Bursty { mean_calm_ms, .. } => {
                // Episodes start calm; the first boundary is one
                // exponential calm residence away.
                step_ps(rng.exp_f64(1_000.0 / mean_calm_ms))
            }
            _ => 0,
        };
        Ok(ArrivalGen {
            process,
            rng,
            now_ps: 0,
            in_burst: false,
            episode_until_ps,
        })
    }

    /// The next arrival timestamp.
    pub fn next_arrival(&mut self) -> Picos {
        match self.process {
            ArrivalProcess::Poisson { rate_per_s } => {
                self.now_ps += step_ps(self.rng.exp_f64(rate_per_s));
            }
            ArrivalProcess::Bursty {
                base_per_s,
                burst_per_s,
                mean_burst_ms,
                mean_calm_ms,
            } => loop {
                let rate = if self.in_burst {
                    burst_per_s
                } else {
                    base_per_s
                };
                let candidate = self.now_ps + step_ps(self.rng.exp_f64(rate));
                if candidate <= self.episode_until_ps {
                    self.now_ps = candidate;
                    break;
                }
                // The candidate falls past the episode boundary: jump to
                // the boundary, flip state, draw the next residence and
                // redraw the arrival — valid because the exponential is
                // memoryless.
                self.now_ps = self.episode_until_ps;
                self.in_burst = !self.in_burst;
                let mean_ms = if self.in_burst {
                    mean_burst_ms
                } else {
                    mean_calm_ms
                };
                self.episode_until_ps = self.now_ps + step_ps(self.rng.exp_f64(1_000.0 / mean_ms));
            },
            ArrivalProcess::Diurnal {
                mean_per_s,
                swing,
                period_ms,
            } => {
                // Thinning: propose at the peak rate, accept with
                // probability rate(t) / peak. Exact for any bounded
                // rate function; proposals only move time forward.
                let peak = mean_per_s * (1.0 + swing);
                loop {
                    self.now_ps += step_ps(self.rng.exp_f64(peak));
                    let t_ms = self.now_ps as f64 / 1e9;
                    let phase = std::f64::consts::TAU * (t_ms / period_ms);
                    let rate = mean_per_s * (1.0 + swing * phase.sin());
                    if self.rng.unit_f64() * peak <= rate {
                        break;
                    }
                }
            }
        }
        Picos::from_ps(self.now_ps)
    }
}

impl Iterator for ArrivalGen {
    type Item = Picos;

    fn next(&mut self) -> Option<Picos> {
        Some(self.next_arrival())
    }
}

/// One offered request: when it arrived, who owns it, and what it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival ordinal (0-based); the attribution index on fleet runs.
    pub seq: u64,
    /// Arrival time.
    pub at: Picos,
    /// Owning tenant, in `0..tenants`.
    pub tenant: u32,
    /// The tenant's service class.
    pub class: QosClass,
    /// The kernel the request runs.
    pub kernel: Kernel,
}

// Stream labels decorrelating the stateless draw families. Values are
// arbitrary but frozen: changing one changes every seeded fleet run.
const STREAM_ARRIVALS: u64 = 0xF1EE_7001;
const STREAM_CLASS: u64 = 0xF1EE_7002;
const STREAM_PREF: u64 = 0xF1EE_7003;
const STREAM_TENANT: u64 = 0xF1EE_7004;
const STREAM_KMIX: u64 = 0xF1EE_7005;
const STREAM_KPICK: u64 = 0xF1EE_7006;

/// Probability that a request runs its tenant's preferred kernel
/// rather than a uniform draw from the pool — gives each tenant a
/// recognizable workload character without per-tenant configuration.
const PREFERRED_KERNEL_P: f64 = 0.7;

/// A deterministic tenant population.
///
/// Every query is a stateless hash of `(seed, labels...)` — no draw
/// order, no shared generator — so per-request properties can be asked
/// for from any thread, in any order, with identical results. This is
/// what lets the fleet aggregate histograms in parallel and stay
/// byte-identical at any worker count.
#[derive(Debug, Clone)]
pub struct TenantModel {
    seed: u64,
    tenants: u32,
    thresholds: (f64, f64),
    kernels: Vec<Kernel>,
}

impl TenantModel {
    /// A population of `tenants` tenants drawing kernels from `kernels`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the population is empty, the kernel
    /// pool is empty, or the mix is invalid.
    pub fn new(
        seed: u64,
        tenants: u32,
        mix: &ClassMix,
        kernels: &[Kernel],
    ) -> Result<Self, SpecError> {
        if tenants == 0 {
            return Err(SpecError::new("fleet needs at least one tenant"));
        }
        if kernels.is_empty() {
            return Err(SpecError::new("fleet kernel pool must not be empty"));
        }
        mix.validate()?;
        Ok(TenantModel {
            seed,
            tenants,
            thresholds: mix.thresholds(),
            kernels: kernels.to_vec(),
        })
    }

    /// Population size.
    pub fn tenants(&self) -> u32 {
        self.tenants
    }

    /// The kernel pool requests draw from.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// The service class tenant `tenant` bought.
    pub fn class_of(&self, tenant: u32) -> QosClass {
        let u = stream_unit(self.seed, &[STREAM_CLASS, u64::from(tenant)]);
        if u < self.thresholds.0 {
            QosClass::LatencySensitive
        } else if u < self.thresholds.1 {
            QosClass::Throughput
        } else {
            QosClass::BestEffort
        }
    }

    /// The kernel tenant `tenant` favors.
    pub fn preferred_kernel(&self, tenant: u32) -> Kernel {
        let i = stream_seed(self.seed, &[STREAM_PREF, u64::from(tenant)]);
        self.kernels[(i % self.kernels.len() as u64) as usize]
    }

    /// The tenant owning arrival `seq` (uniform across the population).
    pub fn tenant_of(&self, seq: u64) -> u32 {
        (stream_seed(self.seed, &[STREAM_TENANT, seq]) % u64::from(self.tenants)) as u32
    }

    /// The kernel arrival `seq` runs: usually its tenant's preferred
    /// kernel, sometimes a uniform draw from the pool.
    pub fn kernel_of(&self, seq: u64, tenant: u32) -> Kernel {
        if stream_unit(self.seed, &[STREAM_KMIX, seq]) < PREFERRED_KERNEL_P {
            self.preferred_kernel(tenant)
        } else {
            let i = stream_seed(self.seed, &[STREAM_KPICK, seq]);
            self.kernels[(i % self.kernels.len() as u64) as usize]
        }
    }

    /// Materializes arrival `seq` at time `at` into a full [`Request`].
    pub fn request(&self, seq: u64, at: Picos) -> Request {
        let tenant = self.tenant_of(seq);
        Request {
            seq,
            at,
            tenant,
            class: self.class_of(tenant),
            kernel: self.kernel_of(seq, tenant),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::for_each_case;

    /// A randomized process of any of the three families.
    fn random_process(rng: &mut Rng64) -> ArrivalProcess {
        match rng.range_u64(0, 2) {
            0 => ArrivalProcess::Poisson {
                rate_per_s: rng.range_f64(200.0, 50_000.0),
            },
            1 => ArrivalProcess::Bursty {
                base_per_s: rng.range_f64(200.0, 5_000.0),
                burst_per_s: rng.range_f64(10_000.0, 80_000.0),
                mean_burst_ms: rng.range_f64(1.0, 20.0),
                mean_calm_ms: rng.range_f64(5.0, 50.0),
            },
            _ => ArrivalProcess::Diurnal {
                mean_per_s: rng.range_f64(500.0, 50_000.0),
                swing: rng.range_f64(0.0, 0.95),
                period_ms: rng.range_f64(5.0, 100.0),
            },
        }
    }

    #[test]
    fn arrivals_are_byte_deterministic_per_seed() {
        for_each_case!(48, |rng| {
            let process = random_process(&mut rng);
            let seed = rng.next_u64();
            let take = |s: u64| -> Vec<u64> {
                ArrivalGen::new(process, s)
                    .unwrap()
                    .take(256)
                    .map(|t| t.as_ps())
                    .collect()
            };
            assert_eq!(
                take(seed),
                take(seed),
                "{}: seed must pin the stream",
                process.label()
            );
            let other = take(seed ^ 0xDEAD_BEEF);
            assert_ne!(
                take(seed),
                other,
                "{}: distinct seeds must decorrelate",
                process.label()
            );
        });
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        for_each_case!(48, |rng| {
            let process = random_process(&mut rng);
            let mut gen = ArrivalGen::new(process, rng.next_u64()).unwrap();
            let mut last = 0u64;
            for _ in 0..2_000 {
                let t = gen.next_arrival().as_ps();
                assert!(t > last, "{}: {t} !> {last}", process.label());
                last = t;
            }
        });
    }

    #[test]
    fn empirical_rate_tracks_the_configured_mean() {
        for_each_case!(24, |rng| {
            let process = random_process(&mut rng);
            let mut gen = ArrivalGen::new(process, rng.next_u64()).unwrap();
            // Enough arrivals to cover many bursty episodes and diurnal
            // cycles, so the empirical mean converges.
            let n = 60_000u64;
            let mut last = Picos::ZERO;
            for _ in 0..n {
                last = gen.next_arrival();
            }
            let measured = n as f64 / last.as_secs_f64();
            let expected = process.mean_rate_per_s();
            let err = (measured - expected).abs() / expected;
            assert!(
                err < 0.15,
                "{}: measured {measured:.0}/s vs configured {expected:.0}/s ({:.0}% off)",
                process.label(),
                err * 100.0
            );
        });
    }

    #[test]
    fn invalid_processes_are_rejected() {
        for bad in [
            ArrivalProcess::Poisson { rate_per_s: 0.0 },
            ArrivalProcess::Poisson {
                rate_per_s: f64::NAN,
            },
            ArrivalProcess::Bursty {
                base_per_s: 100.0,
                burst_per_s: -1.0,
                mean_burst_ms: 5.0,
                mean_calm_ms: 20.0,
            },
            ArrivalProcess::Diurnal {
                mean_per_s: 100.0,
                swing: 1.5,
                period_ms: 50.0,
            },
        ] {
            assert!(ArrivalGen::new(bad, 1).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn arrival_process_round_trips_through_json() {
        let mut rng = Rng64::seed(5);
        for _ in 0..32 {
            let p = random_process(&mut rng);
            let text = p.to_json_pretty();
            let back = ArrivalProcess::from_json_str(&text).unwrap();
            assert_eq!(back, p);
            assert_eq!(back.to_json_pretty(), text);
        }
    }

    #[test]
    fn tenant_draws_are_stateless_and_in_range() {
        for_each_case!(32, |rng| {
            let tenants = rng.range_u64(1, 2_000) as u32;
            let kernels: Vec<Kernel> = Kernel::ALL
                .into_iter()
                .take(rng.range_usize(1, Kernel::ALL.len()))
                .collect();
            let m =
                TenantModel::new(rng.next_u64(), tenants, &ClassMix::default(), &kernels).unwrap();
            for seq in 0..200u64 {
                let r = m.request(seq, Picos::from_ps(seq));
                assert!(r.tenant < tenants);
                assert!(kernels.contains(&r.kernel));
                assert_eq!(r.class, m.class_of(r.tenant));
                // Stateless: asking again (out of order) is identical.
                assert_eq!(m.request(seq, Picos::from_ps(seq)), r);
            }
        });
    }

    #[test]
    fn class_mix_shapes_the_population() {
        let mix = ClassMix {
            latency_sensitive: 1.0,
            throughput: 2.0,
            best_effort: 1.0,
        };
        let m = TenantModel::new(99, 40_000, &mix, &[Kernel::Trisolv]).unwrap();
        let mut counts = [0u32; NUM_CLASSES];
        for t in 0..m.tenants() {
            counts[QosClass::ALL
                .iter()
                .position(|&c| c == m.class_of(t))
                .unwrap()] += 1;
        }
        let total = m.tenants() as f64;
        for (share, expected) in counts.iter().zip([0.25, 0.5, 0.25]) {
            let share = f64::from(*share) / total;
            assert!(
                (share - expected).abs() < 0.02,
                "class share {share:.3} vs expected {expected}"
            );
        }
    }

    #[test]
    fn degenerate_mixes_are_rejected() {
        let zero = ClassMix {
            latency_sensitive: 0.0,
            throughput: 0.0,
            best_effort: 0.0,
        };
        assert!(zero.validate().is_err());
        let negative = ClassMix {
            latency_sensitive: -0.5,
            ..ClassMix::default()
        };
        assert!(negative.validate().is_err());
        assert!(TenantModel::new(1, 0, &ClassMix::default(), &[Kernel::Lu]).is_err());
        assert!(TenantModel::new(1, 10, &ClassMix::default(), &[]).is_err());
    }

    #[test]
    fn single_class_mix_assigns_everyone_to_it() {
        let mix = ClassMix {
            latency_sensitive: 0.0,
            throughput: 0.0,
            best_effort: 3.0,
        };
        let m = TenantModel::new(4, 500, &mix, &[Kernel::Gemver]).unwrap();
        assert!((0..500).all(|t| m.class_of(t) == QosClass::BestEffort));
    }

    #[test]
    fn qos_class_keys_round_trip() {
        for c in QosClass::ALL {
            assert_eq!(QosClass::from_key(c.key()), Some(c));
        }
        assert_eq!(QosClass::from_key("nope"), None);
    }
}
