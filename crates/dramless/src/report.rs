//! Run outcomes and derived metrics.

use crate::config::{SystemId, SystemKind};
use accel::exec::ExecReport;
use sim_core::energy::{EnergyBook, Joules};
use sim_core::fault::FaultCounters;
use sim_core::probe::AttrSummary;
use sim_core::time::Picos;
use util::json::{field, FromJson, Json, JsonError, ToJson};
use util::telemetry::MetricSet;
use workloads::Kernel;

/// Execution-time decomposition (the Fig. 16 stack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Kernel offload: image transfer + agent scheduling.
    pub offload: Picos,
    /// Staging input data into the accelerator (heterogeneous only).
    pub staging_in: Picos,
    /// PE compute time (summed over agents, then normalized by agents so
    /// it composes with wall-clock phases).
    pub compute: Picos,
    /// PE memory-stall time (same normalization).
    pub memory: Picos,
    /// Writing results back to external storage (heterogeneous only).
    pub staging_out: Picos,
}

util::json_struct!(Breakdown {
    offload,
    staging_in,
    compute,
    memory,
    staging_out
});

impl Breakdown {
    /// Total decomposed time.
    pub fn total(&self) -> Picos {
        self.offload + self.staging_in + self.compute + self.memory + self.staging_out
    }

    /// Fractions in Fig. 16 stack order: offload, staging-in, compute,
    /// memory, staging-out.
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total().as_ps() as f64;
        if t == 0.0 {
            return [0.0; 5];
        }
        [
            self.offload.as_ps() as f64 / t,
            self.staging_in.as_ps() as f64 / t,
            self.compute.as_ps() as f64 / t,
            self.memory.as_ps() as f64 / t,
            self.staging_out.as_ps() as f64 / t,
        ]
    }
}

/// The complete result of simulating one workload on one configuration.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Which system ran: a Table I preset, or a custom spec's name.
    pub system: SystemId,
    /// Which kernel ran.
    pub kernel: Kernel,
    /// End-to-end wall-clock time (offload + staging + execution +
    /// final writeback).
    pub total_time: Picos,
    /// Bytes the kernel exchanged with its data store during execution.
    pub data_bytes: u64,
    /// The execution-phase report (IPC/power series and cache stats).
    pub exec: ExecReport,
    /// Time decomposition.
    pub breakdown: Breakdown,
    /// Merged energy ledger across every component.
    pub energy: EnergyBook,
    /// End-of-run telemetry metrics, keyed by component namespace
    /// (`pram.*`, `pe.*`, `cache.*`, …). Empty — and absent from the
    /// JSON report — unless the spec's telemetry knob was on.
    pub metrics: MetricSet,
    /// Fault-injection degradation ledger: what the spec's
    /// [`FaultPlan`](sim_core::fault::FaultPlan) injected and how the
    /// resilience machinery absorbed it. `None` — and absent from the
    /// JSON report — unless the spec carried a fault plan; all-zero
    /// counters under an inert plan still serialize, recording that
    /// injection was armed.
    pub degraded: Option<FaultCounters>,
    /// Per-request latency attribution: cause totals, per-scope
    /// breakdowns, the top-K worst requests and the sim-time windowed
    /// series. `None` — and absent from the JSON report (where it
    /// serializes as `latency_attribution`) — unless the spec's
    /// telemetry knob had `attribution` on.
    pub attr: Option<AttrSummary>,
}

// Hand-written (not `json_struct!`) so the `metrics` key is *omitted*
// when empty and `degraded` when `None`: fault-free, telemetry-off
// reports are byte-identical to reports from before either existed.
impl ToJson for RunOutcome {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("system".to_string(), self.system.to_json()),
            ("kernel".to_string(), self.kernel.to_json()),
            ("total_time".to_string(), self.total_time.to_json()),
            ("data_bytes".to_string(), self.data_bytes.to_json()),
            ("exec".to_string(), self.exec.to_json()),
            ("breakdown".to_string(), self.breakdown.to_json()),
            ("energy".to_string(), self.energy.to_json()),
        ];
        if !self.metrics.is_empty() {
            fields.push(("metrics".to_string(), self.metrics.to_json()));
        }
        if let Some(d) = &self.degraded {
            fields.push(("degraded".to_string(), d.to_json()));
        }
        if let Some(a) = &self.attr {
            fields.push(("latency_attribution".to_string(), a.to_json()));
        }
        Json::Obj(fields)
    }
}

impl FromJson for RunOutcome {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RunOutcome {
            system: field(v, "system")?,
            kernel: field(v, "kernel")?,
            total_time: field(v, "total_time")?,
            data_bytes: field(v, "data_bytes")?,
            exec: field(v, "exec")?,
            breakdown: field(v, "breakdown")?,
            energy: field(v, "energy")?,
            metrics: field::<Option<MetricSet>>(v, "metrics")?.unwrap_or_default(),
            degraded: field(v, "degraded")?,
            attr: field(v, "latency_attribution")?,
        })
    }
}

impl RunOutcome {
    /// Data-processing bandwidth in bytes/second over the whole run —
    /// the Fig. 13/15 metric.
    pub fn bandwidth(&self) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        self.data_bytes as f64 / self.total_time.as_secs_f64()
    }

    /// Total energy.
    pub fn total_energy(&self) -> Joules {
        self.energy.total()
    }

    /// Aggregate IPC over the execution phase.
    pub fn total_ipc(&self) -> f64 {
        self.exec.total_ipc()
    }
}

/// Results of sweeping one workload across many systems (or the whole
/// suite — one entry per `(system, kernel)` pair).
#[derive(Debug, Clone, Default)]
pub struct SuiteResult {
    /// All outcomes, in run order.
    pub outcomes: Vec<RunOutcome>,
}

// Hand-written so the suite-level `metrics` and `degraded` aggregates
// are recomputed on every serialize (sorted keys by `MetricSet`
// construction, so the text is deterministic) and omitted when no cell
// recorded anything.
impl ToJson for SuiteResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![("outcomes".to_string(), self.outcomes.to_json())];
        let agg = self.aggregate_metrics();
        if !agg.is_empty() {
            fields.push(("metrics".to_string(), agg.to_json()));
        }
        if let Some(d) = self.aggregate_degraded() {
            fields.push(("degraded".to_string(), d.to_json()));
        }
        Json::Obj(fields)
    }
}

impl FromJson for SuiteResult {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // The aggregate is derived, never parsed: a round trip re-derives
        // it from the outcomes, keeping serialize(parse(text)) == text.
        Ok(SuiteResult {
            outcomes: field(v, "outcomes")?,
        })
    }
}

impl SuiteResult {
    /// Looks up a preset's outcome.
    pub fn get(&self, system: SystemKind, kernel: Kernel) -> Option<&RunOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.system == system && o.kernel == kernel)
    }

    /// Looks up any outcome — preset or custom — by its report name.
    pub fn get_named(&self, system: &str, kernel: Kernel) -> Option<&RunOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.system.name() == system && o.kernel == kernel)
    }

    /// Bandwidth of `(system, kernel)` normalized to `baseline` on the
    /// same kernel — how Fig. 15 reports its bars. `None` when either
    /// outcome is missing from the suite (a partial sweep degrades
    /// gracefully instead of aborting).
    pub fn normalized_bandwidth(
        &self,
        system: SystemKind,
        baseline: SystemKind,
        kernel: Kernel,
    ) -> Option<f64> {
        let s = self.get(system, kernel)?;
        let b = self.get(baseline, kernel)?;
        Some(s.bandwidth() / b.bandwidth())
    }

    /// Geometric mean of normalized bandwidth across every kernel present
    /// for both systems.
    pub fn mean_normalized_bandwidth(&self, system: SystemKind, baseline: SystemKind) -> f64 {
        let mut acc = 0.0;
        let mut n = 0u32;
        for o in &self.outcomes {
            if o.system == system {
                if let Some(b) = self.get(baseline, o.kernel) {
                    acc += (o.bandwidth() / b.bandwidth()).ln();
                    n += 1;
                }
            }
        }
        assert!(
            n > 0,
            "no overlapping kernels between {system} and {baseline}"
        );
        (acc / n as f64).exp()
    }

    /// Mean energy of `system` relative to `baseline` (Fig. 17 style).
    pub fn mean_relative_energy(&self, system: SystemKind, baseline: SystemKind) -> f64 {
        let mut acc = 0.0;
        let mut n = 0u32;
        for o in &self.outcomes {
            if o.system == system {
                if let Some(b) = self.get(baseline, o.kernel) {
                    let rel =
                        o.total_energy().as_j() / b.total_energy().as_j().max(f64::MIN_POSITIVE);
                    acc += rel.ln();
                    n += 1;
                }
            }
        }
        assert!(
            n > 0,
            "no overlapping kernels between {system} and {baseline}"
        );
        (acc / n as f64).exp()
    }

    /// Merges every outcome's telemetry metrics into one suite-wide set:
    /// counters and latency histograms accumulate across cells, gauges
    /// sum. Empty when telemetry was off everywhere.
    pub fn aggregate_metrics(&self) -> MetricSet {
        let mut agg = MetricSet::new();
        for o in &self.outcomes {
            agg.merge(&o.metrics);
        }
        agg
    }

    /// Sums every outcome's degradation ledger. `None` when fault
    /// injection was armed in no cell.
    pub fn aggregate_degraded(&self) -> Option<FaultCounters> {
        let mut agg: Option<FaultCounters> = None;
        for o in &self.outcomes {
            if let Some(d) = &o.degraded {
                agg.get_or_insert_with(FaultCounters::default).merge(d);
            }
        }
        agg
    }

    /// Serializes to pretty JSON for machine-readable experiment records.
    pub fn to_json(&self) -> String {
        util::json::ToJson::to_json_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = Breakdown {
            offload: Picos::from_us(1),
            staging_in: Picos::from_us(4),
            compute: Picos::from_us(3),
            memory: Picos::from_us(2),
            staging_out: Picos::from_us(10),
        };
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[4] - 0.5).abs() < 1e-12);
        assert_eq!(b.total(), Picos::from_us(20));
    }

    #[test]
    fn empty_breakdown_is_safe() {
        assert_eq!(Breakdown::default().fractions(), [0.0; 5]);
    }
}
