//! System composition and the end-to-end runner.
//!
//! [`build_system`] turns a declarative [`SystemSpec`] into a
//! [`ComposedSystem`] — an execution-phase memory backend plus the
//! optional bulk-staging machinery — and [`simulate_spec_built`] (or the
//! preset wrappers [`simulate`]/[`simulate_built`]/
//! [`simulate_dramless_scheduler`]) plays a workload through the
//! Figure 5/9 protocol. Every configuration, Table I preset or custom,
//! runs through the same four phases:
//!
//! 1. **Offload** — the host packs a kernel image (`packData`), pushes it
//!    over PCIe (`pushData`), and the server unpacks and schedules it;
//! 2. **Staging in** — staged datapaths (host-mediated or P2P DMA) move
//!    the input data from the external device into the accelerator DRAM,
//!    once per capacity round; integrated designs already hold the data
//!    in their storage medium ("a common practice in prior research" —
//!    data is initialized in place before the run);
//! 3. **Execution** — the agent PEs replay their traces against the
//!    configuration's memory backend;
//! 4. **Staging out** — staged datapaths write results back.

use crate::config::{SystemId, SystemKind, SystemParams};
use crate::report::{Breakdown, RunOutcome};
use crate::spec::{Buffer, Control, Datapath, Medium, SpecError, SystemSpec, TelemetrySpec};
use accel::exec::{AccelConfig, Accelerator, ExecReport};
use accel::kernel::{KernelImage, Segment};
use flash::{FlashDevice, FlashGeometry, FlashTiming};
use host::stack::HostStackParams;
use host::staging::Stager;
use host::{PcieLink, StagingPath};
use pram_ctrl::{FirmwareController, PramController, SchedulerKind};
use sim_core::energy::{EnergyBook, Watts};
use sim_core::fault::{FaultCounters, FaultPlan};
use sim_core::mem::{Access, MemoryBackend};
use sim_core::probe::{AttrScope, Probe, Telemetry};
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::time::Picos;
use storage::cache::PageStore;
use storage::dram::DramParams;
use storage::optane::PramSsdParams;
use storage::ssd::SsdParams;
use storage::{CachedStore, DramModel, NorPram, PramSsd};
use util::bytes::Bytes;
use util::telemetry::{MetricSet, TraceEvent};
use workloads::suite::BuiltWorkload;
use workloads::Workload;

/// Adapts any byte-addressable backend to the page interface used by the
/// "PAGE-buffer"-style configurations: all I/O moves whole pages through
/// the DRAM buffer, even when the underlying medium could serve bytes.
pub struct PageAdapter {
    inner: Box<dyn MemoryBackend>,
    page_bytes: u32,
}

impl std::fmt::Debug for PageAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageAdapter")
            .field("inner", &self.inner.label())
            .field("page_bytes", &self.page_bytes)
            .finish()
    }
}

impl PageAdapter {
    /// Wraps `inner` behind `page_bytes` pages.
    pub fn new(inner: Box<dyn MemoryBackend>, page_bytes: u32) -> Self {
        PageAdapter { inner, page_bytes }
    }
}

/// Image tag for [`PageAdapter`] snapshots.
const ADAPTER_KIND: &str = "dramless/page-adapter";
/// Schema version of [`ADAPTER_KIND`] images.
const ADAPTER_VERSION: u32 = 1;

impl PageStore for PageAdapter {
    fn page_bytes(&self) -> u32 {
        self.page_bytes
    }

    fn store_snapshot(&self) -> Result<StateImage, SnapshotError> {
        use util::json::ToJson;
        let data = util::json::Json::Obj(vec![
            ("page_bytes".to_string(), self.page_bytes.to_json()),
            ("inner".to_string(), self.inner.snapshot_state()?.to_json()),
        ]);
        Ok(StateImage::new(ADAPTER_KIND, ADAPTER_VERSION, data))
    }

    fn store_restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        use util::json::field;
        let data = image.expect(ADAPTER_KIND, ADAPTER_VERSION)?;
        let m = |e| SnapshotError::malformed(ADAPTER_KIND, e);
        let page_bytes: u32 = field(data, "page_bytes").map_err(m)?;
        if page_bytes != self.page_bytes {
            return Err(SnapshotError::shape(
                ADAPTER_KIND,
                "image was recorded under a different page size",
            ));
        }
        let inner: StateImage = field(data, "inner").map_err(m)?;
        self.inner.restore_state(&inner)
    }

    fn fetch_page(&mut self, at: Picos, page: u64) -> Access {
        self.inner
            .read(at, page * self.page_bytes as u64, self.page_bytes)
    }

    fn store_page(&mut self, at: Picos, page: u64) -> Access {
        self.inner
            .write(at, page * self.page_bytes as u64, self.page_bytes)
    }

    fn store_energy(&self) -> EnergyBook {
        self.inner.energy()
    }

    fn store_label(&self) -> &'static str {
        "page-buffer"
    }

    fn set_probe(&mut self, probe: Probe) {
        self.inner.set_probe(probe);
    }

    fn collect_metrics(&self, out: &mut MetricSet) {
        self.inner.collect_metrics(out);
    }

    fn collect_faults(&self, out: &mut FaultCounters) {
        self.inner.collect_faults(out);
    }
}

/// The staged execution-phase store: the accelerator's internal DRAM
/// acts as a page cache over the external device, with every miss
/// crossing the staging path (host-mediated software stack for *Hetero*,
/// peer-to-peer DMA for *Heterodirect*). This is where the paper's
/// "SSD access requests generated by computation kernels introduce many
/// software interventions at the host side" materializes.
pub struct HeteroStore {
    stager: Stager,
    ssd: Box<dyn MemoryBackend>,
    page_bytes: u32,
}

impl std::fmt::Debug for HeteroStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeteroStore")
            .field("path", &self.stager.path().label())
            .field("ssd", &self.ssd.label())
            .field("page_bytes", &self.page_bytes)
            .finish()
    }
}

impl HeteroStore {
    /// Builds the store.
    pub fn new(stager: Stager, ssd: Box<dyn MemoryBackend>, page_bytes: u32) -> Self {
        HeteroStore {
            stager,
            ssd,
            page_bytes,
        }
    }
}

/// Image tag for [`HeteroStore`] snapshots.
const HETERO_KIND: &str = "dramless/hetero-store";
/// Schema version of [`HETERO_KIND`] images.
const HETERO_VERSION: u32 = 1;

impl PageStore for HeteroStore {
    fn page_bytes(&self) -> u32 {
        self.page_bytes
    }

    fn store_snapshot(&self) -> Result<StateImage, SnapshotError> {
        use util::json::ToJson;
        let data = util::json::Json::Obj(vec![
            ("page_bytes".to_string(), self.page_bytes.to_json()),
            (
                "stager".to_string(),
                sim_core::Snapshot::snapshot(&self.stager).to_json(),
            ),
            ("ssd".to_string(), self.ssd.snapshot_state()?.to_json()),
        ]);
        Ok(StateImage::new(HETERO_KIND, HETERO_VERSION, data))
    }

    fn store_restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        use util::json::field;
        let data = image.expect(HETERO_KIND, HETERO_VERSION)?;
        let m = |e| SnapshotError::malformed(HETERO_KIND, e);
        let page_bytes: u32 = field(data, "page_bytes").map_err(m)?;
        if page_bytes != self.page_bytes {
            return Err(SnapshotError::shape(
                HETERO_KIND,
                "image was recorded under a different page size",
            ));
        }
        let stager: StateImage = field(data, "stager").map_err(m)?;
        let ssd: StateImage = field(data, "ssd").map_err(m)?;
        sim_core::Snapshot::restore(&mut self.stager, &stager)?;
        self.ssd.restore_state(&ssd)
    }

    fn fetch_page(&mut self, at: Picos, page: u64) -> Access {
        let r = self.stager.stage_in(
            at,
            self.ssd.as_mut(),
            page * self.page_bytes as u64,
            self.page_bytes as u64,
        );
        Access {
            start: at,
            end: r.done,
        }
    }

    fn store_page(&mut self, at: Picos, page: u64) -> Access {
        let r = self.stager.stage_out(
            at,
            self.ssd.as_mut(),
            page * self.page_bytes as u64,
            self.page_bytes as u64,
        );
        Access {
            start: at,
            end: r.done,
        }
    }

    fn store_energy(&self) -> EnergyBook {
        let mut e = self.stager.energy();
        e.merge(&self.ssd.energy());
        e
    }

    fn store_label(&self) -> &'static str {
        self.stager.path().label()
    }

    fn set_probe(&mut self, probe: Probe) {
        self.stager.set_probe(probe.clone());
        self.ssd.set_probe(probe);
    }

    fn collect_metrics(&self, out: &mut MetricSet) {
        self.stager.collect_metrics(out);
        self.ssd.collect_metrics(out);
    }

    fn collect_faults(&self, out: &mut FaultCounters) {
        self.ssd.collect_faults(out);
    }
}

/// The bulk-staging machinery of a staged datapath: phases 2 and 4 move
/// `SystemParams::capacity_pressure`-bounded rounds through this stager
/// against a second instance of the external device.
pub struct StagingPhase {
    /// The staging path (follows the spec's datapath — host-mediated or
    /// peer-to-peer DMA).
    pub stager: Stager,
    /// The external device being staged from/to.
    pub store: Box<dyn MemoryBackend>,
}

/// A runnable composition: what [`build_system`] produces from a
/// [`SystemSpec`] and the single phase-driven runner consumes.
pub struct ComposedSystem {
    /// The execution-phase memory backend the PEs replay against.
    pub backend: Box<dyn MemoryBackend>,
    /// Bulk staging for phases 2/4 (staged datapaths only).
    pub staging: Option<StagingPhase>,
    /// Whether the kernel image is written through the backend during
    /// offload (everything except the direct NOR interface, whose
    /// ~0.5 MB/s 9x-nm PRAM writes would dominate; it keeps images in
    /// controller SRAM).
    pub image_via_backend: bool,
    /// Whether the run pays DRAM refresh/standby power for an internal
    /// buffer (Table I row "Internal DRAM", plus the all-DRAM ideal).
    pub charges_dram_refresh: bool,
}

impl std::fmt::Debug for ComposedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComposedSystem")
            .field("backend", &self.backend.label())
            .field("staged", &self.staging.is_some())
            .field("image_via_backend", &self.image_via_backend)
            .field("charges_dram_refresh", &self.charges_dram_refresh)
            .finish()
    }
}

/// Builds the PRAM subsystem a spec's control axis describes, arming
/// fault injection when the spec carries a plan.
fn build_control(
    control: &Control,
    seed: u64,
    faults: Option<&FaultPlan>,
) -> Box<dyn MemoryBackend> {
    let armed = |ctrl: PramController| match faults {
        Some(plan) => ctrl.with_faults(plan),
        None => ctrl,
    };
    match control {
        Control::HardwareAutomated { scheduler } => {
            Box::new(armed(PramController::paper(*scheduler, seed)))
        }
        Control::Firmware { scheduler, params } => Box::new(FirmwareController::new(
            armed(PramController::paper(*scheduler, seed)),
            *params,
        )),
    }
}

/// Builds one instance of a spec's medium as an externally-attached
/// (staged) device.
fn build_external(
    spec: &SystemSpec,
    params: &SystemParams,
) -> Result<Box<dyn MemoryBackend>, SpecError> {
    match spec.medium {
        Medium::FlashSsd { cell } => {
            // Keep per-byte bandwidth at the Table I level despite the
            // scaled page size.
            let timing = FlashTiming::table1_scaled(cell, params.page_scale_divisor());
            let ssd =
                storage::FlashSsd::with_timing(SsdParams::table1(cell, params.page_bytes), timing);
            Ok(Box::new(match &spec.faults {
                Some(plan) => ssd.with_faults(plan),
                None => ssd,
            }))
        }
        Medium::PramSsd => Ok(Box::new(PramSsd::new(PramSsdParams::default()))),
        Medium::Pram3x => Ok(build_control(
            &spec.control,
            params.seed,
            spec.faults.as_ref(),
        )),
        Medium::NorPram => Ok(Box::new(NorPram::new(Default::default()))),
        Medium::IntegratedFlash { .. } => Err(SpecError::new(
            "IntegratedFlash lives inside the accelerator; use the PageInterface \
             datapath, or stage a FlashSsd instead",
        )),
        Medium::Dram => Err(SpecError::new(
            "Dram is the in-memory ideal; use the DirectLoadStore datapath",
        )),
    }
}

/// Frame count of the internal DRAM cache: the spec's explicit size, or
/// the footprint-pressure-derived default the Table I presets use.
fn cache_frames(
    frames: Option<usize>,
    buffer_bytes: u64,
    unit_bytes: u32,
) -> Result<usize, SpecError> {
    match frames {
        Some(0) => Err(SpecError::new("DramPageCache frames must be >= 1")),
        Some(n) => Ok(n),
        None => Ok((buffer_bytes / unit_bytes as u64).max(4) as usize),
    }
}

/// Composes a runnable system from a declarative spec.
///
/// This is the single factory behind every configuration: the Table I
/// presets ([`SystemKind::spec`]) and anything else the four axes can
/// express. Combinations the composition rules cannot build (flash over
/// direct load/store, a staged datapath with no internal buffer, …)
/// return a typed [`SpecError`] instead of panicking.
///
/// # Errors
///
/// Returns [`SpecError`] when the axes are incompatible.
pub fn build_system(
    spec: &SystemSpec,
    params: &SystemParams,
    footprint: u64,
) -> Result<ComposedSystem, SpecError> {
    let buffer_bytes =
        ((footprint as f64 / params.capacity_pressure) as u64).max(params.page_bytes as u64 * 2);
    let image_via_backend = !matches!(
        (spec.medium, spec.datapath),
        (Medium::NorPram, Datapath::DirectLoadStore)
    );
    let charges_dram_refresh =
        matches!(spec.buffer, Buffer::DramPageCache { .. }) || matches!(spec.medium, Medium::Dram);
    let (backend, staging): (Box<dyn MemoryBackend>, Option<StagingPhase>) = match spec.datapath {
        Datapath::HostMediated | Datapath::P2pDma => {
            let path = match spec.datapath {
                Datapath::HostMediated => StagingPath::HostMediated,
                _ => StagingPath::P2pDma,
            };
            let frames_spec = match spec.buffer {
                Buffer::DramPageCache { frames } => frames,
                Buffer::None => {
                    return Err(SpecError::new(format!(
                        "a staged datapath ({}) demand-pages through an internal \
                         buffer; set buffer to DramPageCache",
                        spec.datapath.label()
                    )))
                }
            };
            // Demand-paging granularity: half a flash page — small
            // enough that the scaled DRAM buffer holds a meaningful
            // number of frames, large enough to amortize per-request
            // software cost.
            let unit = params.page_bytes / 2;
            let store = HeteroStore::new(
                Stager::with_stack(path, HostStackParams::with_request_bytes(unit as u64)),
                build_external(spec, params)?,
                unit,
            );
            let frames = cache_frames(frames_spec, buffer_bytes, unit)?;
            // Bulk staging follows the spec's datapath too (phases 2/4),
            // with the large sequential request size of a preload.
            let staging = StagingPhase {
                stager: Stager::with_stack(
                    path,
                    HostStackParams::with_request_bytes(8 * params.page_bytes as u64),
                ),
                store: build_external(spec, params)?,
            };
            (
                Box::new(CachedStore::new(store, DramParams::default(), frames)),
                Some(staging),
            )
        }
        Datapath::PageInterface => {
            let frames_spec = match spec.buffer {
                Buffer::DramPageCache { frames } => frames,
                Buffer::None => {
                    return Err(SpecError::new(
                        "the PageInterface datapath lands whole pages in an internal \
                         buffer; set buffer to DramPageCache",
                    ))
                }
            };
            let frames = cache_frames(frames_spec, buffer_bytes, params.page_bytes)?;
            let backend: Box<dyn MemoryBackend> = match spec.medium {
                Medium::IntegratedFlash { cell } => {
                    let timing = FlashTiming::table1_scaled(cell, params.page_scale_divisor());
                    let dev = FlashDevice::with_timing(
                        FlashGeometry::accelerator(params.page_bytes),
                        cell,
                        timing,
                    );
                    Box::new(CachedStore::new(dev, DramParams::default(), frames))
                }
                Medium::Pram3x => {
                    let adapter = PageAdapter::new(
                        build_control(&spec.control, params.seed, spec.faults.as_ref()),
                        params.page_bytes,
                    );
                    Box::new(CachedStore::new(adapter, DramParams::default(), frames))
                }
                Medium::NorPram => {
                    let adapter = PageAdapter::new(
                        Box::new(NorPram::new(Default::default())),
                        params.page_bytes,
                    );
                    Box::new(CachedStore::new(adapter, DramParams::default(), frames))
                }
                Medium::PramSsd => {
                    let adapter = PageAdapter::new(
                        Box::new(PramSsd::new(PramSsdParams::default())),
                        params.page_bytes,
                    );
                    Box::new(CachedStore::new(adapter, DramParams::default(), frames))
                }
                Medium::FlashSsd { .. } => {
                    return Err(SpecError::new(
                        "FlashSsd is an external block device; reach it over a staged \
                         datapath (HostMediated or P2pDma), or use IntegratedFlash \
                         for in-accelerator flash",
                    ))
                }
                Medium::Dram => {
                    return Err(SpecError::new(
                        "Dram needs no page interface; use the DirectLoadStore datapath",
                    ))
                }
            };
            (backend, None)
        }
        Datapath::DirectLoadStore => {
            if !matches!(spec.buffer, Buffer::None) {
                return Err(SpecError::new(
                    "the DirectLoadStore datapath serves the medium's latency \
                     directly; set buffer to None",
                ));
            }
            let backend: Box<dyn MemoryBackend> = match spec.medium {
                Medium::Pram3x => build_control(&spec.control, params.seed, spec.faults.as_ref()),
                Medium::NorPram => Box::new(NorPram::new(Default::default())),
                Medium::Dram => Box::new(DramModel::new(DramParams {
                    capacity: u64::MAX / 2, // staging rounds model the capacity limit
                    ..Default::default()
                })),
                Medium::FlashSsd { .. } | Medium::IntegratedFlash { .. } => {
                    return Err(SpecError::new(
                        "flash reads whole pages and cannot serve load/store words; \
                         use the PageInterface datapath or a staged FlashSsd",
                    ))
                }
                Medium::PramSsd => {
                    return Err(SpecError::new(
                        "PramSsd is a block device behind an NVMe-style interface; \
                         reach it over a staged datapath (HostMediated or P2pDma)",
                    ))
                }
            };
            (backend, None)
        }
    };
    Ok(ComposedSystem {
        backend,
        staging,
        image_via_backend,
        charges_dram_refresh,
    })
}

/// Models the kernel offload (Figures 9b/10): pack the image, push it
/// over PCIe, unpack and plant boot addresses. Returns when the agents
/// can start.
fn offload(
    params: &SystemParams,
    agents: usize,
    backend: &mut dyn MemoryBackend,
    link: &mut PcieLink,
    image_via_backend: bool,
) -> Picos {
    // packData: one shared segment plus one app segment per agent.
    let mut segments = vec![Segment {
        name: "shared".into(),
        load_addr: 0x0,
        entry: None,
        payload: Bytes::from(vec![0x90u8; params.image_bytes_per_agent as usize / 2]),
    }];
    for a in 0..agents {
        segments.push(Segment {
            name: format!("app{a}"),
            load_addr: 0x1000 + a as u64 * params.image_bytes_per_agent as u64,
            entry: Some(0x1000 + a as u64 * params.image_bytes_per_agent as u64),
            payload: Bytes::from(vec![0x42u8; params.image_bytes_per_agent as usize]),
        });
    }
    let image = KernelImage::pack(segments);
    let wire = image.to_bytes();
    // pushData: PCIe DMA of the image, then an interrupt to the server.
    let dma = link.dma(Picos::ZERO, wire.len() as u64);
    let irq = link.message(dma.end);
    // unpackData: the server loads each segment into the image space.
    let parsed = KernelImage::from_bytes(wire).expect("self-packed image parses");
    let mut t = irq.end;
    if image_via_backend {
        for seg in parsed.segments() {
            // Each segment write is one attributed offload unit.
            backend.probe().attr_tag_next(AttrScope::Offload);
            let a = backend.write(t, seg.load_addr, seg.payload.len() as u32);
            t = a.end;
        }
    } else {
        // The NOR-intf platform keeps images in controller SRAM: its
        // 9x-nm PRAM writes (~0.5 MB/s) would otherwise spend tens of
        // milliseconds per offload. Parsing/copy cost only.
        t += Picos::from_us(parsed.payload_bytes() / 1_000);
    }
    t
}

/// The explicit state handoff between the deterministic preparation
/// phases (1: offload, 2: initial staging) and the execution phase: the
/// composed system with its phase clocks advanced, the offload link's
/// energy ledger, and the accelerator configuration execution will run
/// under.
///
/// Factoring the handoff out of the runner is what lets the
/// record/replay layer re-derive phases 1–2 cheaply on resume (they are
/// pure functions of the spec and workload) and then restore only the
/// execution-phase images over the freshly prepared state.
pub(crate) struct PreparedRun {
    /// The composed system, post-offload and post-stage-in.
    pub(crate) sys: ComposedSystem,
    /// The PCIe link the offload crossed (its energy joins the ledger).
    pub(crate) link: PcieLink,
    /// Phase 1 wall-clock.
    pub(crate) offload_done: Picos,
    /// Phase 2 wall-clock (zero for integrated datapaths).
    pub(crate) staging_in: Picos,
    /// Absolute start time of the execution phase.
    pub(crate) exec_start: Picos,
    /// Internal-buffer capacity derived from footprint pressure.
    pub(crate) buffer_bytes: u64,
    /// The accelerator configuration execution runs under.
    pub(crate) cfg: AccelConfig,
}

/// Phases 1–2 of the runner: probe wiring, kernel offload, and the
/// initial bulk stage-in. Deterministic and cheap relative to
/// execution, which is why resume re-runs them instead of imaging their
/// transient state.
pub(crate) fn prepare_phases(
    mut sys: ComposedSystem,
    built: &BuiltWorkload,
    params: &SystemParams,
    telemetry: Option<&Telemetry>,
) -> PreparedRun {
    let mut link = PcieLink::new(Default::default());

    // Hand live probes to every component before anything runs; the
    // default (telemetry off) leaves every probe disabled at the cost of
    // one `Option` check per instrumentation point.
    if let Some(tel) = telemetry {
        let probe = tel.probe();
        sys.backend.set_probe(probe.clone());
        if let Some(stage) = sys.staging.as_mut() {
            stage.stager.set_probe(probe.clone());
            stage.store.set_probe(probe);
        }
    }

    // Phase 1: kernel offload.
    let offload_done = offload(
        params,
        built.traces.len(),
        sys.backend.as_mut(),
        &mut link,
        sys.image_via_backend,
    );

    // Phase 2: initial staging (staged datapaths only): the host
    // preloads as much input as the accelerator DRAM holds (Fig. 5a).
    // The rest of the dataset demand-pages through the same staging path
    // *during* execution — the capacity pressure that motivates the
    // paper.
    let buffer_bytes = (built.character.footprint as f64 / params.capacity_pressure) as u64;
    let mut staging_in = Picos::ZERO;
    let mut exec_start = offload_done;
    if let Some(stage) = sys.staging.as_mut() {
        let bytes = built.character.bytes_in.max(1).min(buffer_bytes.max(4096));
        let r = stage
            .stager
            .stage_in(offload_done, stage.store.as_mut(), 0, bytes);
        staging_in = r.done - offload_done;
        exec_start = r.done;
    }

    let cfg = AccelConfig {
        pes: params.agents + 1,
        sample_bucket: Picos::from_us(params.sample_bucket_us),
        ..Default::default()
    };
    PreparedRun {
        sys,
        link,
        offload_done,
        staging_in,
        exec_start,
        buffer_bytes,
        cfg,
    }
}

/// The one phase-driven runner every configuration goes through:
/// offload → stage-in → execution → stage-out, with the energy ledger
/// merged across all components.
fn run_composed(
    id: SystemId,
    sys: ComposedSystem,
    built: &BuiltWorkload,
    params: &SystemParams,
    telemetry: Option<&Telemetry>,
    faults_armed: bool,
    analytic: Option<&crate::analytic::ExecModel>,
) -> RunOutcome {
    let mut prep = prepare_phases(sys, built, params, telemetry);

    // Phase 3: execution. (The engine starts its own clock at zero; the
    // phases compose as wall-clock segments.) The analytic tier swaps
    // only this phase: offload and staging above already ran the real
    // models, so the closed form replaces exactly the per-request work.
    let exec = match analytic {
        Some(model) => model.exec(&prep.cfg),
        None => {
            // Schedule-driven replay: the backend request stream is a
            // pure function of (traces, cache geometry), so the sweep
            // derives it once per workload (process-wide memoized) and
            // replays it here through the real cycle-level backend —
            // bit-identical reports, no per-cell trace decode or cache
            // simulation.
            let sched = workloads::cache::schedule_for(built, prep.cfg.l1, prep.cfg.l2);
            let mut accel = Accelerator::new(prep.cfg);
            if let Some(tel) = telemetry {
                accel.set_probe(tel.probe());
            }
            accel.run_schedule_at(prep.exec_start, &sched, prep.sys.backend.as_mut())
        }
    };

    finalize_run(id, prep, built, telemetry, faults_armed, exec)
}

/// Phase 4 plus the ledger merge: stages results out, folds energy,
/// metrics and fault counters across every component, and assembles the
/// [`RunOutcome`]. Consumes the prepared state — after this the run is
/// fully accounted.
pub(crate) fn finalize_run(
    id: SystemId,
    mut prep: PreparedRun,
    built: &BuiltWorkload,
    telemetry: Option<&Telemetry>,
    faults_armed: bool,
    exec: ExecReport,
) -> RunOutcome {
    let sys = &mut prep.sys;
    let link = &prep.link;
    let offload_done = prep.offload_done;
    let staging_in = prep.staging_in;
    let exec_start = prep.exec_start;
    let buffer_bytes = prep.buffer_bytes;

    // Phase 4: staging out the final results (dirty pages evicted during
    // execution already crossed the path inside the backend).
    let mut staging_out = Picos::ZERO;
    if let Some(stage) = sys.staging.as_mut() {
        let bytes = built.character.bytes_out.max(1).min(buffer_bytes.max(4096));
        let r =
            stage
                .stager
                .stage_out(exec_start + exec.total_time, stage.store.as_mut(), 0, bytes);
        staging_out = r.done - (exec_start + exec.total_time);
    }

    let total_time = offload_done + staging_in + exec.total_time + staging_out;

    // Per-agent normalization so PE-time sums compose with wall-clock.
    let agents = built.traces.len() as u64;
    let breakdown = Breakdown {
        offload: offload_done,
        staging_in,
        compute: exec.compute_time / agents,
        memory: exec.stall_time / agents,
        staging_out,
    };

    // Energy: PEs + backend + staging path + PCIe offload link. The
    // backend's owned book seeds the merge so `exec.energy` (which stays
    // inside the outcome) never has to be cloned.
    let mut energy = sys.backend.energy();
    energy.merge(&exec.energy);
    energy.merge(link.energy());
    if let Some(stage) = sys.staging.as_ref() {
        energy.merge(&stage.stager.energy());
        energy.merge(&stage.store.energy());
        // Device-active power while the SSD streams, and the platform
        // idling while it waits on data movement — the standby waste the
        // paper's Fig. 17 attributes to conventional systems.
        let staging = staging_in + staging_out;
        energy.charge("ssd.active", Watts::from_w(3.0) * staging);
        energy.charge("platform.idle", Watts::from_w(1.0) * staging);
    }
    if sys.charges_dram_refresh {
        // DRAM refresh/standby for the 1 GB-class internal buffer.
        energy.charge("dram.refresh", Watts::from_w(0.5) * total_time);
    }

    let data_bytes = built.character.loads * 8 + built.character.stores * 8;

    // Fold each component's end-of-run counters into the hub; the caller
    // drains the hub once (`Telemetry::finish`) and attaches the merged
    // set to the outcome.
    if let Some(tel) = telemetry {
        let mut m = MetricSet::new();
        sys.backend.collect_metrics(&mut m);
        if let Some(stage) = sys.staging.as_ref() {
            stage.stager.collect_metrics(&mut m);
            stage.store.collect_metrics(&mut m);
        }
        exec.collect_metrics(&mut m);
        tel.merge_metrics(&m);
    }

    // Degradation ledger: collected whenever the spec armed a fault
    // plan, even if every counter stayed zero (recording that injection
    // was on distinguishes "no faults fired" from "not armed").
    let degraded = if faults_armed {
        let mut d = FaultCounters::default();
        sys.backend.collect_faults(&mut d);
        if let Some(stage) = sys.staging.as_ref() {
            stage.store.collect_faults(&mut d);
        }
        Some(d)
    } else {
        None
    };

    RunOutcome {
        system: id,
        kernel: built.workload.kernel,
        total_time,
        data_bytes,
        exec,
        breakdown,
        energy,
        metrics: MetricSet::new(),
        degraded,
        attr: None,
    }
}

/// Runs one cell, honouring the spec's telemetry knob, and returns the
/// outcome plus the (possibly empty) event trace.
fn run_cell(
    id: SystemId,
    spec: &SystemSpec,
    built: &BuiltWorkload,
    params: &SystemParams,
) -> Result<(RunOutcome, Vec<TraceEvent>), SpecError> {
    let model = match spec.tier {
        sim_core::mem::FidelityTier::Accurate => None,
        sim_core::mem::FidelityTier::Analytic => {
            Some(crate::analytic::ExecModel::for_spec(spec, built, params)?)
        }
    };
    run_cell_with_model(id, spec, built, params, model.as_ref())
}

/// The shared tail of [`run_cell`]: composes the system and drives the
/// phase runner with an optional pre-built analytic model (the
/// `calibrate` binary injects candidate coefficients through this).
pub(crate) fn run_cell_with_model(
    id: SystemId,
    spec: &SystemSpec,
    built: &BuiltWorkload,
    params: &SystemParams,
    model: Option<&crate::analytic::ExecModel>,
) -> Result<(RunOutcome, Vec<TraceEvent>), SpecError> {
    let sys = build_system(spec, params, built.character.footprint)?;
    let armed = spec.faults.is_some();
    match spec.telemetry {
        None => Ok((
            run_composed(id, sys, built, params, None, armed, model),
            Vec::new(),
        )),
        Some(t) => {
            let tel = if t.attribution {
                Telemetry::with_attribution(t.trace_events)
            } else {
                Telemetry::new(t.trace_events)
            };
            let mut out = run_composed(id, sys, built, params, Some(&tel), armed, model);
            out.attr = tel.attribution();
            let (events, metrics) = tel.finish();
            out.metrics = metrics;
            Ok((out, events))
        }
    }
}

/// Composes and runs `spec` under an explicit report identity — the
/// sweep engine and the preset wrappers both bottom out here.
///
/// When the spec's telemetry knob is on, the outcome carries the
/// per-component metric set; the event trace is discarded here (use
/// [`simulate_spec_traced`] to keep it).
///
/// # Errors
///
/// Returns [`SpecError`] when [`build_system`] rejects the spec.
pub fn simulate_spec_as(
    id: SystemId,
    spec: &SystemSpec,
    built: &BuiltWorkload,
    params: &SystemParams,
) -> Result<RunOutcome, SpecError> {
    Ok(run_cell(id, spec, built, params)?.0)
}

/// Runs `spec` with telemetry forced on and returns both the outcome
/// (metrics attached) and the time-sorted event trace — the engine
/// behind `dramless-sim --trace-out`. Feed the events to
/// [`util::telemetry::chrome_trace`] for a Perfetto-loadable file.
///
/// A spec without a telemetry knob gets [`TelemetrySpec::default`];
/// an explicit knob (custom ring capacity) is respected.
///
/// # Errors
///
/// Returns [`SpecError`] when the spec's axes are incompatible.
pub fn simulate_spec_traced(
    spec: &SystemSpec,
    built: &BuiltWorkload,
    params: &SystemParams,
) -> Result<(RunOutcome, Vec<TraceEvent>), SpecError> {
    let mut traced = spec.clone();
    if traced.telemetry.is_none() {
        traced.telemetry = Some(TelemetrySpec::default());
    }
    run_cell(
        SystemId::Custom(traced.display_name()),
        &traced,
        built,
        params,
    )
}

/// Simulates a built workload on a custom spec, reported under the
/// spec's display name.
///
/// # Errors
///
/// Returns [`SpecError`] when the spec's axes are incompatible.
pub fn simulate_spec_built(
    spec: &SystemSpec,
    built: &BuiltWorkload,
    params: &SystemParams,
) -> Result<RunOutcome, SpecError> {
    simulate_spec_as(SystemId::Custom(spec.display_name()), spec, built, params)
}

/// Simulates `workload` on a custom spec.
///
/// # Errors
///
/// Returns [`SpecError`] when the spec's axes are incompatible.
pub fn simulate_spec(
    spec: &SystemSpec,
    workload: &Workload,
    params: &SystemParams,
) -> Result<RunOutcome, SpecError> {
    let built = workload.build(params.agents);
    simulate_spec_built(spec, &built, params)
}

/// Simulates a built workload on the DRAM-less platform with an explicit
/// PRAM scheduler — the Fig. 13 ablation axis (Bare-metal / Interleaving
/// / Selective-erasing / Final). Identical to
/// [`SystemKind::DramLess`] except for the scheduler choice.
pub fn simulate_dramless_scheduler(
    sched: SchedulerKind,
    built: &BuiltWorkload,
    params: &SystemParams,
) -> RunOutcome {
    let spec = SystemSpec {
        control: Control::HardwareAutomated { scheduler: sched },
        ..SystemKind::DramLess.spec()
    };
    simulate_spec_as(SystemId::Preset(SystemKind::DramLess), &spec, built, params)
        .expect("the DRAM-less preset composes with any scheduler")
}

/// Runs every `(system, workload)` pair, building each workload once.
///
/// Delegates to the work-stealing [`crate::sweep`] engine; output order
/// and content match the historical serial nested loop exactly.
pub fn run_suite(
    kinds: &[SystemKind],
    workloads: &[Workload],
    params: &SystemParams,
) -> crate::report::SuiteResult {
    crate::sweep::sweep(kinds, workloads, params)
}

/// Simulates `workload` on `kind`, returning the full outcome.
pub fn simulate(kind: SystemKind, workload: &Workload, params: &SystemParams) -> RunOutcome {
    let built = workload.build(params.agents);
    simulate_built(kind, &built, params)
}

/// Like [`simulate`] but reuses an already-built workload (the sweep
/// helpers build each workload once and run it on every system).
pub fn simulate_built(
    kind: SystemKind,
    built: &BuiltWorkload,
    params: &SystemParams,
) -> RunOutcome {
    simulate_spec_as(SystemId::Preset(kind), &kind.spec(), built, params)
        .expect("every Table I preset composes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash::CellKind;
    use workloads::{Kernel, Scale};

    fn params() -> SystemParams {
        SystemParams::default()
    }

    fn tiny(kernel: Kernel) -> Workload {
        Workload::of(kernel, Scale(0.25))
    }

    #[test]
    fn every_system_runs_gemver() {
        let w = tiny(Kernel::Gemver);
        let built = w.build(params().agents);
        for kind in SystemKind::EVALUATED {
            let out = simulate_built(kind, &built, &params());
            assert!(out.total_time > Picos::ZERO, "{kind}");
            assert!(out.bandwidth() > 0.0, "{kind}");
            assert!(out.total_energy().as_j() > 0.0, "{kind}");
            assert_eq!(out.exec.instructions, built.character.instructions);
        }
    }

    #[test]
    fn dramless_beats_hetero_on_bandwidth() {
        // Needs a non-degenerate footprint so capacity pressure bites
        // (at very small scales constant offload costs blur the gap).
        let w = Workload::of(Kernel::Gemver, Scale(0.8));
        let built = w.build(params().agents);
        let dl = simulate_built(SystemKind::DramLess, &built, &params());
        let het = simulate_built(SystemKind::Hetero, &built, &params());
        assert!(
            dl.bandwidth() > het.bandwidth(),
            "DRAM-less {:.1} MB/s vs Hetero {:.1} MB/s",
            dl.bandwidth() / 1e6,
            het.bandwidth() / 1e6
        );
    }

    #[test]
    fn heterodirect_beats_hetero() {
        let w = tiny(Kernel::Gemver);
        let built = w.build(params().agents);
        let h = simulate_built(SystemKind::Hetero, &built, &params());
        let hd = simulate_built(SystemKind::Heterodirect, &built, &params());
        assert!(hd.total_time < h.total_time);
        // P2P removes host staging CPU energy.
        assert!(hd.energy.energy_of_prefix("host.") < h.energy.energy_of_prefix("host."));
    }

    #[test]
    fn firmware_variant_is_slower_than_hardware_automation() {
        let w = tiny(Kernel::Gemver);
        let built = w.build(params().agents);
        let hw = simulate_built(SystemKind::DramLess, &built, &params());
        let fw = simulate_built(SystemKind::DramLessFirmware, &built, &params());
        assert!(fw.total_time > hw.total_time);
    }

    #[test]
    fn ideal_is_fastest() {
        let w = tiny(Kernel::Gemver);
        let built = w.build(params().agents);
        let ideal = simulate_built(SystemKind::Ideal, &built, &params());
        for kind in SystemKind::EVALUATED {
            let out = simulate_built(kind, &built, &params());
            assert!(
                ideal.total_time <= out.total_time,
                "{kind} beat the ideal system"
            );
        }
    }

    #[test]
    fn hetero_spends_most_time_moving_data() {
        // §III-A: the hetero path is dominated by data movement. The
        // initial/final staging phases plus demand-paged SSD traffic
        // (reported under `memory`) must dwarf compute.
        let w = Workload::of(Kernel::Gemver, Scale(0.8));
        let built = w.build(params().agents);
        let out = simulate_built(SystemKind::Hetero, &built, &params());
        let f = out.breakdown.fractions();
        let movement = f[1] + f[3] + f[4];
        let compute = f[2];
        assert!(
            movement > 5.0 * compute,
            "movement {movement:.2} vs compute {compute:.3}"
        );
    }

    #[test]
    fn integrated_tiers_order_by_cell_speed() {
        let w = tiny(Kernel::Trisolv);
        let built = w.build(params().agents);
        let slc = simulate_built(SystemKind::IntegratedSlc, &built, &params());
        let mlc = simulate_built(SystemKind::IntegratedMlc, &built, &params());
        let tlc = simulate_built(SystemKind::IntegratedTlc, &built, &params());
        assert!(slc.total_time <= mlc.total_time);
        assert!(mlc.total_time <= tlc.total_time);
    }

    #[test]
    fn incompatible_axes_are_typed_errors() {
        let p = params();
        let cases = [
            // Flash over direct load/store.
            SystemSpec {
                datapath: Datapath::DirectLoadStore,
                buffer: Buffer::None,
                ..SystemKind::Hetero.spec()
            },
            // Staged datapath without an internal buffer.
            SystemSpec {
                buffer: Buffer::None,
                ..SystemKind::Hetero.spec()
            },
            // Load/store with a page cache bolted on.
            SystemSpec {
                buffer: Buffer::DramPageCache { frames: None },
                ..SystemKind::DramLess.spec()
            },
            // DRAM behind a page interface.
            SystemSpec {
                datapath: Datapath::PageInterface,
                buffer: Buffer::DramPageCache { frames: None },
                ..SystemKind::Ideal.spec()
            },
            // A zero-frame cache.
            SystemSpec {
                buffer: Buffer::DramPageCache { frames: Some(0) },
                ..SystemKind::Hetero.spec()
            },
        ];
        for spec in cases {
            let err = build_system(&spec, &p, 1 << 20).err();
            assert!(err.is_some(), "{} should not compose", spec.display_name());
        }
    }

    #[test]
    fn custom_specs_compose_and_run() {
        // Two points Table I never built: TLC flash behind P2P DMA, and
        // a PALP-style Interleaving scheduler behind a staged PRAM path.
        let w = tiny(Kernel::Gemver);
        let built = w.build(params().agents);
        let tlc_direct = SystemSpec {
            name: None,
            medium: Medium::FlashSsd {
                cell: CellKind::Tlc,
            },
            datapath: Datapath::P2pDma,
            buffer: Buffer::DramPageCache { frames: None },
            control: Control::HardwareAutomated {
                scheduler: SchedulerKind::Final,
            },
            telemetry: None,
            faults: None,
            tier: Default::default(),
        };
        let staged_pram = SystemSpec {
            name: Some("palp-style".into()),
            medium: Medium::Pram3x,
            datapath: Datapath::P2pDma,
            buffer: Buffer::DramPageCache { frames: None },
            control: Control::HardwareAutomated {
                scheduler: SchedulerKind::Interleaving,
            },
            telemetry: None,
            faults: None,
            tier: Default::default(),
        };
        let a = simulate_spec_built(&tlc_direct, &built, &params()).unwrap();
        let b = simulate_spec_built(&staged_pram, &built, &params()).unwrap();
        assert!(a.bandwidth() > 0.0 && a.bandwidth().is_finite());
        assert!(b.bandwidth() > 0.0 && b.bandwidth().is_finite());
        assert_eq!(b.system.name(), "palp-style");
        // A TLC external SSD is no faster than the MLC preset.
        let mlc = simulate_built(SystemKind::Heterodirect, &built, &params());
        assert!(a.total_time >= mlc.total_time);
    }

    #[test]
    fn staging_follows_the_spec_datapath() {
        // The old runner staged phases 2/4 host-mediated for every
        // heterogeneous system; P2P-DMA configs must stage faster.
        let w = Workload::of(Kernel::Gemver, Scale(0.8));
        let built = w.build(params().agents);
        let h = simulate_built(SystemKind::Hetero, &built, &params());
        let hd = simulate_built(SystemKind::Heterodirect, &built, &params());
        assert!(
            hd.breakdown.staging_in < h.breakdown.staging_in,
            "P2P stage-in {} !< host-mediated stage-in {}",
            hd.breakdown.staging_in,
            h.breakdown.staging_in
        );
        assert!(hd.breakdown.staging_out < h.breakdown.staging_out);
    }
}
