//! Seeded case generation for property-style tests, replacing
//! `proptest`.
//!
//! [`crate::for_each_case!`] runs a test body N times, each with a
//! fresh deterministic [`Rng64`](crate::rng::Rng64) derived from the
//! case index, and names the failing case on panic. Tests draw their
//! inputs explicitly from the generator (ranges, vectors, sets), which
//! keeps failures trivially reproducible: re-running the test replays
//! the identical sequence, and the panic message pins the case index.
//!
//! # Examples
//!
//! ```
//! util::for_each_case!(64, |rng| {
//!     let a = rng.range_u64(0, 100);
//!     let b = rng.range_u64(0, 100);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

/// Derives the per-case generator. Mixed through SplitMix64 so
/// consecutive case indices produce unrelated streams.
pub fn case_rng(case: u64) -> crate::rng::Rng64 {
    let mut s = case.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(1);
    crate::rng::Rng64::seed(crate::rng::split_mix64(&mut s))
}

/// Runs `body` once per case with a deterministic per-case generator
/// bound to `$rng`. On panic, re-raises with the case index prepended
/// so the failure is immediately reproducible.
#[macro_export]
macro_rules! for_each_case {
    ($cases:expr, |$rng:ident| $body:block) => {{
        let total: u64 = $cases;
        for __case in 0..total {
            let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                #[allow(unused_mut)]
                let mut $rng = $crate::cases::case_rng(__case);
                $body
            }));
            if let Err(payload) = result {
                eprintln!("for_each_case!: failing case {__case} of {total}");
                ::std::panic::resume_unwind(payload);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn cases_are_deterministic() {
        let mut firsts = Vec::new();
        crate::for_each_case!(8, |rng| {
            firsts.push(rng.next_u64());
        });
        let mut again = Vec::new();
        crate::for_each_case!(8, |rng| {
            again.push(rng.next_u64());
        });
        assert_eq!(firsts, again);
        let distinct: std::collections::HashSet<_> = firsts.iter().collect();
        assert_eq!(distinct.len(), firsts.len(), "case streams must differ");
    }

    #[test]
    fn failing_case_is_reported() {
        let caught = std::panic::catch_unwind(|| {
            crate::for_each_case!(4, |rng| {
                let v = rng.range_u64(0, 10);
                let _ = v;
                if true {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
    }
}
