//! A minimal JSON layer: value type, writer, parser and conversion
//! traits.
//!
//! The workspace serializes experiment reports and configurations to
//! JSON; this module provides everything needed without external
//! crates. Types opt in by implementing [`ToJson`]/[`FromJson`], most
//! conveniently through [`crate::json_struct!`],
//! [`crate::json_unit_enum!`] or [`crate::json_newtype!`]; enums with
//! data-carrying variants write short manual impls using the same
//! externally-tagged layout serde used (`{"Variant": {..fields..}}`).
//!
//! # Examples
//!
//! ```
//! use util::json::{FromJson, Json, ToJson};
//!
//! #[derive(Debug, PartialEq)]
//! struct Point {
//!     x: u64,
//!     y: f64,
//! }
//! util::json_struct!(Point { x, y });
//!
//! let p = Point { x: 3, y: 0.5 };
//! let text = p.to_json_string();
//! assert_eq!(text, r#"{"x":3,"y":0.5}"#);
//! assert_eq!(Point::from_json_str(&text).unwrap(), p);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A parsed or constructed JSON value.
///
/// Numbers keep their integer-ness: `U64`/`I64` hold values exactly
/// (the simulator counts picoseconds and femtojoules in wide integers),
/// `F64` holds everything with a fractional part. Objects preserve
/// insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

/// Error raised by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, including byte position for parse
    /// errors.
    pub msg: String,
}

impl JsonError {
    /// Creates an error from any displayable message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// Prefixes the message with a field/element context, so nested
    /// failures read like a path.
    pub fn context(self, ctx: &str) -> Self {
        JsonError::new(format!("{ctx}: {}", self.msg))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(v) => Some(v),
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::U64(_) | Json::I64(_) => "integer",
            Json::F64(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Renders to text. `pretty` indents with two spaces per level.
    pub fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.write(&mut out, pretty, 0);
        out
    }

    fn write(&self, out: &mut String, pretty: bool, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                assert!(v.is_finite(), "JSON cannot represent {v}");
                // `{:?}` is Rust's shortest round-trip float form; it
                // always keeps a `.0` or exponent, so the value parses
                // back as a float rather than an integer.
                out.push_str(&format!("{v:?}"));
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, pretty, depth + 1);
                    item.write(out, pretty, depth + 1);
                }
                newline_indent(out, pretty, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, pretty, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, pretty, depth + 1);
                }
                newline_indent(out, pretty, depth);
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte position of the first
    /// offending character.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, pretty: bool, depth: usize) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // {
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            // Out-of-range integers fall through to f64.
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Serialize to a [`Json`] value (and from there to text).
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;

    /// Compact one-line text.
    fn to_json_string(&self) -> String {
        self.to_json().render(false)
    }

    /// Two-space-indented text.
    fn to_json_pretty(&self) -> String {
        self.to_json().render(true)
    }
}

/// Reconstruct from a [`Json`] value (and from there from text).
pub trait FromJson: Sized {
    /// Converts a JSON value back into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// Parses text and converts.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the text is not valid JSON or does
    /// not match `Self`.
    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(s)?)
    }
}

/// Looks up `name` in an object and converts it, treating a missing key
/// as `null` (so `Option` fields tolerate omission).
///
/// # Errors
///
/// Returns a [`JsonError`] if `v` is not an object or the field does
/// not convert.
pub fn field<T: FromJson>(v: &Json, name: &str) -> Result<T, JsonError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(JsonError::new(format!("expected object, got {}", v.kind())));
    }
    let item = v.get(name).unwrap_or(&Json::Null);
    T::from_json(item).map_err(|e| e.context(name))
}

fn mismatch<T>(expected: &str, got: &Json) -> Result<T, JsonError> {
    Err(JsonError::new(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().map_or_else(|| mismatch("bool", v), Ok)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map_or_else(|| mismatch("string", v), |s| Ok(s.to_string()))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = match v.as_u64() {
                    Some(r) => r,
                    None => return mismatch(stringify!($ty), v),
                };
                <$ty>::try_from(raw).map_err(|_| {
                    JsonError::new(format!("{raw} overflows {}", stringify!($ty)))
                })
            }
        }
    )+};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v < 0 { Json::I64(v) } else { Json::U64(v as u64) }
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = match v.as_i64() {
                    Some(r) => r,
                    None => return mismatch(stringify!($ty), v),
                };
                <$ty>::try_from(raw).map_err(|_| {
                    JsonError::new(format!("{raw} overflows {}", stringify!($ty)))
                })
            }
        }
    )+};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for u128 {
    fn to_json(&self) -> Json {
        // Values beyond u64 (≈18.4 MJ in femtojoules) serialize as a
        // decimal string so no reader silently rounds them.
        match u64::try_from(*self) {
            Ok(v) => Json::U64(v),
            Err(_) => Json::Str(self.to_string()),
        }
    }
}

impl FromJson for u128 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(u) = v.as_u64() {
            return Ok(u as u128);
        }
        if let Some(s) = v.as_str() {
            return s
                .parse::<u128>()
                .map_err(|_| JsonError::new(format!("invalid u128 literal {s:?}")));
        }
        mismatch("u128", v)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().map_or_else(|| mismatch("number", v), Ok)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = match v.as_arr() {
            Some(items) => items,
            None => return mismatch("array", v),
        };
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.context(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + fmt::Debug, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::new(format!("expected {N} elements, got {got}")))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((
                A::from_json(a).map_err(|e| e.context("[0]"))?,
                B::from_json(b).map_err(|e| e.context("[1]"))?,
            )),
            _ => mismatch("2-element array", v),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((
                A::from_json(a).map_err(|e| e.context("[0]"))?,
                B::from_json(b).map_err(|e| e.context("[1]"))?,
                C::from_json(c).map_err(|e| e.context("[2]"))?,
            )),
            _ => mismatch("3-element array", v),
        }
    }
}

// Maps serialize as arrays of `[key, value]` pairs so non-string keys
// (row ids, enum kinds) round-trip without a key-encoding convention.
impl<K: ToJson, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let pairs: Vec<(K, V)> = Vec::from_json(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: ToJson, V: ToJson, S> ToJson for HashMap<K, V, S> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K, V, S> FromJson for HashMap<K, V, S>
where
    K: FromJson + std::hash::Hash + Eq,
    V: FromJson,
    S: std::hash::BuildHasher + Default,
{
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let pairs: Vec<(K, V)> = Vec::from_json(v)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields,
/// serializing as an object keyed by field name. Invoke in the module
/// that defines the struct so private fields are reachable.
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $($field: $crate::json::field(v, stringify!($field))
                        .map_err(|e| e.context(stringify!($ty)))?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum of unit variants,
/// serializing each variant as its name string (serde's layout).
#[macro_export]
macro_rules! json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Str(
                    match self {
                        $($ty::$variant => stringify!($variant),)+
                    }
                    .to_string(),
                )
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    Some(other) => Err($crate::json::JsonError::new(format!(
                        "unknown {} variant {:?}",
                        stringify!($ty),
                        other
                    ))),
                    None => Err($crate::json::JsonError::new(format!(
                        "expected {} variant string, got {}",
                        stringify!($ty),
                        v.kind()
                    ))),
                }
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a single-field tuple struct
/// by delegating to the inner value (serde's `#[serde(transparent)]`).
#[macro_export]
macro_rules! json_newtype {
    ($ty:ident) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($ty(
                    $crate::json::FromJson::from_json(v).map_err(|e| e.context(stringify!($ty)))?
                ))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["0", "42", "-17", "1.5", "true", "false", "null", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(false), text, "round-trip of {text}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        let neg = i64::MIN;
        let v = Json::parse(&neg.to_string()).unwrap();
        assert_eq!(v.as_i64(), Some(neg));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1e300, -2.5e-10, std::f64::consts::PI] {
            let text = Json::F64(f).render(false);
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(f));
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::U64(1), Json::Null])),
            ("b".into(), Json::Str("x\"\\\n".into())),
            ("c".into(), Json::Obj(vec![])),
        ]);
        for pretty in [false, true] {
            assert_eq!(Json::parse(&v.render(pretty)).unwrap(), v);
        }
    }

    #[test]
    fn u128_beyond_u64_uses_strings() {
        let big = u64::MAX as u128 + 1;
        let j = big.to_json();
        assert_eq!(j, Json::Str(big.to_string()));
        assert_eq!(u128::from_json(&j).unwrap(), big);
        assert_eq!(u128::from_json(&Json::U64(7)).unwrap(), 7);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "tru",
            "[1,",
            "{\"a\":}",
            "1 2",
            "{1: 2}",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn option_fields_tolerate_missing_keys() {
        #[derive(Debug, PartialEq)]
        struct S {
            a: u32,
            b: Option<u32>,
        }
        crate::json_struct!(S { a, b });
        let parsed = S::from_json_str(r#"{"a": 1}"#).unwrap();
        assert_eq!(parsed, S { a: 1, b: None });
        assert!(S::from_json_str(r#"{"b": 2}"#).is_err(), "missing a");
    }

    #[test]
    fn maps_round_trip_with_non_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "three".to_string());
        m.insert(7u32, "seven".to_string());
        let back: BTreeMap<u32, String> =
            BTreeMap::from_json(&Json::parse(&m.to_json_string()).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unit_enum_macro_round_trips() {
        #[derive(Debug, PartialEq)]
        enum E {
            Alpha,
            Beta,
        }
        crate::json_unit_enum!(E { Alpha, Beta });
        assert_eq!(E::Alpha.to_json_string(), "\"Alpha\"");
        assert_eq!(E::from_json_str("\"Beta\"").unwrap(), E::Beta);
        assert!(E::from_json_str("\"Gamma\"").is_err());
    }

    #[test]
    fn newtype_macro_is_transparent() {
        #[derive(Debug, PartialEq)]
        struct W(u64);
        crate::json_newtype!(W);
        assert_eq!(W(9).to_json_string(), "9");
        assert_eq!(W::from_json_str("9").unwrap(), W(9));
    }

    #[test]
    fn byte_arrays_round_trip() {
        let a: [u8; 4] = [1, 2, 3, 255];
        let j = a.to_json_string();
        assert_eq!(j, "[1,2,3,255]");
        assert_eq!(<[u8; 4]>::from_json_str(&j).unwrap(), a);
        assert!(<[u8; 4]>::from_json_str("[1,2]").is_err());
    }
}
