//! Zero-dependency support library for the DRAM-less workspace.
//!
//! Everything the simulator previously pulled from crates.io lives here
//! as a small, auditable in-tree implementation, so the whole workspace
//! builds and tests with `--offline` on a machine that has never seen a
//! registry:
//!
//! * [`json`] — a JSON value type, writer, parser and the
//!   [`ToJson`](json::ToJson)/[`FromJson`](json::FromJson) traits with
//!   the [`json_struct!`], [`json_unit_enum!`] and [`json_newtype!`]
//!   derive macros (replaces `serde`/`serde_json`);
//! * [`rng`] — a seeded SplitMix64/xoshiro256++ generator (replaces
//!   `rand`);
//! * [`fingerprint`] — the shared 64-bit FNV-1a accumulator behind
//!   every content fingerprint (trace streams, schedule cache keys,
//!   record/replay run commitments);
//! * [`bytes`] — a cheap slice-able byte buffer pair
//!   [`Bytes`](bytes::Bytes)/[`BytesMut`](bytes::BytesMut) (replaces
//!   the `bytes` crate);
//! * [`mod@bench`] — a warmup + N-iteration measurement harness with
//!   min/median/stddev statistics and JSON output (replaces
//!   `criterion`);
//! * [`cases`] — the [`for_each_case!`] seeded case generator
//!   (replaces `proptest`);
//! * [`pool`] — a work-stealing thread pool with deterministic result
//!   ordering and panic propagation (replaces `rayon`); sized by the
//!   `DRAMLESS_THREADS` environment variable.
//! * [`telemetry`] — trace events, a bounded ring-buffer tracer, a
//!   sorted metric registry and a Chrome trace-event exporter (the
//!   unit-agnostic core under `sim_core::probe`).

pub mod bench;
pub mod bytes;
pub mod cases;
pub mod fingerprint;
pub mod fxhash;
pub mod json;
pub mod pool;
pub mod rng;
pub mod telemetry;
