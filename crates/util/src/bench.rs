//! A lightweight measurement harness replacing `criterion`.
//!
//! Each bench target creates a [`Harness`], registers measurements with
//! [`Harness::bench`] (warmup + N timed iterations) or
//! [`Harness::once`] (a single timed run, e.g. a whole figure sweep),
//! and calls [`Harness::finish`], which prints a summary table and —
//! when `BENCH_JSON` names a path — writes every statistic as a JSON
//! report for CI artifacts.
//!
//! Environment knobs:
//!
//! * `BENCH_ITERS` — timed iterations per measurement (default 20);
//! * `BENCH_WARMUP` — untimed warmup iterations (default 3);
//! * `BENCH_SMOKE=1` — smoke mode: one iteration, no warmup (CI uses
//!   this to prove every bench target still runs);
//! * `BENCH_JSON=<path>` — write the JSON report to `<path>`.

use crate::json::ToJson;
use std::time::Instant;

/// Aggregate timing of one measurement, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Measurement label, unique within the harness.
    pub name: String,
    /// Timed iterations.
    pub iters: u64,
    /// Untimed warmup iterations that preceded them.
    pub warmup: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
    /// Median iteration.
    pub median_ns: u64,
    /// Mean iteration.
    pub mean_ns: f64,
    /// Population standard deviation.
    pub stddev_ns: f64,
    /// Work items processed per iteration (0 for plain timings). Sweep
    /// measurements set this to the number of `config × workload` cells.
    pub units: u64,
    /// `units` divided by the median iteration time, in items/second
    /// (0.0 for plain timings).
    pub units_per_sec: f64,
}

crate::json_struct!(Measurement {
    name,
    iters,
    warmup,
    min_ns,
    max_ns,
    median_ns,
    mean_ns,
    stddev_ns,
    units,
    units_per_sec,
});

impl Measurement {
    fn from_samples(name: &str, warmup: u64, mut samples: Vec<u64>) -> Measurement {
        assert!(!samples.is_empty(), "no samples for {name}");
        samples.sort_unstable();
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        Measurement {
            name: name.to_string(),
            iters: samples.len() as u64,
            warmup,
            min_ns: samples[0],
            max_ns: *samples.last().expect("non-empty"),
            median_ns: samples[samples.len() / 2],
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            units: 0,
            units_per_sec: 0.0,
        }
    }

    fn with_units(mut self, units: u64) -> Measurement {
        self.units = units;
        self.units_per_sec = if self.median_ns > 0 {
            units as f64 * 1e9 / self.median_ns as f64
        } else {
            0.0
        };
        self
    }
}

/// The whole report of one bench target.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Bench target id ("fig15_bandwidth", "micro_latency", …).
    pub id: String,
    /// Whether smoke mode was active.
    pub smoke: bool,
    /// All measurements in registration order.
    pub measurements: Vec<Measurement>,
}

crate::json_struct!(BenchReport {
    id,
    smoke,
    measurements
});

/// Collects measurements for one bench target.
#[derive(Debug)]
pub struct Harness {
    report: BenchReport,
    iters: u64,
    warmup: u64,
    json_path: Option<String>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Harness {
    /// Creates a harness for the bench target `id`, reading the
    /// `BENCH_*` environment knobs.
    pub fn new(id: &str) -> Harness {
        let smoke = std::env::var("BENCH_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
        let (iters, warmup) = if smoke {
            (1, 0)
        } else {
            (
                env_u64("BENCH_ITERS", 20).max(1),
                env_u64("BENCH_WARMUP", 3),
            )
        };
        Harness {
            report: BenchReport {
                id: id.to_string(),
                smoke,
                measurements: Vec::new(),
            },
            iters,
            warmup,
            json_path: std::env::var("BENCH_JSON").ok(),
        }
    }

    /// Whether smoke mode (one iteration, no warmup) is active. Benches
    /// use this to shrink their sweeps.
    pub fn smoke(&self) -> bool {
        self.report.smoke
    }

    /// Runs `f` for warmup then the configured iterations, recording
    /// per-iteration wall time.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        self.push(Measurement::from_samples(name, self.warmup, samples));
    }

    /// Times a single run of `f` (no warmup) and returns its result.
    /// Figure/table sweeps use this: the work runs once regardless of
    /// `BENCH_ITERS`, but its wall time still lands in the report.
    pub fn once<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let elapsed = t0.elapsed().as_nanos() as u64;
        self.push(Measurement::from_samples(name, 0, vec![elapsed]));
        out
    }

    /// Like [`Harness::once`], for work with a natural item count (e.g.
    /// sweep cells): the measurement additionally records `units` and
    /// the derived items/second, and [`Harness::finish`] prints a
    /// wall-clock + rate line for it.
    pub fn once_throughput<R>(&mut self, name: &str, units: u64, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let elapsed = t0.elapsed().as_nanos() as u64;
        self.push(Measurement::from_samples(name, 0, vec![elapsed]).with_units(units));
        out
    }

    /// Records an externally-timed duration as a single-sample
    /// measurement — for work whose phases the caller has already
    /// clocked (e.g. a sweep's build/execute split).
    pub fn record(&mut self, name: &str, elapsed_ns: u64) {
        self.push(Measurement::from_samples(name, 0, vec![elapsed_ns]));
    }

    /// Like [`Harness::record`] with a work-item count: derives
    /// items/second from the supplied duration.
    pub fn record_throughput(&mut self, name: &str, units: u64, elapsed_ns: u64) {
        self.push(Measurement::from_samples(name, 0, vec![elapsed_ns]).with_units(units));
    }

    fn push(&mut self, m: Measurement) {
        assert!(
            self.report.measurements.iter().all(|e| e.name != m.name),
            "duplicate measurement name {:?}",
            m.name
        );
        self.report.measurements.push(m);
    }

    /// Prints the summary table and writes the JSON report when
    /// `BENCH_JSON` is set.
    ///
    /// # Panics
    ///
    /// Panics if the JSON file cannot be written, so CI fails loudly.
    pub fn finish(self) {
        println!("\n-- timings ({}) --", self.report.id);
        println!(
            "{:<40} {:>7} {:>12} {:>12} {:>12}",
            "measurement", "iters", "min", "median", "stddev"
        );
        for m in &self.report.measurements {
            println!(
                "{:<40} {:>7} {:>12} {:>12} {:>12}",
                m.name,
                m.iters,
                fmt_ns(m.min_ns as f64),
                fmt_ns(m.median_ns as f64),
                fmt_ns(m.stddev_ns)
            );
        }
        for m in &self.report.measurements {
            if m.units > 0 {
                println!(
                    "{}: wall-clock {} — {:.1} cells/s ({} cells)",
                    m.name,
                    fmt_ns(m.median_ns as f64),
                    m.units_per_sec,
                    m.units
                );
            }
        }
        if let Some(path) = &self.json_path {
            std::fs::write(path, self.report.to_json_pretty())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("json report written to {path}");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::FromJson;
    use std::time::Duration;

    #[test]
    fn measurement_statistics_are_correct() {
        let m = Measurement::from_samples("m", 2, vec![30, 10, 20]);
        assert_eq!(m.min_ns, 10);
        assert_eq!(m.max_ns, 30);
        assert_eq!(m.median_ns, 20);
        assert!((m.mean_ns - 20.0).abs() < 1e-9);
        let expect_sd = (200.0f64 / 3.0).sqrt();
        assert!((m.stddev_ns - expect_sd).abs() < 1e-9);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = BenchReport {
            id: "t".into(),
            smoke: true,
            measurements: vec![Measurement::from_samples("a", 0, vec![5])],
        };
        let back = BenchReport::from_json_str(&r.to_json_pretty()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn harness_records_once_and_bench() {
        let mut h = Harness {
            report: BenchReport {
                id: "t".into(),
                smoke: false,
                measurements: Vec::new(),
            },
            iters: 3,
            warmup: 1,
            json_path: None,
        };
        let out = h.once("setup", || 41 + 1);
        assert_eq!(out, 42);
        h.bench("loop", || std::hint::black_box(1 + 1));
        assert_eq!(h.report.measurements.len(), 2);
        assert_eq!(h.report.measurements[1].iters, 3);
        h.finish();
    }

    #[test]
    fn throughput_measurement_derives_rate() {
        let mut h = Harness {
            report: BenchReport {
                id: "t".into(),
                smoke: false,
                measurements: Vec::new(),
            },
            iters: 1,
            warmup: 0,
            json_path: None,
        };
        h.once_throughput("sweep", 165, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        let m = &h.report.measurements[0];
        assert_eq!(m.units, 165);
        let expect = 165.0 * 1e9 / m.median_ns as f64;
        assert!((m.units_per_sec - expect).abs() < 1e-6);
        assert!(m.units_per_sec > 0.0);
        // Plain timings stay rate-free.
        let plain = Measurement::from_samples("p", 0, vec![10]);
        assert_eq!(plain.units, 0);
        assert_eq!(plain.units_per_sec, 0.0);
    }
}
