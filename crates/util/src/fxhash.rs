//! A fast, deterministic hasher for integer-keyed hot-path maps.
//!
//! The simulators key several per-request bookkeeping maps by plain
//! word/page indexes (selective-erase touch tracking, LRU residency,
//! fault line state). `std`'s default SipHash is both slower than the
//! map operation it guards and randomly seeded per process, while these
//! maps want the opposite trade: minimal per-lookup cost and run-to-run
//! determinism. [`FxHasher`] is the classic Fx multiply-fold (as used by
//! rustc): one wrapping multiply per 8 bytes, zero seed state.
//!
//! These tables are filled with simulator-internal keys, never
//! attacker-controlled input, so HashDoS resistance is not a concern.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-fold hasher (Firefox/rustc "Fx" construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The odd multiplier from the Fx construction: truncation of
/// 2^64 / phi, which distributes consecutive integers well.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut last = [0u8; 8];
            last[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(last));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic zero-state builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the deterministic Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the deterministic Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 32, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m[&(i * 32)], i as u32);
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }

    #[test]
    fn byte_writes_distinguish_lengths() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(&[1, 0]);
        b.write(&[1]);
        assert_ne!(a.finish(), b.finish());
    }
}
