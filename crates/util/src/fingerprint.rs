//! Shared 64-bit FNV-1a content fingerprinting.
//!
//! Several layers commit to content with the same hash — `accel::trace`
//! fingerprints packed op streams, `workloads::cache` content-addresses
//! memoized schedules, and the record/replay layer chains a
//! `RunFingerprint` over the backend-request stream. They all fold
//! through this one [`Fnv64`] accumulator so the constants and mixing
//! discipline live in exactly one place.
//!
//! Two mixing granularities are provided and they are *not*
//! interchangeable: [`Fnv64::mix_bytes`] is classic byte-at-a-time
//! FNV-1a, [`Fnv64::mix_u64`] folds whole 64-bit lanes per step (the
//! fast path for multi-megabyte packed streams). Callers must keep
//! using whichever granularity their stored fingerprints were minted
//! with.
//!
//! # Examples
//!
//! ```
//! use util::fingerprint::Fnv64;
//!
//! let mut a = Fnv64::new();
//! a.mix_bytes(b"hello");
//! let mut b = Fnv64::new();
//! b.mix_bytes(b"hello");
//! assert_eq!(a.value(), b.value());
//! assert_ne!(a.value(), Fnv64::new().value());
//! ```

/// The FNV-1a 64-bit offset basis.
pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    h: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh accumulator at the offset basis.
    pub fn new() -> Self {
        Fnv64 { h: OFFSET }
    }

    /// Resumes accumulation from a previously captured [`Fnv64::value`]
    /// — how the replay layer chains a fingerprint across checkpoints.
    pub fn resume(value: u64) -> Self {
        Fnv64 { h: value }
    }

    /// Folds one 64-bit lane: `h = (h ^ v) * PRIME`.
    ///
    /// One multiply per 8 bytes — the fast-path granularity used for
    /// packed op streams. Not byte-compatible with [`Fnv64::mix_bytes`].
    #[inline]
    pub fn mix_u64(&mut self, v: u64) {
        self.h ^= v;
        self.h = self.h.wrapping_mul(PRIME);
    }

    /// Folds bytes one at a time — classic FNV-1a.
    #[inline]
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(PRIME);
        }
    }

    /// The current digest.
    #[inline]
    pub fn value(&self) -> u64 {
        self.h
    }
}

/// One-shot classic FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut f = Fnv64::new();
    f.mix_bytes(bytes);
    f.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn lane_and_byte_mixing_differ() {
        let mut lanes = Fnv64::new();
        lanes.mix_u64(u64::from_le_bytes(*b"abcdefgh"));
        let mut bytes = Fnv64::new();
        bytes.mix_bytes(b"abcdefgh");
        assert_ne!(lanes.value(), bytes.value());
    }

    #[test]
    fn resume_continues_the_chain() {
        let mut whole = Fnv64::new();
        whole.mix_bytes(b"hello world");
        let mut head = Fnv64::new();
        head.mix_bytes(b"hello ");
        let mut tail = Fnv64::resume(head.value());
        tail.mix_bytes(b"world");
        assert_eq!(whole.value(), tail.value());
    }

    #[test]
    fn order_and_content_sensitivity() {
        let mut a = Fnv64::new();
        a.mix_u64(1);
        a.mix_u64(2);
        let mut b = Fnv64::new();
        b.mix_u64(2);
        b.mix_u64(1);
        assert_ne!(a.value(), b.value());
    }
}
