//! A zero-dependency work-stealing thread pool (replaces `rayon`).
//!
//! The sweep engine schedules every `config × workload` cell of the
//! paper's evaluation grid as an independent task; this pool runs those
//! tasks across all available cores. Design:
//!
//! * **Per-worker deques with stealing** — submitted tasks are dealt
//!   round-robin across one deque per worker; a worker drains its own
//!   deque first and steals from its neighbours (front-first, so a
//!   cost-descending submission order keeps the most expensive cells
//!   running earliest) when it runs dry.
//! * **Caller participation** — [`Pool::run`] executes tasks on the
//!   calling thread too, so a 1-thread pool is exactly a serial loop
//!   and a nested `run` from inside a task can never deadlock: the
//!   nested caller steals and executes work itself instead of waiting
//!   on a worker to become free.
//! * **Panic propagation** — a panicking task does not poison the pool;
//!   the panic payload is captured and re-raised on the thread that
//!   called [`Pool::run`] after the whole batch has settled.
//! * **Determinism** — results are returned in submission order no
//!   matter which thread ran which task, so a parallel run is
//!   byte-identical to a serial one for deterministic tasks.
//!
//! The process-wide [`global`] pool sizes itself from the
//! `DRAMLESS_THREADS` environment variable (clamped to at least 1),
//! falling back to [`std::thread::available_parallelism`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// A boxed task submitted to [`Pool::run`].
pub type Task<T> = Box<dyn FnOnce() -> T + Send + 'static>;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// `pending`/`shutdown` handshake between submitters and sleeping
/// workers. `pending` counts jobs that are queued but not yet reserved
/// by any thread; a reservation (decrement) guarantees a job is
/// waiting in some deque.
struct Signal {
    pending: usize,
    shutdown: bool,
}

struct Shared {
    /// One deque per worker thread (at least one, so external callers
    /// always have somewhere to push and steal from).
    deques: Vec<Mutex<VecDeque<Job>>>,
    sig: Mutex<Signal>,
    available: Condvar,
    /// Round-robin cursor for distributing submitted jobs.
    next: AtomicUsize,
}

impl Shared {
    /// Queues a job and wakes one sleeping worker.
    fn push(&self, job: Job) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        self.deques[slot]
            .lock()
            .expect("pool deque lock")
            .push_back(job);
        let mut s = self.sig.lock().expect("pool signal lock");
        s.pending += 1;
        drop(s);
        self.available.notify_one();
    }

    /// Reserves and takes one queued job, preferring the deque at
    /// `home`. Returns `None` when nothing is queued. Because every
    /// push happens before its `pending` increment and every taker
    /// reserves before scanning, a successful reservation always finds
    /// a job.
    fn take(&self, home: usize) -> Option<Job> {
        {
            let mut s = self.sig.lock().expect("pool signal lock");
            if s.pending == 0 {
                return None;
            }
            s.pending -= 1;
        }
        let n = self.deques.len();
        loop {
            for k in 0..n {
                let i = (home + k) % n;
                if let Some(job) = self.deques[i].lock().expect("pool deque lock").pop_front() {
                    return Some(job);
                }
            }
            // A racing pusher has incremented `pending` but its job is
            // not visible in any deque yet; the reservation guarantees
            // one is imminent, so spin the scan (window is a few
            // instructions wide).
            std::hint::spin_loop();
        }
    }
}

/// Per-batch completion state for one [`Pool::run`] call.
struct Batch<T> {
    /// One result slot per task, filled by whichever thread ran it.
    slots: Vec<Mutex<Option<thread::Result<T>>>>,
    /// Tasks not yet finished.
    remaining: Mutex<usize>,
    done: Condvar,
}

impl<T> Batch<T> {
    fn finish(&self, index: usize, result: thread::Result<T>) {
        *self.slots[index].lock().expect("pool batch slot") = Some(result);
        let mut rem = self.remaining.lock().expect("pool batch counter");
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("pool batch counter") == 0
    }
}

/// The work-stealing pool. See the [module docs](self) for the design.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// Creates a pool with `threads` total execution contexts: the
    /// calling thread plus `threads - 1` spawned workers. `Pool::new(1)`
    /// spawns nothing and [`Pool::run`] degenerates to a serial loop.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sig: Mutex::new(Signal {
                pending: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("dramless-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            threads,
        }
    }

    /// Total execution contexts (callers + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task to completion, returning their results in
    /// submission order. The calling thread executes tasks too; when it
    /// runs out of stealable work it sleeps until the batch finishes.
    ///
    /// # Panics
    ///
    /// If any task panicked, the first (by submission order) panic
    /// payload is re-raised after the whole batch has settled.
    pub fn run<T: Send + 'static>(&self, tasks: Vec<Task<T>>) -> Vec<T> {
        if tasks.is_empty() {
            return Vec::new();
        }
        if self.threads == 1 || tasks.len() == 1 {
            // Serial fast path: same task order, same thread, no
            // queueing overhead; panics propagate natively.
            return tasks.into_iter().map(|f| f()).collect();
        }
        let n = tasks.len();
        let batch: Arc<Batch<T>> = Arc::new(Batch {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        for (index, task) in tasks.into_iter().enumerate() {
            let batch = Arc::clone(&batch);
            self.shared.push(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                batch.finish(index, result);
            }));
        }
        // Help: execute stealable work (from this batch or any batch
        // nested inside it) until our batch completes.
        loop {
            if batch.is_done() {
                break;
            }
            if let Some(job) = self.shared.take(0) {
                job();
                continue;
            }
            let mut rem = batch.remaining.lock().expect("pool batch counter");
            while *rem > 0 {
                rem = batch.done.wait(rem).expect("pool batch wait");
            }
            break;
        }
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in batch.slots.iter() {
            match slot
                .lock()
                .expect("pool batch slot")
                .take()
                .expect("batch slot filled")
            {
                Ok(v) => out.push(v),
                Err(payload) => {
                    panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        out
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.sig.lock().expect("pool signal lock");
            s.shutdown = true;
        }
        self.available_notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Pool {
    fn available_notify_all(&self) {
        self.shared.available.notify_all();
    }
}

fn worker_loop(shared: &Shared, home: usize) {
    loop {
        if let Some(job) = shared.take(home) {
            job();
            continue;
        }
        let mut s = shared.sig.lock().expect("pool signal lock");
        loop {
            if s.shutdown {
                return;
            }
            if s.pending > 0 {
                break;
            }
            s = shared.available.wait(s).expect("pool worker wait");
        }
    }
}

/// Parses a thread-count override ("1".."1024"); `None` falls through
/// to hardware parallelism.
fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, 1024))
}

/// The process-wide pool: `DRAMLESS_THREADS` (read once, at first use)
/// or [`std::thread::available_parallelism`].
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = parse_threads(std::env::var("DRAMLESS_THREADS").ok().as_deref())
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()));
        Pool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed<T: Send + 'static>(
        range: std::ops::Range<usize>,
        f: impl Fn(usize) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<Task<T>> {
        range
            .map(|i| {
                let f = f.clone();
                Box::new(move || f(i)) as Task<T>
            })
            .collect()
    }

    #[test]
    fn empty_task_list_returns_empty() {
        let pool = Pool::new(4);
        let out: Vec<u64> = pool.run(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn results_preserve_submission_order() {
        let pool = Pool::new(4);
        let out = pool.run(boxed(0..100, |i| i * i));
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn more_tasks_than_threads() {
        let pool = Pool::new(2);
        let out = pool.run(boxed(0..512, |i| i as u64 + 1));
        assert_eq!(out.len(), 512);
        assert_eq!(out.iter().sum::<u64>(), (1..=512u64).sum());
    }

    #[test]
    fn single_thread_pool_is_serial() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.run(boxed(0..10, |i| i));
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = Pool::new(3);
        let mut tasks = boxed(0..8, |i| i);
        tasks.insert(
            4,
            Box::new(|| -> usize { panic!("task exploded on purpose") }) as Task<usize>,
        );
        let r = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        let payload = r.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("(non-str payload)");
        assert!(msg.contains("exploded"), "unexpected payload: {msg}");
        // The pool survives a panicking batch.
        let out = pool.run(boxed(0..4, |i| i));
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nested_run_from_within_a_task_does_not_deadlock() {
        let pool = Arc::new(Pool::new(2));
        let outer: Vec<Task<u64>> = (0..4)
            .map(|o| {
                let pool = Arc::clone(&pool);
                Box::new(move || {
                    let inner = pool.run(
                        (0..8)
                            .map(|i| Box::new(move || (o * 8 + i) as u64) as Task<u64>)
                            .collect(),
                    );
                    inner.iter().sum()
                }) as Task<u64>
            })
            .collect();
        let out = pool.run(outer);
        assert_eq!(out.iter().sum::<u64>(), (0..32u64).sum());
    }

    #[test]
    fn nested_run_on_global_pool() {
        let outer: Vec<Task<usize>> = (0..3)
            .map(|o| {
                Box::new(move || {
                    global()
                        .run(
                            (0..5usize)
                                .map(|i| Box::new(move || o + i) as Task<usize>)
                                .collect(),
                        )
                        .len()
                }) as Task<usize>
            })
            .collect();
        let out = global().run(outer);
        assert_eq!(out, vec![5, 5, 5]);
    }

    #[test]
    fn threads_env_parsing() {
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("0")), Some(1)); // clamped
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn heavier_tasks_still_balance() {
        // Mixed costs: the long task should not serialize the batch on
        // a multi-thread pool (smoke check that stealing happens; exact
        // timing is not asserted to keep CI stable).
        let pool = Pool::new(4);
        let out = pool.run(boxed(0..64, |i| {
            let spins = if i == 0 { 200_000 } else { 1_000 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(k));
            }
            acc
        }));
        assert_eq!(out.len(), 64);
    }
}
