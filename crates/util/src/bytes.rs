//! A tiny byte-buffer pair replacing the `bytes` crate.
//!
//! [`BytesMut`] is an append-only builder with big-endian `put_*`
//! writers; [`Bytes`] is a cheaply cloneable, sliceable view with
//! cursor-style `get_*` readers. Only the surface the kernel-image wire
//! format needs is implemented.
//!
//! # Examples
//!
//! ```
//! use util::bytes::{Bytes, BytesMut};
//!
//! let mut b = BytesMut::new();
//! b.put_u32(0xDEAD_BEEF);
//! b.put_slice(b"hi");
//! let mut wire: Bytes = b.freeze();
//! assert_eq!(wire.remaining(), 6);
//! assert_eq!(wire.get_u32(), 0xDEAD_BEEF);
//! assert_eq!(&wire[..], b"hi");
//! ```

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer with a read cursor.
///
/// Cloning and [`slice`](Bytes::slice) share the underlying allocation.
/// The `get_*` methods read big-endian values and advance the view, so
/// a `Bytes` doubles as a wire-format cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static slice (copies it; the name mirrors the `bytes`
    /// crate for drop-in compatibility).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Bytes remaining ahead of the cursor.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Bytes remaining ahead of the cursor (alias of [`len`](Self::len)
    /// matching the `bytes::Buf` vocabulary).
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// A sub-view of the remaining bytes; shares the allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// Advances past `len` bytes, returning them as a shared sub-view.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.start += len;
        out
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underflow reading {n} bytes");
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on underflow (as do all `get_*` readers).
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// An append-only byte builder with big-endian `put_*` writers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0x0304_0506);
        b.put_u64(0x0708_090A_0B0C_0D0E);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x0304_0506);
        assert_eq!(r.get_u64(), 0x0708_090A_0B0C_0D0E);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    fn slices_share_and_compare_by_content() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = a.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(mid, Bytes::from(vec![2, 3, 4]));
        let sub = mid.slice(1..2);
        assert_eq!(&sub[..], &[3]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        Bytes::from(vec![1]).get_u32();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_slice_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
