//! Seeded pseudo-random generation: SplitMix64 seeding feeding a
//! xoshiro256++ core.
//!
//! This replaces the `rand` crate for every stochastic element of the
//! simulator. The generator is deterministic (a fixed seed always
//! yields the same sequence), cheap (a few arithmetic ops per draw) and
//! has no global state.
//!
//! # Examples
//!
//! ```
//! use util::rng::Rng64;
//!
//! let mut a = Rng64::seed(42);
//! let mut b = Rng64::seed(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// Advances a SplitMix64 state and returns the next output.
///
/// Used to expand one 64-bit seed into the xoshiro state and useful on
/// its own for hash-mixing.
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Collapses a seed plus an ordered label path into one well-mixed
/// 64-bit stream seed.
///
/// This is the stateless counterpart of [`Rng64::fork`]: instead of
/// advancing a shared generator (whose draw order would then depend on
/// simulation event order), callers hash `(seed, labels...)` and get
/// the same value no matter when — or on which thread — they ask.
/// Distinct label paths give decorrelated streams; the same path always
/// gives the same stream.
///
/// # Examples
///
/// ```
/// use util::rng::stream_seed;
///
/// let a = stream_seed(42, &[1, 2, 3]);
/// assert_eq!(a, stream_seed(42, &[1, 2, 3]));
/// assert_ne!(a, stream_seed(42, &[3, 2, 1])); // order matters
/// assert_ne!(a, stream_seed(43, &[1, 2, 3])); // seed matters
/// ```
pub fn stream_seed(seed: u64, labels: &[u64]) -> u64 {
    let mut state = seed;
    let mut h = split_mix64(&mut state);
    for &label in labels {
        state = h ^ label;
        h = split_mix64(&mut state);
    }
    h
}

/// A single uniform `f64` in `[0, 1)` drawn statelessly from a seed and
/// a label path (see [`stream_seed`]). Same precision as
/// [`Rng64::unit_f64`].
#[inline]
pub fn stream_unit(seed: u64, labels: &[u64]) -> f64 {
    (stream_seed(seed, labels) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A xoshiro256++ generator with convenience range/float helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

// The raw xoshiro state serializes so snapshot/restore can capture a
// generator mid-stream — a restored generator continues the exact draw
// sequence the original would have produced.
crate::json_struct!(Rng64 { s });

impl Rng64 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 output is never all-zero across four draws, so the
        // xoshiro state is always valid.
        Rng64 {
            s: [
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator, labeled by `stream`.
    pub fn fork(&mut self, stream: u64) -> Rng64 {
        let base = self.next_u64();
        Rng64::seed(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform value in `[lo, hi]` (inclusive), bias-free.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        // Rejection sampling over the largest multiple of `span`.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or the bounds are not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range {lo}..{hi}"
        );
        let v = lo + self.unit_f64() * (hi - lo);
        // Guard the (theoretically possible) rounding up to `hi`.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        self.unit_f64() < p
    }

    /// A vector of `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.range_u64(0, 255) as u8).collect()
    }

    /// Exponential draw with the given `rate` (mean `1 / rate`), via
    /// inversion. The backbone of open-loop Poisson arrival processes:
    /// summing draws at a fixed rate yields Poisson arrival timestamps.
    ///
    /// The result is always finite and strictly positive: `unit_f64`
    /// never returns 1.0, so `ln` never sees zero, and a zero draw is
    /// clamped to the smallest positive double.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn exp_f64(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive: {rate}"
        );
        let draw = -(1.0 - self.unit_f64()).ln() / rate;
        draw.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_fixed_sequence() {
        let mut a = Rng64::seed(1);
        let mut b = Rng64::seed(1);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_values() {
        // Reference vector from the SplitMix64 paper implementation.
        let mut s = 1234567u64;
        assert_eq!(split_mix64(&mut s), 6457827717110365317);
        assert_eq!(split_mix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn ranges_hit_both_endpoints() {
        let mut r = Rng64::seed(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match r.range_u64(5, 8) {
                5 => seen_lo = true,
                8 => seen_hi = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn unit_f64_stays_in_bounds() {
        let mut r = Rng64::seed(3);
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = Rng64::seed(4);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn stream_seed_is_deterministic_and_label_sensitive() {
        let a = stream_seed(7, &[10, 20]);
        assert_eq!(a, stream_seed(7, &[10, 20]));
        assert_ne!(a, stream_seed(7, &[20, 10]), "label order must matter");
        assert_ne!(a, stream_seed(7, &[10, 21]));
        assert_ne!(a, stream_seed(8, &[10, 20]));
        assert_ne!(a, stream_seed(7, &[10, 20, 0]), "path length must matter");
    }

    #[test]
    fn stream_unit_is_uniform_enough() {
        // Crude decorrelation check: neighbouring label paths should
        // not produce clustered values.
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let v = stream_unit(42, &[1, i, 3]);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean drifted: {mean}");
    }

    #[test]
    fn exp_draws_match_the_configured_mean() {
        let mut r = Rng64::seed(11);
        let rate = 250.0;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp_f64(rate)).sum();
        let mean = sum / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean} vs expected {expected}"
        );
        let mut r = Rng64::seed(12);
        assert!((0..10_000).all(|_| r.exp_f64(1e9) > 0.0));
    }

    #[test]
    fn forks_are_reproducible_and_decorrelated() {
        let mut p1 = Rng64::seed(9);
        let mut p2 = Rng64::seed(9);
        let mut c1 = p1.fork(1);
        let mut c2 = p2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut d = Rng64::seed(9).fork(2);
        assert_ne!(c1.next_u64(), d.next_u64());
    }
}
