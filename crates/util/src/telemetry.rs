//! Zero-dependency telemetry primitives: trace events, a bounded
//! ring-buffer tracer, a per-component metric registry, and a Chrome
//! trace-event exporter.
//!
//! This module is deliberately unit-agnostic — timestamps are raw `u64`
//! picosecond counts so that `util` stays free of `sim-core` types. The
//! typed, `Picos`-aware facade lives in `sim_core::probe`; simulation
//! code never constructs [`TraceEvent`]s directly.
//!
//! Three pieces:
//!
//! * [`EventTracer`] — a bounded ring buffer of [`TraceEvent`]s
//!   (spans and instants on named [`Track`]s). When full, the oldest
//!   events are overwritten and counted in
//!   [`dropped`](EventTracer::dropped), so a runaway workload can never
//!   exhaust memory.
//! * [`MetricSet`] — a sorted registry of named [`MetricValue`]s:
//!   monotonic counters, `f64` gauges, and log2-bucket latency
//!   histograms ([`LatencyHistogram`]) with derived p50/p90/p99.
//!   Serialization is key-sorted and byte-stable across runs and
//!   thread counts.
//! * [`chrome_trace`] — renders a slice of events as Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`, one
//!   named thread per [`Track`].

use std::collections::BTreeMap;

use crate::json::{FromJson, Json, JsonError, ToJson};

/// A named horizontal lane in the exported trace — e.g. PRAM partition
/// 3 of channel 0, PE 7, or the staging datapath.
///
/// Tracks are cheap value types (`&'static str` group + index) so
/// recording an event never allocates for the track identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Component family, e.g. `"pe"`, `"partition"`, `"rdb"`.
    pub group: &'static str,
    /// Instance within the family (PE index, partition number, …).
    pub index: u32,
}

impl Track {
    /// A track for instance `index` of component family `group`.
    pub const fn new(group: &'static str, index: u32) -> Self {
        Track { group, index }
    }

    /// Human-readable lane name, `"group/index"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.group, self.index)
    }
}

/// One recorded event: a span when `dur_ps > 0`, an instant otherwise.
///
/// Timestamps are picoseconds from simulation time zero. `args` carries
/// small typed payloads (byte counts, row numbers) without allocation
/// for the names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time in picoseconds.
    pub ts_ps: u64,
    /// Duration in picoseconds; `0` marks an instant event.
    pub dur_ps: u64,
    /// Lane the event belongs to.
    pub track: Track,
    /// Event name, e.g. `"read_burst"`.
    pub name: &'static str,
    /// Small numeric payload, e.g. `[("bytes", 64)]`.
    pub args: Vec<(&'static str, u64)>,
}

/// Bounded ring buffer of [`TraceEvent`]s.
///
/// `record` is O(1) and never grows past the configured capacity; once
/// full, the oldest event is overwritten and [`dropped`](Self::dropped)
/// incremented.
#[derive(Debug)]
pub struct EventTracer {
    capacity: usize,
    events: Vec<TraceEvent>,
    cursor: usize,
    recorded: u64,
    dropped: u64,
}

impl EventTracer {
    /// A tracer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventTracer {
            capacity,
            events: Vec::new(),
            cursor: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Records one event, overwriting the oldest if the buffer is full.
    pub fn record(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else if self.capacity == 0 {
            self.dropped += 1;
        } else {
            self.events[self.cursor] = ev;
            self.cursor = (self.cursor + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever offered to [`record`](Self::record).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the tracer, returning the surviving events in a
    /// deterministic order (by time, then track, then name, then
    /// duration, then args — a total order, so the output is a pure
    /// function of the event *set*, independent of recording order).
    pub fn finish(self) -> Vec<TraceEvent> {
        let mut events = self.events;
        events.sort_by(|a, b| {
            (a.ts_ps, a.track, a.name, a.dur_ps, &a.args)
                .cmp(&(b.ts_ps, b.track, b.name, b.dur_ps, &b.args))
        });
        events
    }
}

/// Number of log2(ns) latency buckets — covers 1 ns up to ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log2-bucketed latency histogram over nanoseconds.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` ns; quantiles report
/// the conservative (upper) bound of the containing bucket, so they are
/// a pure function of the bucket counts and byte-stable under
/// serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample given in picoseconds (sub-ns samples
    /// land in the first bucket).
    pub fn record_ps(&mut self, ps: u64) {
        let ns = (ps / 1_000).max(1);
        let idx = (63 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper-bound estimate (in ns) of the `q`-quantile.
    ///
    /// `q` is clamped to `0.0..=1.0` (NaN reads as 0, i.e. the
    /// minimum); the rank is clamped to `1..=count`, so every `q` maps
    /// to an occupied bucket. Returns 0 for an empty histogram; a
    /// histogram whose samples all share one bucket reports that
    /// bucket's upper bound for *every* quantile.
    ///
    /// # Error bound
    ///
    /// Samples land in log2 buckets — bucket `i` holds `[2^i, 2^(i+1))`
    /// ns — and the quantile reports the *upper* bound `2^(i+1)` of the
    /// bucket containing the rank. The reported value therefore always
    /// over-estimates the true sample quantile `v` by at most 2x:
    /// `v < reported <= 2 * v`. The one exception is the last bucket,
    /// where [`record_ps`](Self::record_ps) clamps samples beyond
    /// `2^40` ns (~18 minutes), so `2^40` can under-estimate.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = (((self.count as f64) * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        // Unreachable when `count == sum(buckets)` (rank <= count), but
        // a hand-edited histogram may claim more samples than its
        // buckets hold: saturate at the histogram ceiling.
        1u64 << HISTOGRAM_BUCKETS
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Non-zero buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

impl ToJson for LatencyHistogram {
    fn to_json(&self) -> Json {
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(i, c)| Json::Arr(vec![Json::U64(i as u64), Json::U64(c)]))
            .collect();
        Json::Obj(vec![
            ("count".into(), Json::U64(self.count)),
            ("buckets".into(), Json::Arr(buckets)),
            ("p50_ns".into(), Json::U64(self.quantile_ns(0.50))),
            ("p90_ns".into(), Json::U64(self.quantile_ns(0.90))),
            ("p99_ns".into(), Json::U64(self.quantile_ns(0.99))),
        ])
    }
}

impl FromJson for LatencyHistogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // p50/p90/p99 are derived values: ignored on parse, re-derived
        // on serialize, so round trips stay byte-stable.
        let mut h = LatencyHistogram::new();
        h.count = crate::json::field(v, "count")?;
        let buckets = v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("histogram missing buckets array"))?;
        for pair in buckets {
            let pair = pair
                .as_arr()
                .ok_or_else(|| JsonError::new("histogram bucket is not a pair"))?;
            let (i, c) = match pair {
                [i, c] => (
                    i.as_u64()
                        .ok_or_else(|| JsonError::new("bucket index not a u64"))?,
                    c.as_u64()
                        .ok_or_else(|| JsonError::new("bucket count not a u64"))?,
                ),
                _ => return Err(JsonError::new("histogram bucket is not a pair")),
            };
            if i as usize >= HISTOGRAM_BUCKETS {
                return Err(JsonError::new("bucket index out of range"));
            }
            h.buckets[i as usize] = c;
        }
        Ok(h)
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written scalar (e.g. IPC, utilization).
    Gauge(f64),
    /// Log2-bucket latency distribution (boxed: the bucket array is two
    /// orders of magnitude larger than the scalar variants).
    Histogram(Box<LatencyHistogram>),
}

impl ToJson for MetricValue {
    fn to_json(&self) -> Json {
        match self {
            MetricValue::Counter(c) => Json::U64(*c),
            MetricValue::Gauge(g) => Json::F64(*g),
            MetricValue::Histogram(h) => h.to_json(),
        }
    }
}

impl FromJson for MetricValue {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::U64(c) => Ok(MetricValue::Counter(*c)),
            Json::I64(c) => Ok(MetricValue::Counter(*c as u64)),
            Json::F64(g) => Ok(MetricValue::Gauge(*g)),
            Json::Obj(_) => Ok(MetricValue::Histogram(Box::new(
                LatencyHistogram::from_json(v)?,
            ))),
            other => Err(JsonError::new(format!(
                "expected metric value, got {}",
                other.kind()
            ))),
        }
    }
}

/// A sorted name → [`MetricValue`] registry.
///
/// Names are dotted paths, `component.metric` (e.g.
/// `"pram.rdb_hits"`, `"pe.ipc"`). The backing map is a `BTreeMap`, so
/// iteration — and therefore JSON output — is always key-sorted and
/// byte-stable regardless of registration order or thread count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricSet {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a non-counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += delta,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name` to `v` (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.entries.insert(name.to_string(), MetricValue::Gauge(v));
    }

    /// Records a latency sample (picoseconds) into histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a non-histogram.
    pub fn record_latency_ps(&mut self, name: &str, ps: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Box::new(LatencyHistogram::new())))
        {
            MetricValue::Histogram(h) => h.record_ps(ps),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Counter value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Gauge value, if `name` is a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Histogram, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Key-sorted iteration over all metrics.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`: counters and histograms accumulate,
    /// gauges sum (a sweep-aggregate gauge is a total, not an average).
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, value) in &other.entries {
            match (self.entries.get_mut(name), value) {
                (None, v) => {
                    self.entries.insert(name.clone(), v.clone());
                }
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a += b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (Some(a), b) => panic!("metric {name} kind mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}

impl ToJson for MetricSet {
    fn to_json(&self) -> Json {
        // BTreeMap iteration is key-sorted, so the object is
        // deterministic by construction.
        Json::Obj(
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        )
    }
}

impl FromJson for MetricSet {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let Json::Obj(pairs) = v else {
            return Err(JsonError::new(format!(
                "expected metrics object, got {}",
                v.kind()
            )));
        };
        let mut set = MetricSet::new();
        for (name, value) in pairs {
            set.entries.insert(
                name.clone(),
                MetricValue::from_json(value).map_err(|e| e.context(name))?,
            );
        }
        Ok(set)
    }
}

/// Renders events as a Chrome trace-event JSON array (the format
/// Perfetto and `chrome://tracing` load).
///
/// Every distinct [`Track`] becomes one named thread (a `"M"`
/// `thread_name` metadata record), spans become `"X"` complete events
/// and zero-duration events become `"i"` instants, all under a single
/// process. Timestamps are microseconds (the format's native unit),
/// emitted in nondecreasing order.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    const PID: u64 = 1;
    let us = |ps: u64| Json::F64(ps as f64 / 1_000_000.0);

    let mut tracks: Vec<Track> = events.iter().map(|e| e.track).collect();
    tracks.sort();
    tracks.dedup();
    let tid_of =
        |t: Track| -> u64 { tracks.binary_search(&t).expect("track was collected") as u64 + 1 };

    let mut out = Vec::with_capacity(events.len() + tracks.len() + 1);
    out.push(Json::Obj(vec![
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::U64(PID)),
        ("tid".into(), Json::U64(0)),
        ("name".into(), Json::Str("process_name".into())),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str("dramless-sim".into()))]),
        ),
    ]));
    for &t in &tracks {
        out.push(Json::Obj(vec![
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::U64(PID)),
            ("tid".into(), Json::U64(tid_of(t))),
            ("name".into(), Json::Str("thread_name".into())),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str(t.label()))]),
            ),
        ]));
    }

    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by(|a, b| {
        (a.ts_ps, a.track, a.name, a.dur_ps, &a.args)
            .cmp(&(b.ts_ps, b.track, b.name, b.dur_ps, &b.args))
    });
    for e in ordered {
        let mut fields = vec![
            ("name".into(), Json::Str(e.name.into())),
            (
                "ph".into(),
                Json::Str(if e.dur_ps > 0 { "X" } else { "i" }.into()),
            ),
            ("ts".into(), us(e.ts_ps)),
        ];
        if e.dur_ps > 0 {
            fields.push(("dur".into(), us(e.dur_ps)));
        } else {
            fields.push(("s".into(), Json::Str("t".into())));
        }
        fields.push(("pid".into(), Json::U64(PID)));
        fields.push(("tid".into(), Json::U64(tid_of(e.track))));
        if !e.args.is_empty() {
            fields.push((
                "args".into(),
                Json::Obj(
                    e.args
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), Json::U64(*v)))
                        .collect(),
                ),
            ));
        }
        out.push(Json::Obj(fields));
    }
    Json::Arr(out)
}

// ---------------------------------------------------------------------
// Latency attribution: typed causes, per-request spans, and the
// collector that aggregates them into scope totals, a sim-time window
// series, and a top-K tail-forensics list.
// ---------------------------------------------------------------------

/// Number of attribution causes (the length of [`Cause::ALL`]).
pub const NUM_CAUSES: usize = 11;

/// A typed cause a slice of request wall time is attributed to.
///
/// The variants cover every place the simulated request paths spend
/// time: controller-side queueing and phase timing, the PRAM write wall,
/// host software, media access, and resilience stalls. The enum order is
/// the serialization order and is append-only — report JSON keys are
/// derived from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cause {
    /// Waiting for a serialized resource before service starts: the
    /// channel serialization point of a non-interleaving PRAM
    /// scheduler, or a full SSD command-context queue.
    QueueWait,
    /// Waiting for a busy partition/module before a phase could issue.
    PartitionConflict,
    /// Blocked behind an in-flight cell program (the PRAM write wall —
    /// a posted write's program buffer was still busy).
    EraseBlocked,
    /// Row-buffer-resident access time: both address phases were
    /// skipped (RAB + RDB hit) and the data came from the buffer.
    BufferHit,
    /// Array access time: address phases plus cell sensing (and fixed
    /// command/sync overheads on the device path).
    ArrayAccess,
    /// Data transfer over the channel DQ bus (or register writes of the
    /// overlay-window sequence, which share it).
    DataBurst,
    /// Waiting for the shared DQ bus before a transfer could start.
    BurstWait,
    /// Host software: storage-stack submission, copies, deserialize,
    /// doorbells, and SSD command processing.
    SoftwareStack,
    /// Storage-media access time (flash/DRAM behind an SSD or page
    /// store), as seen by the requester.
    Media,
    /// DMA transfer across a PCIe link.
    Dma,
    /// ECC/retry/retirement stalls: time added by fault recovery.
    RetryStall,
}

impl Cause {
    /// Every cause, in serialization order.
    pub const ALL: [Cause; NUM_CAUSES] = [
        Cause::QueueWait,
        Cause::PartitionConflict,
        Cause::EraseBlocked,
        Cause::BufferHit,
        Cause::ArrayAccess,
        Cause::DataBurst,
        Cause::BurstWait,
        Cause::SoftwareStack,
        Cause::Media,
        Cause::Dma,
        Cause::RetryStall,
    ];

    /// Stable snake_case key used in report JSON and CLI output.
    pub fn key(self) -> &'static str {
        match self {
            Cause::QueueWait => "queue_wait",
            Cause::PartitionConflict => "partition_conflict",
            Cause::EraseBlocked => "erase_blocked",
            Cause::BufferHit => "buffer_hit",
            Cause::ArrayAccess => "array_access",
            Cause::DataBurst => "data_burst",
            Cause::BurstWait => "burst_wait",
            Cause::SoftwareStack => "software_stack",
            Cause::Media => "media",
            Cause::Dma => "dma",
            Cause::RetryStall => "retry_stall",
        }
    }

    /// Inverse of [`key`](Self::key).
    pub fn from_key(key: &str) -> Option<Cause> {
        Cause::ALL.into_iter().find(|c| c.key() == key)
    }
}

/// Which end-to-end phase of a run a request belongs to. Tagged by the
/// *issuing* layer (offload loop, stager, execution engine) before the
/// serviced request records its span, so layered records — an SSD read
/// inside a staging chunk, a PRAM word request inside an execution
/// memory operation — share the same `(scope, index)` coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttrScope {
    /// Initial image placement into the backend.
    Offload,
    /// Bulk staging into accelerator memory.
    StageIn,
    /// Kernel execution. The request index is the backend-request
    /// ordinal — the same unit `replay --window` windows are in.
    Exec,
    /// Result write-back to storage.
    StageOut,
}

/// Number of attribution scopes.
pub const NUM_SCOPES: usize = 4;

impl AttrScope {
    /// Every scope, in serialization order.
    pub const ALL: [AttrScope; NUM_SCOPES] = [
        AttrScope::Offload,
        AttrScope::StageIn,
        AttrScope::Exec,
        AttrScope::StageOut,
    ];

    /// Stable snake_case key used in report JSON and CLI output.
    pub fn key(self) -> &'static str {
        match self {
            AttrScope::Offload => "offload",
            AttrScope::StageIn => "stage_in",
            AttrScope::Exec => "exec",
            AttrScope::StageOut => "stage_out",
        }
    }

    /// Inverse of [`key`](Self::key).
    pub fn from_key(key: &str) -> Option<AttrScope> {
        AttrScope::ALL.into_iter().find(|s| s.key() == key)
    }

    /// Inverse of `as u8` (the atomic-cursor encoding).
    pub fn from_u8(v: u8) -> AttrScope {
        AttrScope::ALL[(v as usize).min(NUM_SCOPES - 1)]
    }
}

/// The per-request latency decomposition: picoseconds attributed to
/// each [`Cause`]. A conserving span's causes sum exactly to the
/// request's wall time — accumulation sites guarantee this by bucketing
/// every advance of a monotone time cursor, and the collector counts
/// any violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySpan {
    causes: [u64; NUM_CAUSES],
}

impl LatencySpan {
    /// An empty span.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes `ps` picoseconds to `cause`.
    #[inline]
    pub fn add(&mut self, cause: Cause, ps: u64) {
        self.causes[cause as usize] += ps;
    }

    /// Picoseconds attributed to `cause`.
    pub fn get(&self, cause: Cause) -> u64 {
        self.causes[cause as usize]
    }

    /// Sum over all causes.
    pub fn total(&self) -> u64 {
        self.causes.iter().sum()
    }

    /// The raw cause array, indexed by `Cause as usize`.
    pub fn causes(&self) -> &[u64; NUM_CAUSES] {
        &self.causes
    }

    /// Adds every cause of `other` into `self`.
    pub fn merge(&mut self, other: &LatencySpan) {
        for (a, b) in self.causes.iter_mut().zip(other.causes.iter()) {
            *a += b;
        }
    }
}

/// One attributed request: where it ran, which request it was, what
/// serviced it, when, for how long, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrRecord {
    /// Run phase the request belongs to.
    pub scope: AttrScope,
    /// Request ordinal within the scope (for [`AttrScope::Exec`], the
    /// backend-request ordinal `replay --window` understands).
    pub index: u64,
    /// The servicing site, e.g. `"pram.read"` or `"staging.chunk"`.
    pub source: &'static str,
    /// Issue time in picoseconds.
    pub start_ps: u64,
    /// Wall time from issue to completion in picoseconds.
    pub dur_ps: u64,
    /// The cause decomposition; conserving when it sums to `dur_ps`.
    pub span: LatencySpan,
    /// Owning tenant on multi-tenant (fleet) runs; `None` on
    /// single-workload runs, which keeps their report bytes unchanged.
    pub tenant: Option<u32>,
}

/// Serializes a cause array as a key→ps object (non-zero entries only,
/// in [`Cause::ALL`] order — deterministic and byte-stable).
fn causes_to_json(causes: &[u64; NUM_CAUSES]) -> Json {
    Json::Obj(
        Cause::ALL
            .into_iter()
            .filter(|&c| causes[c as usize] > 0)
            .map(|c| (c.key().to_string(), Json::U64(causes[c as usize])))
            .collect(),
    )
}

fn causes_from_json(v: &Json) -> Result<[u64; NUM_CAUSES], JsonError> {
    let Json::Obj(pairs) = v else {
        return Err(JsonError::new(format!(
            "expected causes object, got {}",
            v.kind()
        )));
    };
    let mut causes = [0u64; NUM_CAUSES];
    for (k, v) in pairs {
        let c = Cause::from_key(k).ok_or_else(|| JsonError::new(format!("unknown cause `{k}`")))?;
        causes[c as usize] = v
            .as_u64()
            .ok_or_else(|| JsonError::new(format!("cause `{k}` is not a u64")))?;
    }
    Ok(causes)
}

/// Default number of worst requests kept for tail forensics.
pub const DEFAULT_TOP_K: usize = 8;
/// Initial sim-time window width (50 µs) of the attribution series.
pub const DEFAULT_WINDOW_PS: u64 = 50_000_000;
/// Bucket-count bound of [`WindowSeries`]; beyond it the width doubles.
pub const MAX_WINDOW_BUCKETS: usize = 512;

/// One sim-time bucket of the attribution series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct WindowBucket {
    count: u64,
    dur_ps: u64,
    causes: [u64; NUM_CAUSES],
}

/// Sim-time windowed series of request starts: per-bucket request
/// count, wall time and cause sums — the data behind rate and latency
/// curves (e.g. the erase-blocking stall cliff, which shows up as
/// periodic buckets dominated by [`Cause::EraseBlocked`]).
///
/// Bounded by construction: when a request starts beyond
/// [`MAX_WINDOW_BUCKETS`] windows, the width doubles and existing
/// buckets fold pairwise, so memory stays fixed while the series keeps
/// covering the whole run. Widths are powers of two times the initial
/// width, so the final binning is a pure function of the recorded
/// requests (deterministic regardless of arrival order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSeries {
    width_ps: u64,
    buckets: Vec<WindowBucket>,
}

impl WindowSeries {
    /// An empty series with the given initial bucket width.
    pub fn new(width_ps: u64) -> Self {
        WindowSeries {
            width_ps: width_ps.max(1),
            buckets: Vec::new(),
        }
    }

    /// Folds a request starting at `start_ps` into its bucket.
    pub fn add(&mut self, start_ps: u64, dur_ps: u64, causes: &[u64; NUM_CAUSES]) {
        let mut idx = (start_ps / self.width_ps) as usize;
        while idx >= MAX_WINDOW_BUCKETS {
            self.fold();
            idx = (start_ps / self.width_ps) as usize;
        }
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, WindowBucket::default());
        }
        let b = &mut self.buckets[idx];
        b.count += 1;
        b.dur_ps += dur_ps;
        for (a, c) in b.causes.iter_mut().zip(causes.iter()) {
            *a += c;
        }
    }

    /// Doubles the window width, folding buckets pairwise.
    fn fold(&mut self) {
        self.width_ps *= 2;
        let mut folded = Vec::with_capacity(self.buckets.len().div_ceil(2));
        for pair in self.buckets.chunks(2) {
            let mut b = pair[0];
            if let Some(hi) = pair.get(1) {
                b.count += hi.count;
                b.dur_ps += hi.dur_ps;
                for (a, c) in b.causes.iter_mut().zip(hi.causes.iter()) {
                    *a += c;
                }
            }
            folded.push(b);
        }
        self.buckets = folded;
    }

    /// The current bucket width in picoseconds.
    pub fn width_ps(&self) -> u64 {
        self.width_ps
    }
}

/// Aggregates [`AttrRecord`]s into scope totals, the window series and
/// the top-K worst-request list, enforcing the conservation invariant
/// per record.
#[derive(Debug)]
pub struct AttrCollector {
    records: u64,
    violations: u64,
    wall_ps: u64,
    attributed_ps: u64,
    scope_records: [u64; NUM_SCOPES],
    scope_wall_ps: [u64; NUM_SCOPES],
    scope_causes: [[u64; NUM_CAUSES]; NUM_SCOPES],
    top_k: usize,
    top: Vec<AttrRecord>,
    windows: WindowSeries,
}

impl Default for AttrCollector {
    fn default() -> Self {
        Self::new(DEFAULT_TOP_K, DEFAULT_WINDOW_PS)
    }
}

impl AttrCollector {
    /// A collector keeping the `top_k` worst requests and bucketing the
    /// series at `window_ps` initially.
    pub fn new(top_k: usize, window_ps: u64) -> Self {
        AttrCollector {
            records: 0,
            violations: 0,
            wall_ps: 0,
            attributed_ps: 0,
            scope_records: [0; NUM_SCOPES],
            scope_wall_ps: [0; NUM_SCOPES],
            scope_causes: [[0; NUM_CAUSES]; NUM_SCOPES],
            top_k,
            top: Vec::new(),
            windows: WindowSeries::new(window_ps),
        }
    }

    /// Folds one attributed request into the aggregate.
    pub fn record(&mut self, rec: AttrRecord) {
        let attributed = rec.span.total();
        self.records += 1;
        self.wall_ps += rec.dur_ps;
        self.attributed_ps += attributed;
        if attributed != rec.dur_ps {
            debug_assert_eq!(
                attributed, rec.dur_ps,
                "non-conserving {}: {:?}",
                rec.source, rec.span
            );
            self.violations += 1;
        }
        let s = rec.scope as usize;
        self.scope_records[s] += 1;
        self.scope_wall_ps[s] += rec.dur_ps;
        for (a, c) in self.scope_causes[s].iter_mut().zip(rec.span.causes.iter()) {
            *a += c;
        }
        self.windows
            .add(rec.start_ps, rec.dur_ps, rec.span.causes());
        // Top-K, worst first. Ties break toward the earlier request so
        // the list is a pure function of the record set.
        let key = |r: &AttrRecord| (std::cmp::Reverse(r.dur_ps), r.start_ps, r.scope, r.index);
        if self.top.len() < self.top_k || key(&rec) < key(self.top.last().expect("non-empty")) {
            let pos = self.top.partition_point(|r| key(r) <= key(&rec));
            self.top.insert(pos, rec);
            self.top.truncate(self.top_k);
        }
    }

    /// Records recorded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Drains the collector into its serializable summary.
    pub fn summarize(&self) -> AttrSummary {
        AttrSummary {
            records: self.records,
            violations: self.violations,
            wall_ps: self.wall_ps,
            attributed_ps: self.attributed_ps,
            scopes: AttrScope::ALL
                .into_iter()
                .filter(|&s| self.scope_records[s as usize] > 0)
                .map(|s| ScopeSummary {
                    scope: s,
                    records: self.scope_records[s as usize],
                    wall_ps: self.scope_wall_ps[s as usize],
                    causes: self.scope_causes[s as usize],
                })
                .collect(),
            top: self
                .top
                .iter()
                .map(|r| TopRequest {
                    scope: r.scope,
                    index: r.index,
                    source: r.source.to_string(),
                    start_ps: r.start_ps,
                    dur_ps: r.dur_ps,
                    causes: r.span.causes,
                    tenant: r.tenant,
                })
                .collect(),
            windows: WindowSummary {
                width_ps: self.windows.width_ps,
                buckets: self
                    .windows
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.count > 0)
                    .map(|(i, b)| WindowRow {
                        index: i as u64,
                        count: b.count,
                        wall_ps: b.dur_ps,
                        causes: b.causes,
                    })
                    .collect(),
            },
        }
    }
}

/// Per-scope attribution totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeSummary {
    /// The run phase.
    pub scope: AttrScope,
    /// Requests attributed in this scope.
    pub records: u64,
    /// Total wall time of those requests.
    pub wall_ps: u64,
    /// Cause sums, indexed by `Cause as usize`.
    pub causes: [u64; NUM_CAUSES],
}

/// One tail-forensics entry: a worst request with full attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopRequest {
    /// The run phase.
    pub scope: AttrScope,
    /// Request ordinal within the scope — for [`AttrScope::Exec`] the
    /// window unit of `dramless-sim replay --window`.
    pub index: u64,
    /// The servicing site.
    pub source: String,
    /// Issue time in picoseconds.
    pub start_ps: u64,
    /// Wall time in picoseconds.
    pub dur_ps: u64,
    /// Cause sums, indexed by `Cause as usize`.
    pub causes: [u64; NUM_CAUSES],
    /// Owning tenant on fleet runs. Serialized only when present, so
    /// single-workload reports keep their exact bytes.
    pub tenant: Option<u32>,
}

/// One non-empty bucket of the serialized window series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRow {
    /// Bucket ordinal; the bucket covers
    /// `[index * width_ps, (index + 1) * width_ps)`.
    pub index: u64,
    /// Requests starting in the bucket.
    pub count: u64,
    /// Their summed wall time.
    pub wall_ps: u64,
    /// Their summed causes.
    pub causes: [u64; NUM_CAUSES],
}

/// The serialized window series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSummary {
    /// Final bucket width in picoseconds.
    pub width_ps: u64,
    /// Non-empty buckets in index order.
    pub buckets: Vec<WindowRow>,
}

/// The report's `latency_attribution` block: conservation ledger, scope
/// totals, tail forensics and the sim-time series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSummary {
    /// Attributed requests.
    pub records: u64,
    /// Records whose causes did not sum to their wall time (0 on any
    /// healthy run — the conservation invariant is per-record).
    pub violations: u64,
    /// Summed request wall time.
    pub wall_ps: u64,
    /// Summed attributed time; equals `wall_ps` when conserving.
    pub attributed_ps: u64,
    /// Per-scope totals (scopes with records only, in scope order).
    pub scopes: Vec<ScopeSummary>,
    /// Worst requests, worst first.
    pub top: Vec<TopRequest>,
    /// Sim-time series of request starts.
    pub windows: WindowSummary,
}

impl AttrSummary {
    /// Whether every record's causes summed exactly to its wall time.
    pub fn conserves(&self) -> bool {
        self.violations == 0 && self.attributed_ps == self.wall_ps
    }

    /// Cause sums across all scopes.
    pub fn total_causes(&self) -> [u64; NUM_CAUSES] {
        let mut total = [0u64; NUM_CAUSES];
        for s in &self.scopes {
            for (a, c) in total.iter_mut().zip(s.causes.iter()) {
                *a += c;
            }
        }
        total
    }
}

impl ToJson for AttrSummary {
    fn to_json(&self) -> Json {
        // `causes` is derived (the sum over scopes): ignored on parse,
        // re-derived on serialize, so round trips stay byte-stable.
        Json::Obj(vec![
            ("records".into(), Json::U64(self.records)),
            ("violations".into(), Json::U64(self.violations)),
            ("wall_ps".into(), Json::U64(self.wall_ps)),
            ("attributed_ps".into(), Json::U64(self.attributed_ps)),
            ("causes".into(), causes_to_json(&self.total_causes())),
            (
                "scopes".into(),
                Json::Arr(
                    self.scopes
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("scope".into(), Json::Str(s.scope.key().into())),
                                ("records".into(), Json::U64(s.records)),
                                ("wall_ps".into(), Json::U64(s.wall_ps)),
                                ("causes".into(), causes_to_json(&s.causes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "top".into(),
                Json::Arr(
                    self.top
                        .iter()
                        .map(|t| {
                            let mut fields = vec![
                                ("scope".into(), Json::Str(t.scope.key().into())),
                                ("index".into(), Json::U64(t.index)),
                                ("source".into(), Json::Str(t.source.clone())),
                            ];
                            if let Some(tenant) = t.tenant {
                                fields.push(("tenant".into(), Json::U64(u64::from(tenant))));
                            }
                            fields.push(("start_ps".into(), Json::U64(t.start_ps)));
                            fields.push(("dur_ps".into(), Json::U64(t.dur_ps)));
                            fields.push(("causes".into(), causes_to_json(&t.causes)));
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "windows".into(),
                Json::Obj(vec![
                    ("width_ps".into(), Json::U64(self.windows.width_ps)),
                    (
                        "buckets".into(),
                        Json::Arr(
                            self.windows
                                .buckets
                                .iter()
                                .map(|b| {
                                    Json::Obj(vec![
                                        ("index".into(), Json::U64(b.index)),
                                        ("count".into(), Json::U64(b.count)),
                                        ("wall_ps".into(), Json::U64(b.wall_ps)),
                                        ("causes".into(), causes_to_json(&b.causes)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

impl FromJson for AttrSummary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let scope_of = |o: &Json| -> Result<AttrScope, JsonError> {
            let key = o
                .get("scope")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError::new("missing scope key"))?;
            AttrScope::from_key(key).ok_or_else(|| JsonError::new(format!("unknown scope `{key}`")))
        };
        let causes_of = |o: &Json| -> Result<[u64; NUM_CAUSES], JsonError> {
            causes_from_json(
                o.get("causes")
                    .ok_or_else(|| JsonError::new("missing causes"))?,
            )
        };
        let scopes = v
            .get("scopes")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("attribution missing scopes"))?
            .iter()
            .map(|o| {
                Ok(ScopeSummary {
                    scope: scope_of(o)?,
                    records: crate::json::field(o, "records")?,
                    wall_ps: crate::json::field(o, "wall_ps")?,
                    causes: causes_of(o)?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let top = v
            .get("top")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("attribution missing top"))?
            .iter()
            .map(|o| {
                Ok(TopRequest {
                    scope: scope_of(o)?,
                    index: crate::json::field(o, "index")?,
                    source: crate::json::field(o, "source")?,
                    start_ps: crate::json::field(o, "start_ps")?,
                    dur_ps: crate::json::field(o, "dur_ps")?,
                    causes: causes_of(o)?,
                    tenant: match o.get("tenant") {
                        Some(t) => Some(u32::from_json(t)?),
                        None => None,
                    },
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let windows = v
            .get("windows")
            .ok_or_else(|| JsonError::new("attribution missing windows"))?;
        let buckets = windows
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("windows missing buckets"))?
            .iter()
            .map(|o| {
                Ok(WindowRow {
                    index: crate::json::field(o, "index")?,
                    count: crate::json::field(o, "count")?,
                    wall_ps: crate::json::field(o, "wall_ps")?,
                    causes: causes_of(o)?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(AttrSummary {
            records: crate::json::field(v, "records")?,
            violations: crate::json::field(v, "violations")?,
            wall_ps: crate::json::field(v, "wall_ps")?,
            attributed_ps: crate::json::field(v, "attributed_ps")?,
            scopes,
            top,
            windows: WindowSummary {
                width_ps: crate::json::field(windows, "width_ps")?,
                buckets,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, dur: u64, track: Track, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts_ps: ts,
            dur_ps: dur,
            track,
            name,
            args: Vec::new(),
        }
    }

    #[test]
    fn ring_buffer_overwrites_oldest_and_counts_drops() {
        let t0 = Track::new("t", 0);
        let mut tr = EventTracer::new(3);
        for i in 0..5 {
            tr.record(ev(i, 1, t0, "e"));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.recorded(), 5);
        assert_eq!(tr.dropped(), 2);
        let kept: Vec<u64> = tr.finish().iter().map(|e| e.ts_ps).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_tracer_drops_everything() {
        let mut tr = EventTracer::new(0);
        tr.record(ev(0, 1, Track::new("t", 0), "e"));
        assert_eq!(tr.len(), 0);
        assert_eq!(tr.dropped(), 1);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ps(1_500); // 1 ns bucket [1, 2)
        }
        for _ in 0..10 {
            h.record_ps(1_000_000); // 1000 ns -> bucket [512, 1024)
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.50), 2);
        assert_eq!(h.quantile_ns(0.90), 2);
        assert_eq!(h.quantile_ns(0.99), 1024);
        // Empty histogram reports zero.
        assert_eq!(LatencyHistogram::new().quantile_ns(0.5), 0);
    }

    #[test]
    fn histogram_round_trips_byte_stable() {
        let mut h = LatencyHistogram::new();
        h.record_ps(2_500);
        h.record_ps(40_000);
        h.record_ps(7_000_000);
        let json = h.to_json_pretty();
        let back = LatencyHistogram::from_json_str(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn metric_set_is_key_sorted_and_merges() {
        let mut a = MetricSet::new();
        a.add("z.last", 1);
        a.add("a.first", 2);
        a.gauge("m.gauge", 1.5);
        a.record_latency_ps("m.lat", 3_000);
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.first", "m.gauge", "m.lat", "z.last"]);

        let mut b = MetricSet::new();
        b.add("a.first", 5);
        b.gauge("m.gauge", 0.5);
        b.record_latency_ps("m.lat", 3_000);
        a.merge(&b);
        assert_eq!(a.counter("a.first"), Some(7));
        assert_eq!(a.gauge_value("m.gauge"), Some(2.0));
        assert_eq!(a.histogram("m.lat").unwrap().count(), 2);
    }

    #[test]
    fn metric_set_round_trips_byte_stable() {
        let mut m = MetricSet::new();
        m.add("pram.rdb_hits", 42);
        m.gauge("pe.ipc", 0.75);
        m.record_latency_ps("pram.read_ns", 120_000);
        let json = m.to_json_pretty();
        let back = MetricSet::from_json_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn chrome_trace_shape_is_valid() {
        let p0 = Track::new("partition", 0);
        let pe = Track::new("pe", 3);
        let events = vec![
            ev(2_000_000, 1_000_000, pe, "compute"),
            ev(1_000_000, 500_000, p0, "activate"),
            ev(1_500_000, 0, p0, "rdb_hit"),
        ];
        let trace = chrome_trace(&events);
        let arr = trace.as_arr().expect("array of events");
        // 1 process_name + 2 thread_name + 3 events.
        assert_eq!(arr.len(), 6);
        let metas: Vec<&Json> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3);
        // Non-metadata events are ts-ordered and complete/instant.
        let mut last_ts = f64::MIN;
        for e in arr.iter().skip(metas.len()) {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last_ts, "ts regressed");
            last_ts = ts;
            if ph == "X" {
                assert!(e.get("dur").and_then(Json::as_f64).unwrap() > 0.0);
            }
        }
        // Thread names carry the track labels.
        let names: Vec<&str> = metas
            .iter()
            .filter_map(|m| {
                m.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(names.contains(&"partition/0"));
        assert!(names.contains(&"pe/3"));
    }

    #[test]
    fn quantile_edge_behavior_is_defined() {
        // Empty histogram: every quantile, however malformed, is 0.
        let empty = LatencyHistogram::new();
        for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
            assert_eq!(empty.quantile_ns(q), 0);
        }
        // Single-bucket histogram: every quantile is that bucket's
        // upper bound — including out-of-range and NaN q.
        let mut single = LatencyHistogram::new();
        for _ in 0..5 {
            single.record_ps(300_000); // 300 ns -> bucket [256, 512)
        }
        for q in [0.0, 0.25, 0.5, 1.0, -3.0, 7.0, f64::NAN] {
            assert_eq!(single.quantile_ns(q), 512, "q={q}");
        }
        // The documented error bound: reported in (v, 2v] for any
        // in-range sample v.
        let mut h = LatencyHistogram::new();
        h.record_ps(700_000); // 700 ns
        let rep = h.quantile_ns(0.5) as f64;
        assert!(rep > 700.0 && rep <= 1400.0, "{rep}");
    }

    #[test]
    fn merged_quantiles_match_concatenated_samples_within_a_bucket() {
        // Quantile stability under merge: merging two histograms gives
        // exactly the quantiles of the concatenated sample set, because
        // both reduce to the same bucket counts.
        let samples_a: Vec<u64> = (0..400).map(|i| 1_000 * (1 + i % 700)).collect();
        let samples_b: Vec<u64> = (0..100).map(|i| 1_000_000 * (1 + i % 90)).collect();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut concat = LatencyHistogram::new();
        for &s in &samples_a {
            a.record_ps(s);
            concat.record_ps(s);
        }
        for &s in &samples_b {
            b.record_ps(s);
            concat.record_ps(s);
        }
        a.merge(&b);
        assert_eq!(a, concat);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile_ns(q), concat.quantile_ns(q), "q={q}");
        }
        // And the reported p99 bounds the true sample p99 within one
        // log2 bucket (<= 2x, > 1x).
        let mut all: Vec<u64> = samples_a
            .iter()
            .chain(&samples_b)
            .map(|s| s / 1_000)
            .collect();
        all.sort_unstable();
        let true_p99 = all[((all.len() as f64 * 0.99).ceil() as usize).min(all.len()) - 1];
        let rep = a.quantile_ns(0.99);
        assert!(rep > true_p99 && rep <= true_p99 * 2, "{rep} vs {true_p99}");
    }

    #[test]
    fn chrome_trace_is_deterministic_and_escapes_names() {
        let t0 = Track::new("a", 0);
        let t1 = Track::new("b", 1);
        let mut events = vec![
            ev(5, 2, t1, "phase \"two\"\nnewline"),
            ev(5, 2, t0, "x"),
            ev(1, 3, t0, "x"),
            TraceEvent {
                ts_ps: 5,
                dur_ps: 2,
                track: t0,
                name: "x",
                args: vec![("bytes", 64)],
            },
        ];
        let a = crate::json::ToJson::to_json_pretty(&chrome_trace(&events));
        // Any permutation of the same event set renders byte-identically.
        events.reverse();
        let b = crate::json::ToJson::to_json_pretty(&chrome_trace(&events));
        events.swap(0, 2);
        let c = crate::json::ToJson::to_json_pretty(&chrome_trace(&events));
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Special characters in event names are escaped, and the
        // output still parses as JSON.
        assert!(a.contains("phase \\\"two\\\"\\nnewline"));
        Json::parse(&a).expect("escaped trace parses");
    }

    #[test]
    fn latency_span_buckets_and_merges() {
        let mut s = LatencySpan::new();
        s.add(Cause::QueueWait, 10);
        s.add(Cause::ArrayAccess, 30);
        s.add(Cause::ArrayAccess, 5);
        assert_eq!(s.get(Cause::ArrayAccess), 35);
        assert_eq!(s.total(), 45);
        let mut t = LatencySpan::new();
        t.add(Cause::DataBurst, 55);
        s.merge(&t);
        assert_eq!(s.total(), 100);
        assert_eq!(Cause::from_key("erase_blocked"), Some(Cause::EraseBlocked));
        assert_eq!(Cause::from_key("nope"), None);
        for c in Cause::ALL {
            assert_eq!(Cause::from_key(c.key()), Some(c));
        }
        for sc in AttrScope::ALL {
            assert_eq!(AttrScope::from_key(sc.key()), Some(sc));
            assert_eq!(AttrScope::from_u8(sc as u8), sc);
        }
    }

    #[test]
    fn collector_enforces_conservation_and_keeps_worst_requests() {
        let mut col = AttrCollector::new(2, 1_000);
        let rec = |index: u64, dur: u64| {
            let mut span = LatencySpan::new();
            span.add(Cause::Media, dur);
            AttrRecord {
                scope: AttrScope::Exec,
                index,
                source: "test.read",
                start_ps: index * 10,
                dur_ps: dur,
                span,
                tenant: None,
            }
        };
        for (i, d) in [(0, 50), (1, 900), (2, 10), (3, 700)] {
            col.record(rec(i, d));
        }
        let s = col.summarize();
        assert!(s.conserves());
        assert_eq!(s.records, 4);
        assert_eq!(s.wall_ps, 1660);
        assert_eq!(s.top.len(), 2, "top-K is bounded");
        assert_eq!((s.top[0].index, s.top[0].dur_ps), (1, 900));
        assert_eq!((s.top[1].index, s.top[1].dur_ps), (3, 700));
        assert_eq!(s.scopes.len(), 1);
        assert_eq!(s.scopes[0].scope, AttrScope::Exec);
        assert_eq!(s.total_causes()[Cause::Media as usize], 1660);

        // A non-conserving record is counted, not silently absorbed.
        let mut col = AttrCollector::new(2, 1_000);
        let mut bad = rec(9, 100);
        bad.span = LatencySpan::new();
        let summary = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            col.record(bad);
            col.summarize()
        }));
        // Debug builds assert; release builds count the violation.
        if let Ok(s) = summary {
            assert_eq!(s.violations, 1);
            assert!(!s.conserves());
        }
    }

    #[test]
    fn window_series_stays_bounded_by_folding() {
        let mut w = WindowSeries::new(10);
        // Hit a start far beyond the bucket bound: width doubles until
        // the index fits, and earlier mass is preserved.
        let causes = {
            let mut s = LatencySpan::new();
            s.add(Cause::Dma, 7);
            *s.causes()
        };
        w.add(5, 7, &causes);
        w.add(10 * (MAX_WINDOW_BUCKETS as u64) * 8, 7, &causes);
        assert!(w.width_ps() > 10);
        let total: u64 = w.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 2);
        assert!(w.buckets.len() <= MAX_WINDOW_BUCKETS);
        // Deterministic: the same two adds in the other order produce
        // the same series.
        let mut w2 = WindowSeries::new(10);
        w2.add(10 * (MAX_WINDOW_BUCKETS as u64) * 8, 7, &causes);
        w2.add(5, 7, &causes);
        assert_eq!(w, w2);
    }

    #[test]
    fn attr_summary_round_trips_byte_stable() {
        let mut col = AttrCollector::new(3, 500);
        for i in 0..20u64 {
            let mut span = LatencySpan::new();
            span.add(Cause::QueueWait, 3 * i);
            span.add(Cause::ArrayAccess, 100);
            span.add(Cause::RetryStall, if i % 7 == 0 { 40 } else { 0 });
            col.record(AttrRecord {
                scope: if i % 2 == 0 {
                    AttrScope::Exec
                } else {
                    AttrScope::StageIn
                },
                index: i,
                source: "pram.read",
                start_ps: i * 123,
                dur_ps: span.total(),
                span,
                // Exercise both arms of the optional tenant tag: tagged
                // requests round-trip it, untagged ones omit the key.
                tenant: (i % 3 == 0).then_some(i as u32),
            });
        }
        let s = col.summarize();
        assert!(s.conserves());
        let json = crate::json::ToJson::to_json_pretty(&s);
        let back = <AttrSummary as crate::json::FromJson>::from_json_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(crate::json::ToJson::to_json_pretty(&back), json);
    }
}
