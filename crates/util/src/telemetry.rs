//! Zero-dependency telemetry primitives: trace events, a bounded
//! ring-buffer tracer, a per-component metric registry, and a Chrome
//! trace-event exporter.
//!
//! This module is deliberately unit-agnostic — timestamps are raw `u64`
//! picosecond counts so that `util` stays free of `sim-core` types. The
//! typed, `Picos`-aware facade lives in `sim_core::probe`; simulation
//! code never constructs [`TraceEvent`]s directly.
//!
//! Three pieces:
//!
//! * [`EventTracer`] — a bounded ring buffer of [`TraceEvent`]s
//!   (spans and instants on named [`Track`]s). When full, the oldest
//!   events are overwritten and counted in
//!   [`dropped`](EventTracer::dropped), so a runaway workload can never
//!   exhaust memory.
//! * [`MetricSet`] — a sorted registry of named [`MetricValue`]s:
//!   monotonic counters, `f64` gauges, and log2-bucket latency
//!   histograms ([`LatencyHistogram`]) with derived p50/p90/p99.
//!   Serialization is key-sorted and byte-stable across runs and
//!   thread counts.
//! * [`chrome_trace`] — renders a slice of events as Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`, one
//!   named thread per [`Track`].

use std::collections::BTreeMap;

use crate::json::{FromJson, Json, JsonError, ToJson};

/// A named horizontal lane in the exported trace — e.g. PRAM partition
/// 3 of channel 0, PE 7, or the staging datapath.
///
/// Tracks are cheap value types (`&'static str` group + index) so
/// recording an event never allocates for the track identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Component family, e.g. `"pe"`, `"partition"`, `"rdb"`.
    pub group: &'static str,
    /// Instance within the family (PE index, partition number, …).
    pub index: u32,
}

impl Track {
    /// A track for instance `index` of component family `group`.
    pub const fn new(group: &'static str, index: u32) -> Self {
        Track { group, index }
    }

    /// Human-readable lane name, `"group/index"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.group, self.index)
    }
}

/// One recorded event: a span when `dur_ps > 0`, an instant otherwise.
///
/// Timestamps are picoseconds from simulation time zero. `args` carries
/// small typed payloads (byte counts, row numbers) without allocation
/// for the names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time in picoseconds.
    pub ts_ps: u64,
    /// Duration in picoseconds; `0` marks an instant event.
    pub dur_ps: u64,
    /// Lane the event belongs to.
    pub track: Track,
    /// Event name, e.g. `"read_burst"`.
    pub name: &'static str,
    /// Small numeric payload, e.g. `[("bytes", 64)]`.
    pub args: Vec<(&'static str, u64)>,
}

/// Bounded ring buffer of [`TraceEvent`]s.
///
/// `record` is O(1) and never grows past the configured capacity; once
/// full, the oldest event is overwritten and [`dropped`](Self::dropped)
/// incremented.
#[derive(Debug)]
pub struct EventTracer {
    capacity: usize,
    events: Vec<TraceEvent>,
    cursor: usize,
    recorded: u64,
    dropped: u64,
}

impl EventTracer {
    /// A tracer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventTracer {
            capacity,
            events: Vec::new(),
            cursor: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Records one event, overwriting the oldest if the buffer is full.
    pub fn record(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else if self.capacity == 0 {
            self.dropped += 1;
        } else {
            self.events[self.cursor] = ev;
            self.cursor = (self.cursor + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever offered to [`record`](Self::record).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the tracer, returning the surviving events in a
    /// deterministic order (by time, then track, then name).
    pub fn finish(self) -> Vec<TraceEvent> {
        let mut events = self.events;
        events.sort_by(|a, b| {
            (a.ts_ps, a.track, a.name, a.dur_ps).cmp(&(b.ts_ps, b.track, b.name, b.dur_ps))
        });
        events
    }
}

/// Number of log2(ns) latency buckets — covers 1 ns up to ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log2-bucketed latency histogram over nanoseconds.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` ns; quantiles report
/// the conservative (upper) bound of the containing bucket, so they are
/// a pure function of the bucket counts and byte-stable under
/// serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample given in picoseconds (sub-ns samples
    /// land in the first bucket).
    pub fn record_ps(&mut self, ps: u64) {
        let ns = (ps / 1_000).max(1);
        let idx = (63 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper-bound estimate (in ns) of the `q`-quantile, `q` in
    /// `0.0..=1.0`. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << HISTOGRAM_BUCKETS
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Non-zero buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

impl ToJson for LatencyHistogram {
    fn to_json(&self) -> Json {
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(i, c)| Json::Arr(vec![Json::U64(i as u64), Json::U64(c)]))
            .collect();
        Json::Obj(vec![
            ("count".into(), Json::U64(self.count)),
            ("buckets".into(), Json::Arr(buckets)),
            ("p50_ns".into(), Json::U64(self.quantile_ns(0.50))),
            ("p90_ns".into(), Json::U64(self.quantile_ns(0.90))),
            ("p99_ns".into(), Json::U64(self.quantile_ns(0.99))),
        ])
    }
}

impl FromJson for LatencyHistogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // p50/p90/p99 are derived values: ignored on parse, re-derived
        // on serialize, so round trips stay byte-stable.
        let mut h = LatencyHistogram::new();
        h.count = crate::json::field(v, "count")?;
        let buckets = v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("histogram missing buckets array"))?;
        for pair in buckets {
            let pair = pair
                .as_arr()
                .ok_or_else(|| JsonError::new("histogram bucket is not a pair"))?;
            let (i, c) = match pair {
                [i, c] => (
                    i.as_u64()
                        .ok_or_else(|| JsonError::new("bucket index not a u64"))?,
                    c.as_u64()
                        .ok_or_else(|| JsonError::new("bucket count not a u64"))?,
                ),
                _ => return Err(JsonError::new("histogram bucket is not a pair")),
            };
            if i as usize >= HISTOGRAM_BUCKETS {
                return Err(JsonError::new("bucket index out of range"));
            }
            h.buckets[i as usize] = c;
        }
        Ok(h)
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written scalar (e.g. IPC, utilization).
    Gauge(f64),
    /// Log2-bucket latency distribution (boxed: the bucket array is two
    /// orders of magnitude larger than the scalar variants).
    Histogram(Box<LatencyHistogram>),
}

impl ToJson for MetricValue {
    fn to_json(&self) -> Json {
        match self {
            MetricValue::Counter(c) => Json::U64(*c),
            MetricValue::Gauge(g) => Json::F64(*g),
            MetricValue::Histogram(h) => h.to_json(),
        }
    }
}

impl FromJson for MetricValue {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::U64(c) => Ok(MetricValue::Counter(*c)),
            Json::I64(c) => Ok(MetricValue::Counter(*c as u64)),
            Json::F64(g) => Ok(MetricValue::Gauge(*g)),
            Json::Obj(_) => Ok(MetricValue::Histogram(Box::new(
                LatencyHistogram::from_json(v)?,
            ))),
            other => Err(JsonError::new(format!(
                "expected metric value, got {}",
                other.kind()
            ))),
        }
    }
}

/// A sorted name → [`MetricValue`] registry.
///
/// Names are dotted paths, `component.metric` (e.g.
/// `"pram.rdb_hits"`, `"pe.ipc"`). The backing map is a `BTreeMap`, so
/// iteration — and therefore JSON output — is always key-sorted and
/// byte-stable regardless of registration order or thread count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricSet {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a non-counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += delta,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name` to `v` (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.entries.insert(name.to_string(), MetricValue::Gauge(v));
    }

    /// Records a latency sample (picoseconds) into histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a non-histogram.
    pub fn record_latency_ps(&mut self, name: &str, ps: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Box::new(LatencyHistogram::new())))
        {
            MetricValue::Histogram(h) => h.record_ps(ps),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Counter value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Gauge value, if `name` is a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Histogram, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Key-sorted iteration over all metrics.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`: counters and histograms accumulate,
    /// gauges sum (a sweep-aggregate gauge is a total, not an average).
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, value) in &other.entries {
            match (self.entries.get_mut(name), value) {
                (None, v) => {
                    self.entries.insert(name.clone(), v.clone());
                }
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a += b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (Some(a), b) => panic!("metric {name} kind mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}

impl ToJson for MetricSet {
    fn to_json(&self) -> Json {
        // BTreeMap iteration is key-sorted, so the object is
        // deterministic by construction.
        Json::Obj(
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        )
    }
}

impl FromJson for MetricSet {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let Json::Obj(pairs) = v else {
            return Err(JsonError::new(format!(
                "expected metrics object, got {}",
                v.kind()
            )));
        };
        let mut set = MetricSet::new();
        for (name, value) in pairs {
            set.entries.insert(
                name.clone(),
                MetricValue::from_json(value).map_err(|e| e.context(name))?,
            );
        }
        Ok(set)
    }
}

/// Renders events as a Chrome trace-event JSON array (the format
/// Perfetto and `chrome://tracing` load).
///
/// Every distinct [`Track`] becomes one named thread (a `"M"`
/// `thread_name` metadata record), spans become `"X"` complete events
/// and zero-duration events become `"i"` instants, all under a single
/// process. Timestamps are microseconds (the format's native unit),
/// emitted in nondecreasing order.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    const PID: u64 = 1;
    let us = |ps: u64| Json::F64(ps as f64 / 1_000_000.0);

    let mut tracks: Vec<Track> = events.iter().map(|e| e.track).collect();
    tracks.sort();
    tracks.dedup();
    let tid_of =
        |t: Track| -> u64 { tracks.binary_search(&t).expect("track was collected") as u64 + 1 };

    let mut out = Vec::with_capacity(events.len() + tracks.len() + 1);
    out.push(Json::Obj(vec![
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::U64(PID)),
        ("tid".into(), Json::U64(0)),
        ("name".into(), Json::Str("process_name".into())),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str("dramless-sim".into()))]),
        ),
    ]));
    for &t in &tracks {
        out.push(Json::Obj(vec![
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::U64(PID)),
            ("tid".into(), Json::U64(tid_of(t))),
            ("name".into(), Json::Str("thread_name".into())),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str(t.label()))]),
            ),
        ]));
    }

    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by(|a, b| {
        (a.ts_ps, a.track, a.name, a.dur_ps).cmp(&(b.ts_ps, b.track, b.name, b.dur_ps))
    });
    for e in ordered {
        let mut fields = vec![
            ("name".into(), Json::Str(e.name.into())),
            (
                "ph".into(),
                Json::Str(if e.dur_ps > 0 { "X" } else { "i" }.into()),
            ),
            ("ts".into(), us(e.ts_ps)),
        ];
        if e.dur_ps > 0 {
            fields.push(("dur".into(), us(e.dur_ps)));
        } else {
            fields.push(("s".into(), Json::Str("t".into())));
        }
        fields.push(("pid".into(), Json::U64(PID)));
        fields.push(("tid".into(), Json::U64(tid_of(e.track))));
        if !e.args.is_empty() {
            fields.push((
                "args".into(),
                Json::Obj(
                    e.args
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), Json::U64(*v)))
                        .collect(),
                ),
            ));
        }
        out.push(Json::Obj(fields));
    }
    Json::Arr(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, dur: u64, track: Track, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts_ps: ts,
            dur_ps: dur,
            track,
            name,
            args: Vec::new(),
        }
    }

    #[test]
    fn ring_buffer_overwrites_oldest_and_counts_drops() {
        let t0 = Track::new("t", 0);
        let mut tr = EventTracer::new(3);
        for i in 0..5 {
            tr.record(ev(i, 1, t0, "e"));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.recorded(), 5);
        assert_eq!(tr.dropped(), 2);
        let kept: Vec<u64> = tr.finish().iter().map(|e| e.ts_ps).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_tracer_drops_everything() {
        let mut tr = EventTracer::new(0);
        tr.record(ev(0, 1, Track::new("t", 0), "e"));
        assert_eq!(tr.len(), 0);
        assert_eq!(tr.dropped(), 1);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ps(1_500); // 1 ns bucket [1, 2)
        }
        for _ in 0..10 {
            h.record_ps(1_000_000); // 1000 ns -> bucket [512, 1024)
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.50), 2);
        assert_eq!(h.quantile_ns(0.90), 2);
        assert_eq!(h.quantile_ns(0.99), 1024);
        // Empty histogram reports zero.
        assert_eq!(LatencyHistogram::new().quantile_ns(0.5), 0);
    }

    #[test]
    fn histogram_round_trips_byte_stable() {
        let mut h = LatencyHistogram::new();
        h.record_ps(2_500);
        h.record_ps(40_000);
        h.record_ps(7_000_000);
        let json = h.to_json_pretty();
        let back = LatencyHistogram::from_json_str(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn metric_set_is_key_sorted_and_merges() {
        let mut a = MetricSet::new();
        a.add("z.last", 1);
        a.add("a.first", 2);
        a.gauge("m.gauge", 1.5);
        a.record_latency_ps("m.lat", 3_000);
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.first", "m.gauge", "m.lat", "z.last"]);

        let mut b = MetricSet::new();
        b.add("a.first", 5);
        b.gauge("m.gauge", 0.5);
        b.record_latency_ps("m.lat", 3_000);
        a.merge(&b);
        assert_eq!(a.counter("a.first"), Some(7));
        assert_eq!(a.gauge_value("m.gauge"), Some(2.0));
        assert_eq!(a.histogram("m.lat").unwrap().count(), 2);
    }

    #[test]
    fn metric_set_round_trips_byte_stable() {
        let mut m = MetricSet::new();
        m.add("pram.rdb_hits", 42);
        m.gauge("pe.ipc", 0.75);
        m.record_latency_ps("pram.read_ns", 120_000);
        let json = m.to_json_pretty();
        let back = MetricSet::from_json_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn chrome_trace_shape_is_valid() {
        let p0 = Track::new("partition", 0);
        let pe = Track::new("pe", 3);
        let events = vec![
            ev(2_000_000, 1_000_000, pe, "compute"),
            ev(1_000_000, 500_000, p0, "activate"),
            ev(1_500_000, 0, p0, "rdb_hit"),
        ];
        let trace = chrome_trace(&events);
        let arr = trace.as_arr().expect("array of events");
        // 1 process_name + 2 thread_name + 3 events.
        assert_eq!(arr.len(), 6);
        let metas: Vec<&Json> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3);
        // Non-metadata events are ts-ordered and complete/instant.
        let mut last_ts = f64::MIN;
        for e in arr.iter().skip(metas.len()) {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last_ts, "ts regressed");
            last_ts = ts;
            if ph == "X" {
                assert!(e.get("dur").and_then(Json::as_f64).unwrap() > 0.0);
            }
        }
        // Thread names carry the track labels.
        let names: Vec<&str> = metas
            .iter()
            .filter_map(|m| {
                m.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(names.contains(&"partition/0"));
        assert!(names.contains(&"pe/3"));
    }
}
