//! Deterministic random-number generation.
//!
//! Every stochastic element of the reproduction (workload data, tDQSCK /
//! tDQSS strobe jitter, address hashing) draws from a [`SimRng`] seeded
//! from the experiment configuration, so any run is exactly repeatable.
//! The generator is the in-tree SplitMix64-seeded xoshiro256++ from
//! [`util::rng`]; nothing here touches external crates or OS entropy.

use util::rng::Rng64;

/// A seeded random source with convenience helpers.
///
/// # Examples
///
/// ```
/// use sim_core::rng::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // determinism
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Rng64,
}

// Serializes the raw generator state so snapshots capture a source
// mid-stream: a restored generator continues the exact sequence.
util::json_struct!(SimRng { inner });

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: Rng64::seed(seed),
        }
    }

    /// Derives an independent child generator, labeled by `stream`.
    ///
    /// Different streams from the same parent are decorrelated, so e.g.
    /// workload-data randomness never perturbs strobe-jitter randomness.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng {
            inner: self.inner.fork(stream),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.range_u64(lo, hi)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.unit_f64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or the bounds are not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.range_f64(lo, hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.chance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_reproducible_and_distinct() {
        let mut parent1 = SimRng::seed(9);
        let mut parent2 = SimRng::seed(9);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent = SimRng::seed(9);
        let mut x = parent.fork(1);
        let mut parent = SimRng::seed(9);
        let mut y = parent.fork(2);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = r.range_f64(0.75, 1.25);
            assert!((0.75..1.25).contains(&f));
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_rejected() {
        SimRng::seed(0).range_u64(5, 4);
    }
}
