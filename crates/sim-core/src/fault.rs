//! Deterministic fault injection: plans, fault domains and degradation
//! counters.
//!
//! A [`FaultPlan`] is a JSON-serializable description of *which*
//! failure modes to inject and *how hard*, plus the resilience policy
//! (ECC strength, retry budget, retirement thresholds) the controller
//! uses to absorb them. It rides on the system spec the same way the
//! telemetry knob does: absent by default, and inert when every rate is
//! zero.
//!
//! Determinism is the whole point. Fault decisions are never drawn from
//! a shared stateful generator (whose draw order would depend on event
//! interleaving); instead every decision hashes
//! `(plan.seed, domain, component labels..., trial index)` through
//! [`util::rng::stream_seed`] and compares the resulting uniform value
//! against the configured rate. Two consequences fall out for free:
//!
//! * **Thread-count invariance** — the same access makes the same draw
//!   no matter when it is simulated, so sweep reports are byte-identical
//!   at any worker count.
//! * **Monotonicity** — raising a rate turns a *superset* of the same
//!   fixed trial values into faults, so degradation (retries, latency)
//!   is monotone in the configured rates, which the fault-matrix test
//!   asserts exactly rather than statistically.

use crate::time::Picos;

/// Stable label constants naming each fault domain in the stream-seed
/// path. Changing a value silently reshuffles every draw, so these are
/// append-only.
pub mod domain {
    /// PRAM resistance-drift bit errors on word reads.
    pub const DRIFT: u64 = 1;
    /// PRAM read-disturb bit errors (scale with reads since last write).
    pub const DISTURB: u64 = 2;
    /// Row-data-buffer corruption on read-out.
    pub const RDB: u64 = 3;
    /// SET/RESET program failures.
    pub const PROGRAM: u64 = 4;
    /// SSD/flash transient read failures.
    pub const SSD_READ: u64 = 5;
}

/// PRAM-medium fault rates. All rates are per-trial probabilities in
/// `[0, 1]`; zero disables the mode.
#[derive(Debug, Clone, PartialEq)]
pub struct PramFaults {
    /// Per-trial probability of a resistance-drift bit error on a word
    /// read. Each read runs `ecc_strength + 2` independent drift trials,
    /// so multi-bit (uncorrectable) patterns are reachable.
    pub drift_rate: f64,
    /// Peak per-read probability of a read-disturb bit error, reached
    /// after [`PramFaults::disturb_window`] reads without an intervening
    /// write to the line.
    pub read_disturb_rate: f64,
    /// Reads-since-last-write over which disturb probability ramps
    /// linearly from 0 to `read_disturb_rate`.
    pub disturb_window: u64,
    /// Per-partition rate multipliers; partition `p` uses
    /// `multipliers[p % len]`. Empty means uniform (×1.0) everywhere.
    pub partition_multipliers: Vec<f64>,
    /// Physical write count after which a line becomes stuck-at (every
    /// read is uncorrectable until the line is retired). Zero disables
    /// wear-out. Counts are per *physical* slot, after start-gap
    /// rotation, so wear leveling genuinely delays onset.
    pub stuck_at_threshold: u64,
    /// Per-program probability that a SET/RESET pulse fails and must be
    /// re-issued.
    pub program_failure_rate: f64,
    /// Per-read probability that the row-data buffer delivers a
    /// corrupted word (always uncorrectable; forces a re-sense).
    pub rdb_corruption_rate: f64,
}

util::json_struct!(PramFaults {
    drift_rate,
    read_disturb_rate,
    disturb_window,
    partition_multipliers,
    stuck_at_threshold,
    program_failure_rate,
    rdb_corruption_rate,
});

impl Default for PramFaults {
    fn default() -> Self {
        PramFaults {
            drift_rate: 0.0,
            read_disturb_rate: 0.0,
            disturb_window: 64,
            partition_multipliers: Vec::new(),
            stuck_at_threshold: 0,
            program_failure_rate: 0.0,
            rdb_corruption_rate: 0.0,
        }
    }
}

impl PramFaults {
    /// The drift/disturb rate multiplier for `partition`.
    pub fn partition_multiplier(&self, partition: usize) -> f64 {
        if self.partition_multipliers.is_empty() {
            1.0
        } else {
            self.partition_multipliers[partition % self.partition_multipliers.len()]
        }
    }

    /// True if no PRAM fault mode can fire.
    pub fn is_inert(&self) -> bool {
        self.drift_rate == 0.0
            && self.read_disturb_rate == 0.0
            && self.stuck_at_threshold == 0
            && self.program_failure_rate == 0.0
            && self.rdb_corruption_rate == 0.0
    }
}

/// SSD/flash fault rates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SsdFaults {
    /// Per-request probability that a device read fails transiently and
    /// must be replayed by the SSD controller.
    pub transient_read_rate: f64,
}

util::json_struct!(SsdFaults {
    transient_read_rate
});

/// The controller-side resilience policy: how injected faults are
/// absorbed before they could become wrong results.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// ECC symbol strength: up to this many bit errors per word are
    /// corrected in place; more is uncorrectable and triggers retry.
    pub ecc_strength: u32,
    /// Maximum re-reads (or re-programs) before a line is declared
    /// failing. The retry path is bounded by construction.
    pub max_retries: u32,
    /// Base backoff before the first retry; attempt `n` waits
    /// `retry_backoff << n` (capped at 8 doublings).
    pub retry_backoff: Picos,
    /// Uncorrectable events a line may accumulate before it is retired
    /// and remapped to a spare.
    pub line_error_budget: u32,
    /// Spare lines reserved (per channel × module) at the top of the
    /// line space for retirement remaps. When exhausted, failing lines
    /// stay in service and keep paying the retry penalty.
    pub spare_lines: u64,
}

util::json_struct!(ResiliencePolicy {
    ecc_strength,
    max_retries,
    retry_backoff,
    line_error_budget,
    spare_lines,
});

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            ecc_strength: 2,
            max_retries: 4,
            retry_backoff: Picos::from_ns(100),
            line_error_budget: 3,
            spare_lines: 64,
        }
    }
}

/// A complete, seeded fault-injection plan. `Default` is fully inert:
/// every rate is zero, so attaching it changes nothing but the report's
/// `degraded` section (which then reads all zeros).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Root seed of every stateless fault draw.
    pub seed: u64,
    /// PRAM-medium fault rates.
    pub pram: PramFaults,
    /// SSD/flash fault rates.
    pub ssd: SsdFaults,
    /// Controller resilience policy.
    pub resilience: ResiliencePolicy,
}

util::json_struct!(FaultPlan {
    seed,
    pram,
    ssd,
    resilience,
});

impl FaultPlan {
    /// A moderate chaos plan: every fault mode enabled at rates that
    /// exercise the full correct/retry/retire ladder on small workloads
    /// without drowning them.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            pram: PramFaults {
                drift_rate: 2e-3,
                read_disturb_rate: 1e-3,
                disturb_window: 64,
                partition_multipliers: Vec::new(),
                stuck_at_threshold: 0,
                program_failure_rate: 1e-3,
                rdb_corruption_rate: 2e-4,
            },
            ssd: SsdFaults {
                transient_read_rate: 1e-3,
            },
            resilience: ResiliencePolicy::default(),
        }
    }
}

/// Degradation counters: what was injected and how it was absorbed.
/// This is both the per-backend fault ledger and the report's
/// `degraded` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Total fault events injected, across every domain.
    pub injected: u64,
    /// Word reads whose bit errors ECC corrected in place.
    pub ecc_corrected: u64,
    /// Word reads ECC could not correct (each triggers the retry path).
    pub ecc_uncorrectable: u64,
    /// Retry attempts issued (reads re-sensed, programs re-pulsed).
    pub retries: u64,
    /// Lines retired to spares after exhausting their error budget.
    pub retired_lines: u64,
    /// SSD reads that failed transiently.
    pub ssd_transient_faults: u64,
    /// SSD read replays issued.
    pub ssd_retries: u64,
    /// Picoseconds of request latency added by the retry/recovery
    /// paths (PRAM re-senses and backoff, SSD replays) — the time cost
    /// of the counters above, so chaos runs are readable as wall time
    /// and not just event counts.
    pub retry_stall_ps: u64,
}

util::json_struct!(FaultCounters {
    injected,
    ecc_corrected,
    ecc_uncorrectable,
    retries,
    retired_lines,
    ssd_transient_faults,
    ssd_retries,
    retry_stall_ps,
});

impl FaultCounters {
    /// Accumulates another ledger into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_uncorrectable += other.ecc_uncorrectable;
        self.retries += other.retries;
        self.retired_lines += other.retired_lines;
        self.ssd_transient_faults += other.ssd_transient_faults;
        self.ssd_retries += other.ssd_retries;
        self.retry_stall_ps += other.retry_stall_ps;
    }

    /// True if nothing was injected or absorbed.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::json::{FromJson, ToJson};

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(p.pram.is_inert());
        assert_eq!(p.ssd.transient_read_rate, 0.0);
    }

    #[test]
    fn seeded_plan_enables_every_domain() {
        let p = FaultPlan::seeded(7);
        assert_eq!(p.seed, 7);
        assert!(!p.pram.is_inert());
        assert!(p.ssd.transient_read_rate > 0.0);
        assert!(p.resilience.max_retries > 0);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let mut p = FaultPlan::seeded(42);
        p.pram.partition_multipliers = vec![1.0, 2.5];
        p.pram.stuck_at_threshold = 100;
        let back = FaultPlan::from_json_str(&p.to_json_pretty()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn partition_multipliers_cycle() {
        let mut f = PramFaults::default();
        assert_eq!(f.partition_multiplier(5), 1.0);
        f.partition_multipliers = vec![1.0, 3.0];
        assert_eq!(f.partition_multiplier(0), 1.0);
        assert_eq!(f.partition_multiplier(1), 3.0);
        assert_eq!(f.partition_multiplier(2), 1.0);
    }

    #[test]
    fn counters_merge_and_round_trip() {
        let mut a = FaultCounters {
            injected: 3,
            ecc_corrected: 2,
            retries: 1,
            ..Default::default()
        };
        let b = FaultCounters {
            injected: 1,
            ssd_transient_faults: 1,
            ssd_retries: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.injected, 4);
        assert_eq!(a.ssd_retries, 2);
        assert!(!a.is_zero());
        assert!(FaultCounters::default().is_zero());
        let back = FaultCounters::from_json_str(&a.to_json_string()).unwrap();
        assert_eq!(back, a);
    }
}
