//! Simulated time.
//!
//! All timing in the reproduction is expressed as [`Picos`], an integer
//! count of picoseconds. Picosecond resolution lets us represent every
//! LPDDR2-NVM parameter from Table II of the paper exactly: the 400 MHz
//! interface clock is `tCK = 2.5 ns = 2500 ps`, and sub-nanosecond strobe
//! windows such as `tDQSS = 0.75–1.25 ns` are integral too.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A span of (or point in) simulated time, in picoseconds.
///
/// `Picos` is a transparent `u64` newtype: cheap to copy, totally ordered,
/// and overflow-checked in debug builds through the standard operators.
/// A `u64` of picoseconds covers ~213 days of simulated time, far beyond
/// any experiment in this repository (the longest, a 60 ms PRAM erase
/// storm, is seven orders of magnitude shorter).
///
/// # Examples
///
/// ```
/// use sim_core::time::Picos;
///
/// let trcd = Picos::from_ns(80);
/// let trp = Picos::from_ns_f64(7.5); // 3 cycles at tCK = 2.5 ns
/// assert!(trcd > trp);
/// assert_eq!((trcd + trp).as_ns_f64(), 87.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Picos(pub u64);

util::json_newtype!(Picos);

impl Picos {
    /// The zero instant / empty duration.
    pub const ZERO: Picos = Picos(0);
    /// The maximum representable instant. Used as "never".
    pub const MAX: Picos = Picos(u64::MAX);

    /// Creates a span from a whole number of picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Picos(ps)
    }

    /// Creates a span from a whole number of nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Picos(ns * 1_000)
    }

    /// Creates a span from a whole number of microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Picos(us * 1_000_000)
    }

    /// Creates a span from a whole number of milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Picos(ms * 1_000_000_000)
    }

    /// Creates a span from a fractional nanosecond count, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "invalid nanosecond value: {ns}"
        );
        Picos((ns * 1_000.0).round() as u64)
    }

    /// Creates a span from a fractional microsecond count.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "invalid microsecond value: {us}"
        );
        Picos((us * 1_000_000.0).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This span in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// This span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Picos) -> Option<Picos> {
        self.0.checked_add(rhs.0).map(Picos)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Picos) -> Picos {
        Picos(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Picos) -> Picos {
        Picos(self.0.min(other.0))
    }

    /// Is this the zero span?
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Picos {
    type Output = Picos;
    #[inline]
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    #[inline]
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    #[inline]
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    #[inline]
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    #[inline]
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<u64> for Picos {
    type Output = Picos;
    #[inline]
    fn div(self, rhs: u64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Div<Picos> for Picos {
    type Output = u64;
    /// How many whole `rhs` spans fit into `self`.
    #[inline]
    fn div(self, rhs: Picos) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Picos> for Picos {
    type Output = Picos;
    #[inline]
    fn rem(self, rhs: Picos) -> Picos {
        Picos(self.0 % rhs.0)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        iter.fold(Picos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Picos {
    /// Human-oriented rendering with an automatically chosen unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// A clock frequency, used to convert between cycle counts and [`Picos`].
///
/// # Examples
///
/// ```
/// use sim_core::time::{Freq, Picos};
///
/// let pram_if = Freq::from_mhz(400);
/// assert_eq!(pram_if.cycle(), Picos::from_ps(2_500));
/// let pe = Freq::from_ghz(1);
/// assert_eq!(pe.cycles_to_time(1_000), Picos::from_ns(1_000));
/// assert_eq!(pe.time_to_cycles(Picos::from_ns(10)), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Freq {
    /// Frequency in hertz.
    hz: u64,
}

util::json_struct!(Freq { hz });

impl Freq {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Freq { hz }
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: u64) -> Self {
        Self::from_hz(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: u64) -> Self {
        Self::from_hz(ghz * 1_000_000_000)
    }

    /// Frequency in hertz.
    pub fn as_hz(self) -> u64 {
        self.hz
    }

    /// The period of one clock cycle.
    ///
    /// Exact for every frequency whose period is an integral number of
    /// picoseconds (all frequencies used in this repository).
    pub fn cycle(self) -> Picos {
        Picos(1_000_000_000_000 / self.hz)
    }

    /// Converts a cycle count to simulated time.
    pub fn cycles_to_time(self, cycles: u64) -> Picos {
        self.cycle() * cycles
    }

    /// Converts a time span to a whole number of cycles (rounding up, i.e.
    /// the number of cycles needed to cover the span).
    pub fn time_to_cycles(self, t: Picos) -> u64 {
        let c = self.cycle().as_ps();
        t.as_ps().div_ceil(c)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz.is_multiple_of(1_000_000_000) {
            write!(f, "{}GHz", self.hz / 1_000_000_000)
        } else if self.hz.is_multiple_of(1_000_000) {
            write!(f, "{}MHz", self.hz / 1_000_000)
        } else {
            write!(f, "{}Hz", self.hz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picos_constructors_agree() {
        assert_eq!(Picos::from_ns(1), Picos::from_ps(1_000));
        assert_eq!(Picos::from_us(1), Picos::from_ns(1_000));
        assert_eq!(Picos::from_ms(1), Picos::from_us(1_000));
        assert_eq!(Picos::from_ns_f64(2.5), Picos::from_ps(2_500));
        assert_eq!(Picos::from_us_f64(0.75), Picos::from_ns(750));
    }

    #[test]
    fn picos_arithmetic() {
        let a = Picos::from_ns(10);
        let b = Picos::from_ns(4);
        assert_eq!(a + b, Picos::from_ns(14));
        assert_eq!(a - b, Picos::from_ns(6));
        assert_eq!(a * 3, Picos::from_ns(30));
        assert_eq!(a / 2, Picos::from_ns(5));
        assert_eq!(a / b, 2);
        assert_eq!(a % b, Picos::from_ns(2));
        assert_eq!(b.saturating_sub(a), Picos::ZERO);
    }

    #[test]
    fn picos_sum_and_ordering() {
        let total: Picos = (1..=4).map(Picos::from_ns).sum();
        assert_eq!(total, Picos::from_ns(10));
        assert!(Picos::from_us(1) > Picos::from_ns(999));
        assert_eq!(Picos::from_ns(3).max(Picos::from_ns(7)), Picos::from_ns(7));
        assert_eq!(Picos::from_ns(3).min(Picos::from_ns(7)), Picos::from_ns(3));
    }

    #[test]
    fn picos_display_picks_unit() {
        assert_eq!(Picos::from_ps(12).to_string(), "12ps");
        assert_eq!(Picos::from_ns(100).to_string(), "100.000ns");
        assert_eq!(Picos::from_us(10).to_string(), "10.000us");
        assert_eq!(Picos::from_ms(60).to_string(), "60.000ms");
        assert_eq!(Picos::from_ms(2_000).to_string(), "2.000s");
    }

    #[test]
    fn table2_parameters_are_exact() {
        // Table II: tCK = 2.5 ns at 400 MHz.
        let f = Freq::from_mhz(400);
        assert_eq!(f.cycle(), Picos::from_ns_f64(2.5));
        // RL = 6 cycles, WL = 3 cycles, tRP = 3 cycles.
        assert_eq!(f.cycles_to_time(6), Picos::from_ns(15));
        assert_eq!(f.cycles_to_time(3), Picos::from_ns_f64(7.5));
        // tDQSCK window bounds are exact in picoseconds.
        assert_eq!(Picos::from_ns_f64(5.5).as_ps(), 5_500);
        assert_eq!(Picos::from_ns_f64(0.75).as_ps(), 750);
    }

    #[test]
    fn freq_conversions_round_trip() {
        let f = Freq::from_ghz(1);
        assert_eq!(f.time_to_cycles(f.cycles_to_time(123)), 123);
        // Rounds up partial cycles.
        assert_eq!(f.time_to_cycles(Picos::from_ps(1)), 1);
        assert_eq!(f.time_to_cycles(Picos::from_ps(1_001)), 2);
    }

    #[test]
    #[should_panic(expected = "frequency must be non-zero")]
    fn zero_frequency_rejected() {
        let _ = Freq::from_hz(0);
    }

    #[test]
    #[should_panic(expected = "invalid nanosecond value")]
    fn negative_ns_rejected() {
        let _ = Picos::from_ns_f64(-1.0);
    }
}
