//! The memory-backend abstraction every data store implements.
//!
//! The accelerator's memory controller unit (MCU) routes L2 misses to
//! whatever backs the configuration under test: the hardware-automated
//! PRAM controller, its firmware-managed variant, an internal DRAM buffer
//! in front of flash, a NOR-interface PRAM, or a host-side storage stack.
//! [`MemoryBackend`] is that seam.
//!
//! Backends are *timing* models: an access returns when it started and
//! when its data became available. Functional data movement (actual
//! bytes) is exposed separately by backends that support it, because the
//! processing-element performance model only consumes timing.

use crate::energy::EnergyBook;
use crate::fault::FaultCounters;
use crate::probe::Probe;
use crate::time::Picos;
use util::telemetry::MetricSet;

/// How faithfully a backend (or a whole system) models time.
///
/// * [`FidelityTier::Accurate`] — the cycle-approximate protocol models:
///   every request walks row buffers, buses and program queues.
/// * [`FidelityTier::Analytic`] — closed-form latency/energy estimators
///   whose coefficients are *calibrated* against the accurate tier
///   (`calibrate` bench binary); orders of magnitude faster, drift-bound
///   tested.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FidelityTier {
    /// Full protocol-level timing (the default everywhere).
    #[default]
    Accurate,
    /// Calibrated closed-form models.
    Analytic,
}

util::json_unit_enum!(FidelityTier { Accurate, Analytic });

impl FidelityTier {
    /// Lower-case label for CLI flags and report tables.
    pub fn label(self) -> &'static str {
        match self {
            FidelityTier::Accurate => "accurate",
            FidelityTier::Analytic => "analytic",
        }
    }

    /// Parses the CLI spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "accurate" => Some(FidelityTier::Accurate),
            "analytic" => Some(FidelityTier::Analytic),
            _ => None,
        }
    }
}

/// The completed timing of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// When the backend began servicing the access (after queueing).
    pub start: Picos,
    /// When the last byte was delivered / durably accepted.
    pub end: Picos,
}

util::json_struct!(Access { start, end });

impl Access {
    /// An access that completes instantly at `at` (e.g. a buffer hit with
    /// negligible latency at the modeled granularity).
    pub fn instant(at: Picos) -> Self {
        Access { start: at, end: at }
    }

    /// Service latency (queueing excluded).
    pub fn service(&self) -> Picos {
        self.end - self.start
    }

    /// Latency relative to issue time `at` (queueing included).
    pub fn latency_from(&self, at: Picos) -> Picos {
        self.end.saturating_sub(at)
    }
}

/// A device (or device stack) that services byte-addressed reads/writes
/// with simulated timing.
///
/// Lengths are in bytes; addresses are within the backend's own space.
/// Implementations must be deterministic for a fixed construction seed.
pub trait MemoryBackend {
    /// Services a read of `len` bytes at `addr`, issued at `at`.
    fn read(&mut self, at: Picos, addr: u64, len: u32) -> Access;

    /// Services a write of `len` bytes at `addr`, issued at `at`.
    fn write(&mut self, at: Picos, addr: u64, len: u32) -> Access;

    /// Advance notice that `addrs` will be overwritten soon — the
    /// *selective erasing* hint (§V-A). Backends without the optimization
    /// ignore it.
    fn announce_overwrites(&mut self, _at: Picos, _addrs: &[u64]) {}

    /// Snapshot of the energy this backend has charged so far.
    fn energy(&self) -> EnergyBook;

    /// A short human-readable backend name for reports.
    fn label(&self) -> &'static str;

    /// Installs a telemetry probe. Backends without instrumentation
    /// points ignore it; the default probe everywhere is disabled, so
    /// uninstrumented backends simply record nothing.
    fn set_probe(&mut self, _probe: Probe) {}

    /// Contributes this backend's end-of-run metrics (hit/miss
    /// counters, occupancy gauges) into `out`. Uninstrumented backends
    /// contribute nothing.
    fn collect_metrics(&self, _out: &mut MetricSet) {}

    /// Contributes this backend's fault-injection ledger into `out`.
    /// Backends without fault modeling (or with no plan attached)
    /// contribute nothing.
    fn collect_faults(&self, _out: &mut FaultCounters) {}

    /// Which fidelity tier this backend's timings come from. Every
    /// protocol-level model reports [`FidelityTier::Accurate`] (the
    /// default); calibrated closed-form backends override.
    fn tier(&self) -> FidelityTier {
        FidelityTier::Accurate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_latencies() {
        let a = Access {
            start: Picos::from_ns(10),
            end: Picos::from_ns(50),
        };
        assert_eq!(a.service(), Picos::from_ns(40));
        assert_eq!(a.latency_from(Picos::from_ns(5)), Picos::from_ns(45));
        // Completion before issue clamps to zero rather than underflowing.
        assert_eq!(a.latency_from(Picos::from_ns(60)), Picos::ZERO);
    }

    #[test]
    fn instant_access() {
        let a = Access::instant(Picos::from_us(3));
        assert_eq!(a.service(), Picos::ZERO);
        assert_eq!(a.start, a.end);
    }
}
