//! The memory-backend abstraction every data store implements.
//!
//! The accelerator's memory controller unit (MCU) routes L2 misses to
//! whatever backs the configuration under test: the hardware-automated
//! PRAM controller, its firmware-managed variant, an internal DRAM buffer
//! in front of flash, a NOR-interface PRAM, or a host-side storage stack.
//! [`MemoryBackend`] is that seam.
//!
//! Backends are *timing* models: an access returns when it started and
//! when its data became available. Functional data movement (actual
//! bytes) is exposed separately by backends that support it, because the
//! processing-element performance model only consumes timing.

use crate::energy::EnergyBook;
use crate::fault::FaultCounters;
use crate::probe::Probe;
use crate::snapshot::{SnapshotError, StateImage};
use crate::time::Picos;
use util::telemetry::MetricSet;

/// How faithfully a backend (or a whole system) models time.
///
/// * [`FidelityTier::Accurate`] — the cycle-approximate protocol models:
///   every request walks row buffers, buses and program queues.
/// * [`FidelityTier::Analytic`] — closed-form latency/energy estimators
///   whose coefficients are *calibrated* against the accurate tier
///   (`calibrate` bench binary); orders of magnitude faster, drift-bound
///   tested.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FidelityTier {
    /// Full protocol-level timing (the default everywhere).
    #[default]
    Accurate,
    /// Calibrated closed-form models.
    Analytic,
}

util::json_unit_enum!(FidelityTier { Accurate, Analytic });

impl FidelityTier {
    /// Lower-case label for CLI flags and report tables.
    pub fn label(self) -> &'static str {
        match self {
            FidelityTier::Accurate => "accurate",
            FidelityTier::Analytic => "analytic",
        }
    }

    /// Parses the CLI spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "accurate" => Some(FidelityTier::Accurate),
            "analytic" => Some(FidelityTier::Analytic),
            _ => None,
        }
    }
}

/// The completed timing of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// When the backend began servicing the access (after queueing).
    pub start: Picos,
    /// When the last byte was delivered / durably accepted.
    pub end: Picos,
}

util::json_struct!(Access { start, end });

impl Access {
    /// An access that completes instantly at `at` (e.g. a buffer hit with
    /// negligible latency at the modeled granularity).
    pub fn instant(at: Picos) -> Self {
        Access { start: at, end: at }
    }

    /// Service latency (queueing excluded).
    pub fn service(&self) -> Picos {
        self.end - self.start
    }

    /// Latency relative to issue time `at` (queueing included).
    pub fn latency_from(&self, at: Picos) -> Picos {
        self.end.saturating_sub(at)
    }
}

/// One request of a batched backend stream ([`MemoryBackend::run_stream`]).
///
/// The engine folds the cache-hit service time that elapses *between*
/// backend requests into the next request's `advance`, so a whole memory
/// operation (hits, fills and posted write-backs interleaved in issue
/// order) crosses the backend boundary as one slice instead of one
/// virtual call per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOp {
    /// Engine-side time to elapse before this request issues (cache-hit
    /// service accumulated since the previous request).
    pub advance: Picos,
    /// Line-aligned request address.
    pub addr: u64,
    /// `true` — a posted write-back through the MCU write queue;
    /// `false` — a blocking line fill (read).
    pub write: bool,
}

/// A device (or device stack) that services byte-addressed reads/writes
/// with simulated timing.
///
/// Lengths are in bytes; addresses are within the backend's own space.
/// Implementations must be deterministic for a fixed construction seed.
pub trait MemoryBackend {
    /// Services a read of `len` bytes at `addr`, issued at `at`.
    fn read(&mut self, at: Picos, addr: u64, len: u32) -> Access;

    /// Services a write of `len` bytes at `addr`, issued at `at`.
    fn write(&mut self, at: Picos, addr: u64, len: u32) -> Access;

    /// Advance notice that `addrs` will be overwritten soon — the
    /// *selective erasing* hint (§V-A). Backends without the optimization
    /// ignore it.
    fn announce_overwrites(&mut self, _at: Picos, _addrs: &[u64]) {}

    /// Services a batch of line requests in issue order, returning the
    /// agent's clock after the last one.
    ///
    /// Semantics are pinned to the per-op engine path (the reference
    /// implementation, kept in `accel::exec::run_at`):
    ///
    /// * a read is a blocking fill — the clock advances to the access
    ///   end plus the crossbar hop `xbar`;
    /// * a write is *posted* through the MCU write queue `wq` (one entry
    ///   per queue slot holding the cycle that slot frees): the request
    ///   takes the first earliest-free slot, issues at
    ///   `max(now, free_at)`, and the agent only stalls until `free_at`.
    ///
    /// The default implementation simply loops over [`Self::read`] /
    /// [`Self::write`] — one virtual call for the whole slice instead of
    /// one per request, with the inner calls statically dispatched when
    /// the backend type is concrete. Backends may override with a fused
    /// path as long as the result stays bit-identical; the equivalence is
    /// pinned by tests.
    fn run_stream(
        &mut self,
        mut now: Picos,
        line: u32,
        xbar: Picos,
        ops: &[StreamOp],
        wq: &mut [Picos],
    ) -> Picos {
        // Step the attribution cursor between ops so the records the
        // inner read/write calls commit keep the per-op backend-request
        // ordinals (`replay --window` units). The issuer tags the batch
        // base ordinal before calling in; timing is untouched.
        let probe = self.probe().clone();
        for (i, op) in ops.iter().enumerate() {
            if i > 0 {
                probe.attr_advance();
            }
            now += op.advance;
            if op.write {
                // First earliest-free slot (`min_by_key` semantics: strict
                // `<` keeps the first minimum on ties).
                let mut slot = 0;
                for i in 1..wq.len() {
                    if wq[i] < wq[slot] {
                        slot = i;
                    }
                }
                let free_at = wq[slot];
                let issue = now.max(free_at);
                wq[slot] = self.write(issue, op.addr, line).end;
                now = now.max(free_at);
            } else {
                now = self.read(now, op.addr, line).end + xbar;
            }
        }
        now
    }

    /// Snapshot of the energy this backend has charged so far.
    fn energy(&self) -> EnergyBook;

    /// A short human-readable backend name for reports.
    fn label(&self) -> &'static str;

    /// Installs a telemetry probe. Backends without instrumentation
    /// points ignore it; the default probe everywhere is disabled, so
    /// uninstrumented backends simply record nothing.
    fn set_probe(&mut self, _probe: Probe) {}

    /// The probe installed by [`set_probe`](Self::set_probe).
    /// Instrumented backends override so the batched
    /// [`run_stream`](Self::run_stream) path can step the
    /// latency-attribution cursor between requests; the default is the
    /// disabled probe (a no-op cursor).
    fn probe(&self) -> &Probe {
        Probe::disabled_ref()
    }

    /// Contributes this backend's end-of-run metrics (hit/miss
    /// counters, occupancy gauges) into `out`. Uninstrumented backends
    /// contribute nothing.
    fn collect_metrics(&self, _out: &mut MetricSet) {}

    /// Contributes this backend's fault-injection ledger into `out`.
    /// Backends without fault modeling (or with no plan attached)
    /// contribute nothing.
    fn collect_faults(&self, _out: &mut FaultCounters) {}

    /// Which fidelity tier this backend's timings come from. Every
    /// protocol-level model reports [`FidelityTier::Accurate`] (the
    /// default); calibrated closed-form backends override.
    fn tier(&self) -> FidelityTier {
        FidelityTier::Accurate
    }

    /// Serializes the backend's complete mutable state (the object-safe
    /// face of [`crate::snapshot::Snapshot`] for boxed backends).
    ///
    /// # Errors
    ///
    /// The default implementation reports the backend as
    /// [`SnapshotError::Unsupported`]; every shipping backend
    /// overrides, test doubles need not.
    fn snapshot_state(&self) -> Result<StateImage, SnapshotError> {
        Err(SnapshotError::unsupported(self.label()))
    }

    /// Restores state previously captured by
    /// [`MemoryBackend::snapshot_state`] on an identically constructed
    /// backend.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on kind/version mismatch, malformed
    /// payloads, or (the default) an unsupporting backend.
    fn restore_state(&mut self, _image: &StateImage) -> Result<(), SnapshotError> {
        Err(SnapshotError::unsupported(self.label()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_latencies() {
        let a = Access {
            start: Picos::from_ns(10),
            end: Picos::from_ns(50),
        };
        assert_eq!(a.service(), Picos::from_ns(40));
        assert_eq!(a.latency_from(Picos::from_ns(5)), Picos::from_ns(45));
        // Completion before issue clamps to zero rather than underflowing.
        assert_eq!(a.latency_from(Picos::from_ns(60)), Picos::ZERO);
    }

    #[test]
    fn instant_access() {
        let a = Access::instant(Picos::from_us(3));
        assert_eq!(a.service(), Picos::ZERO);
        assert_eq!(a.start, a.end);
    }

    struct FixedMem;
    impl MemoryBackend for FixedMem {
        fn read(&mut self, at: Picos, _addr: u64, _len: u32) -> Access {
            Access {
                start: at,
                end: at + Picos::from_ns(100),
            }
        }
        fn write(&mut self, at: Picos, _addr: u64, _len: u32) -> Access {
            Access {
                start: at,
                end: at + Picos::from_ns(400),
            }
        }
        fn energy(&self) -> EnergyBook {
            EnergyBook::new()
        }
        fn label(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn stream_matches_per_op_reference() {
        let ops = [
            StreamOp {
                advance: Picos::from_ns(10),
                addr: 0,
                write: false,
            },
            StreamOp {
                advance: Picos::ZERO,
                addr: 64,
                write: true,
            },
            StreamOp {
                advance: Picos::from_ns(5),
                addr: 128,
                write: true,
            },
            StreamOp {
                advance: Picos::ZERO,
                addr: 192,
                write: true,
            },
            StreamOp {
                advance: Picos::from_ns(1),
                addr: 0,
                write: false,
            },
        ];
        let xbar = Picos::from_ns(30);

        // Reference: per-op walk with an explicit first-min write queue.
        let mut m = FixedMem;
        let mut wq = [Picos::ZERO; 2];
        let mut now = Picos::ZERO;
        for op in &ops {
            now += op.advance;
            if op.write {
                let slot = (0..wq.len()).min_by_key(|&i| wq[i]).unwrap();
                let free_at = wq[slot];
                wq[slot] = m.write(now.max(free_at), op.addr, 64).end;
                now = now.max(free_at);
            } else {
                now = m.read(now, op.addr, 64).end + xbar;
            }
        }

        let mut m2 = FixedMem;
        let mut wq2 = [Picos::ZERO; 2];
        let got = m2.run_stream(Picos::ZERO, 64, xbar, &ops, &mut wq2);
        assert_eq!(got, now);
        assert_eq!(wq2, wq);
    }
}
