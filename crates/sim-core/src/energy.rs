//! Energy accounting.
//!
//! The paper's energy results (Figs. 1, 17, 20, 21) are *decompositions*:
//! each joule is attributed to a component class (host CPU cycles spent in
//! the storage stack, DRAM buffer traffic, NVM array operations, PE
//! compute, interconnect transfers …). We mirror that with [`EnergyBook`],
//! a ledger of per-component [`EnergyAccount`]s. Components charge either
//! per-event energy (picojoules per access) or static power integrated
//! over busy time.

use crate::time::Picos;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign};

/// An amount of energy, stored as femtojoules for exact integer math.
///
/// # Examples
///
/// ```
/// use sim_core::energy::{Joules, Watts};
/// use sim_core::Picos;
///
/// let e = Joules::from_pj(50) + Watts::from_mw(100.0) * Picos::from_us(1);
/// assert!((e.as_uj() - 0.10005).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Joules(pub u128);

util::json_newtype!(Joules);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0);

    /// From femtojoules.
    #[inline]
    pub const fn from_fj(fj: u128) -> Self {
        Joules(fj)
    }

    /// From picojoules.
    #[inline]
    pub const fn from_pj(pj: u64) -> Self {
        Joules(pj as u128 * 1_000)
    }

    /// From nanojoules.
    #[inline]
    pub const fn from_nj(nj: u64) -> Self {
        Joules(nj as u128 * 1_000_000)
    }

    /// From fractional picojoules (rounds to femtojoules).
    ///
    /// # Panics
    ///
    /// Panics if `pj` is negative or not finite.
    #[inline]
    pub fn from_pj_f64(pj: f64) -> Self {
        assert!(pj.is_finite() && pj >= 0.0, "invalid picojoule value: {pj}");
        Joules((pj * 1_000.0).round() as u128)
    }

    /// Raw femtojoules.
    #[inline]
    pub const fn as_fj(self) -> u128 {
        self.0
    }

    /// Fractional picojoules.
    #[inline]
    pub fn as_pj(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional microjoules.
    #[inline]
    pub fn as_uj(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional millijoules.
    #[inline]
    pub fn as_mj(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Fractional joules.
    #[inline]
    pub fn as_j(self) -> f64 {
        self.0 as f64 / 1e15
    }

    /// Scales by an integer factor.
    #[inline]
    pub fn scaled(self, n: u64) -> Joules {
        Joules(self.0 * n as u128)
    }
}

impl Add for Joules {
    type Output = Joules;
    #[inline]
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    #[inline]
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fj = self.0;
        if fj >= 10u128.pow(15) {
            write!(f, "{:.3}J", self.as_j())
        } else if fj >= 10u128.pow(12) {
            write!(f, "{:.3}mJ", self.as_mj())
        } else if fj >= 10u128.pow(9) {
            write!(f, "{:.3}uJ", self.as_uj())
        } else if fj >= 10u128.pow(3) {
            write!(f, "{:.3}pJ", self.as_pj())
        } else {
            write!(f, "{fj}fJ")
        }
    }
}

/// A power draw. Multiplying by [`Picos`] yields [`Joules`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

util::json_newtype!(Watts);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// From watts.
    #[inline]
    pub fn from_w(w: f64) -> Self {
        assert!(w.is_finite() && w >= 0.0, "invalid power: {w}");
        Watts(w)
    }

    /// From milliwatts.
    #[inline]
    pub fn from_mw(mw: f64) -> Self {
        Self::from_w(mw / 1e3)
    }

    /// In watts.
    #[inline]
    pub fn as_w(self) -> f64 {
        self.0
    }

    /// In milliwatts.
    #[inline]
    pub fn as_mw(self) -> f64 {
        self.0 * 1e3
    }
}

impl std::ops::Mul<Picos> for Watts {
    type Output = Joules;
    /// Integrates this power over a time span.
    fn mul(self, t: Picos) -> Joules {
        // W * ps = 1e-12 J = 1e3 fJ.
        Joules((self.0 * t.as_ps() as f64 * 1e3).round() as u128)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}W", self.0)
        } else {
            write!(f, "{:.3}mW", self.as_mw())
        }
    }
}

/// One component's running energy total plus event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyAccount {
    /// Accumulated energy.
    pub energy: Joules,
    /// Number of charge events.
    pub events: u64,
}

util::json_struct!(EnergyAccount { energy, events });

impl EnergyAccount {
    /// Charges `e` as one event.
    pub fn charge(&mut self, e: Joules) {
        self.energy += e;
        self.events += 1;
    }
}

/// A ledger of per-component energy, keyed by a stable component label.
///
/// Component labels are free-form strings chosen by the subsystems
/// ("pe.compute", "pram.array", "host.stack", …); the figure benches group
/// them by prefix.
///
/// # Examples
///
/// ```
/// use sim_core::energy::{EnergyBook, Joules};
///
/// let mut book = EnergyBook::new();
/// book.charge("pram.array", Joules::from_pj(120));
/// book.charge("pram.array", Joules::from_pj(120));
/// book.charge("pe.compute", Joules::from_nj(1));
/// assert_eq!(book.component("pram.array").unwrap().events, 2);
/// assert_eq!(book.total(), Joules::from_pj(240) + Joules::from_nj(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyBook {
    accounts: BTreeMap<String, EnergyAccount>,
}

util::json_struct!(EnergyBook { accounts });

impl EnergyBook {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `e` to `component`, creating the account on first use.
    pub fn charge(&mut self, component: &str, e: Joules) {
        self.account_mut(component).charge(e);
    }

    /// The account for `component`, created empty on first use. The fast
    /// path borrows the `&str` key — charging is per memory request on
    /// the hot simulation paths, and allocating an owned `String` per
    /// charge dominated the ledger's cost.
    fn account_mut(&mut self, component: &str) -> &mut EnergyAccount {
        if !self.accounts.contains_key(component) {
            self.accounts
                .insert(component.to_owned(), EnergyAccount::default());
        }
        self.accounts.get_mut(component).expect("just inserted")
    }

    /// Charges a pre-summed batch of `events` charges totalling `e`.
    ///
    /// Equivalent to `events` individual [`EnergyBook::charge`] calls whose
    /// energies sum to `e` — [`Joules`] is an integer femtojoule count, so
    /// locally accumulated sums are exact. Batches with `events == 0` are
    /// dropped without creating the account, matching the per-call path
    /// (a label only appears once something is charged to it).
    pub fn charge_many(&mut self, component: &str, e: Joules, events: u64) {
        if events == 0 {
            return;
        }
        let acct = self.account_mut(component);
        acct.energy += e;
        acct.events += events;
    }

    /// Charges static power integrated over `dur`.
    pub fn charge_power(&mut self, component: &str, p: Watts, dur: Picos) {
        self.charge(component, p * dur);
    }

    /// Looks up one account.
    pub fn component(&self, component: &str) -> Option<&EnergyAccount> {
        self.accounts.get(component)
    }

    /// Energy of one component (zero if absent).
    pub fn energy_of(&self, component: &str) -> Joules {
        self.accounts
            .get(component)
            .map(|a| a.energy)
            .unwrap_or(Joules::ZERO)
    }

    /// Sum of energies of all components whose label starts with `prefix`.
    pub fn energy_of_prefix(&self, prefix: &str) -> Joules {
        self.accounts
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, a)| a.energy)
            .sum()
    }

    /// Grand total.
    pub fn total(&self) -> Joules {
        self.accounts.values().map(|a| a.energy).sum()
    }

    /// Iterates accounts in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &EnergyAccount)> {
        self.accounts.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyBook) {
        for (k, v) in &other.accounts {
            let acc = self.accounts.entry(k.clone()).or_default();
            acc.energy += v.energy;
            acc.events += v.events;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joules_conversions() {
        assert_eq!(Joules::from_pj(1), Joules::from_fj(1_000));
        assert_eq!(Joules::from_nj(1), Joules::from_pj(1_000));
        assert_eq!(Joules::from_pj_f64(2.5), Joules::from_fj(2_500));
        assert!((Joules::from_nj(1_500).as_uj() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn power_times_time_is_energy() {
        // 1 W for 1 us = 1 uJ.
        let e = Watts::from_w(1.0) * Picos::from_us(1);
        assert!((e.as_uj() - 1.0).abs() < 1e-9);
        // 100 mW for 10 ns = 1 nJ.
        let e = Watts::from_mw(100.0) * Picos::from_ns(10);
        assert!((e.as_pj() - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn book_accumulates_and_groups() {
        let mut b = EnergyBook::new();
        b.charge("host.stack.copy", Joules::from_nj(10));
        b.charge("host.stack.syscall", Joules::from_nj(5));
        b.charge("pe.compute", Joules::from_nj(1));
        assert_eq!(b.energy_of_prefix("host.stack"), Joules::from_nj(15));
        assert_eq!(b.energy_of_prefix("pe"), Joules::from_nj(1));
        assert_eq!(b.total(), Joules::from_nj(16));
        assert_eq!(b.energy_of("missing"), Joules::ZERO);
    }

    #[test]
    fn book_merge() {
        let mut a = EnergyBook::new();
        a.charge("x", Joules::from_pj(1));
        let mut b = EnergyBook::new();
        b.charge("x", Joules::from_pj(2));
        b.charge("y", Joules::from_pj(3));
        a.merge(&b);
        assert_eq!(a.energy_of("x"), Joules::from_pj(3));
        assert_eq!(a.energy_of("y"), Joules::from_pj(3));
        assert_eq!(a.component("x").unwrap().events, 2);
    }

    #[test]
    fn joules_display() {
        assert_eq!(Joules::from_pj(5).to_string(), "5.000pJ");
        assert_eq!(Joules::from_nj(5_000).to_string(), "5.000uJ");
        assert_eq!(Joules::from_fj(10).to_string(), "10fJ");
    }

    #[test]
    fn charge_power_matches_manual_integration() {
        let mut b = EnergyBook::new();
        b.charge_power("pe", Watts::from_w(2.0), Picos::from_us(3));
        assert_eq!(b.energy_of("pe"), Watts::from_w(2.0) * Picos::from_us(3));
    }
}
