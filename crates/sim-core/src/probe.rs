//! The runtime-switchable observability facade.
//!
//! A [`Telemetry`] hub owns one [`EventTracer`] ring buffer and one
//! [`MetricSet`]; components hold cheap [`Probe`] clones and record
//! spans, instants and latency samples against simulated [`Picos`]
//! time. A disabled probe (the default everywhere) is a `None` — every
//! recording call is a single enum check with no allocation and no
//! locking, so production sweeps pay effectively nothing for the
//! instrumentation being compiled in.
//!
//! One hub is created *per simulated cell* (inside the spec runner),
//! never shared across cells, so traced sweeps stay deterministic at
//! any worker-thread count: each cell's events and metrics are a pure
//! function of that cell's simulation.

use std::sync::{Arc, Mutex};

use util::telemetry::{EventTracer, MetricSet, TraceEvent, Track};

use crate::time::Picos;

#[derive(Debug)]
struct Hub {
    tracer: Mutex<EventTracer>,
    metrics: Mutex<MetricSet>,
}

/// A per-run telemetry hub: the owning side of a set of [`Probe`]s.
///
/// Create one per simulated run, hand [`probe`](Self::probe) clones to
/// components, then call [`finish`](Self::finish) to collect the trace
/// and live-recorded metrics.
#[derive(Debug)]
pub struct Telemetry {
    hub: Arc<Hub>,
}

impl Telemetry {
    /// A hub whose trace ring buffer holds at most `trace_capacity`
    /// events (metrics are unbounded — they are a small fixed set of
    /// names).
    pub fn new(trace_capacity: usize) -> Self {
        Telemetry {
            hub: Arc::new(Hub {
                tracer: Mutex::new(EventTracer::new(trace_capacity)),
                metrics: Mutex::new(MetricSet::new()),
            }),
        }
    }

    /// A live probe feeding this hub.
    pub fn probe(&self) -> Probe {
        Probe(Some(Arc::clone(&self.hub)))
    }

    /// Folds a set of end-of-run metrics (component counters collected
    /// via `collect_metrics`) into the hub, merging with anything probes
    /// recorded live.
    pub fn merge_metrics(&self, other: &MetricSet) {
        self.hub.metrics.lock().expect("metrics lock").merge(other);
    }

    /// Drains the hub: time-sorted surviving events plus the metrics
    /// recorded through probes, including `trace.events_recorded` /
    /// `trace.events_dropped` bookkeeping.
    ///
    /// Outstanding probe clones keep working but feed a fresh, empty
    /// buffer; `finish` is called once, after the run completes.
    pub fn finish(&self) -> (Vec<TraceEvent>, MetricSet) {
        let tracer = std::mem::replace(
            &mut *self.hub.tracer.lock().expect("tracer lock"),
            EventTracer::new(0),
        );
        let mut metrics = std::mem::take(&mut *self.hub.metrics.lock().expect("metrics lock"));
        metrics.add("trace.events_recorded", tracer.recorded());
        metrics.add("trace.events_dropped", tracer.dropped());
        (tracer.finish(), metrics)
    }
}

/// A cheap, cloneable recording handle.
///
/// The default probe is disabled: every call short-circuits on a single
/// `Option` check. Probes are `Send + Sync` (the hub is mutex-guarded),
/// but within this workspace a probe never crosses a thread — hubs are
/// per-cell.
#[derive(Debug, Clone, Default)]
pub struct Probe(Option<Arc<Hub>>);

impl Probe {
    /// The no-op probe — what every component starts with.
    pub fn disabled() -> Self {
        Probe(None)
    }

    /// Whether recording calls will actually store anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records a `[start, end)` span on `track`.
    #[inline]
    pub fn span(&self, track: Track, name: &'static str, start: Picos, end: Picos) {
        if let Some(hub) = &self.0 {
            hub.tracer.lock().expect("tracer lock").record(TraceEvent {
                ts_ps: start.as_ps(),
                dur_ps: end.as_ps().saturating_sub(start.as_ps()),
                track,
                name,
                args: Vec::new(),
            });
        }
    }

    /// Records a span carrying small numeric args (byte counts, rows).
    #[inline]
    pub fn span_args(
        &self,
        track: Track,
        name: &'static str,
        start: Picos,
        end: Picos,
        args: &[(&'static str, u64)],
    ) {
        if let Some(hub) = &self.0 {
            hub.tracer.lock().expect("tracer lock").record(TraceEvent {
                ts_ps: start.as_ps(),
                dur_ps: end.as_ps().saturating_sub(start.as_ps()),
                track,
                name,
                args: args.to_vec(),
            });
        }
    }

    /// Records a zero-duration instant on `track`.
    #[inline]
    pub fn instant(&self, track: Track, name: &'static str, at: Picos) {
        if let Some(hub) = &self.0 {
            hub.tracer.lock().expect("tracer lock").record(TraceEvent {
                ts_ps: at.as_ps(),
                dur_ps: 0,
                track,
                name,
                args: Vec::new(),
            });
        }
    }

    /// Records `dur` into the latency histogram `name`.
    #[inline]
    pub fn latency(&self, name: &str, dur: Picos) {
        if let Some(hub) = &self.0 {
            hub.metrics
                .lock()
                .expect("metrics lock")
                .record_latency_ps(name, dur.as_ps());
        }
    }

    /// Adds `delta` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(hub) = &self.0 {
            hub.metrics.lock().expect("metrics lock").add(name, delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        p.span(Track::new("t", 0), "e", Picos::ZERO, Picos::from_ns(1));
        p.latency("lat", Picos::from_ns(5));
        p.count("c", 1);
        // Nothing observable — and no hub exists to observe.
    }

    #[test]
    fn default_probe_is_disabled() {
        assert!(!Probe::default().is_enabled());
    }

    #[test]
    fn hub_collects_spans_and_metrics() {
        let hub = Telemetry::new(16);
        let p = hub.probe();
        assert!(p.is_enabled());
        let track = Track::new("partition", 2);
        p.span(track, "activate", Picos::from_ns(10), Picos::from_ns(25));
        p.instant(track, "rdb_hit", Picos::from_ns(30));
        p.latency("pram.read", Picos::from_ns(15));
        p.count("pram.requests", 3);

        let (events, metrics) = hub.finish();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "activate");
        assert_eq!(events[0].dur_ps, 15_000);
        assert_eq!(events[1].dur_ps, 0);
        assert_eq!(metrics.counter("pram.requests"), Some(3));
        assert_eq!(metrics.counter("trace.events_recorded"), Some(2));
        assert_eq!(metrics.counter("trace.events_dropped"), Some(0));
        assert_eq!(metrics.histogram("pram.read").unwrap().count(), 1);
    }

    #[test]
    fn merge_metrics_folds_component_counters_into_the_hub() {
        let hub = Telemetry::new(4);
        hub.probe().count("pram.reads", 2);
        let mut end_of_run = MetricSet::new();
        end_of_run.add("pram.reads", 3);
        end_of_run.add("pram.rab_hits", 7);
        hub.merge_metrics(&end_of_run);
        let (_, m) = hub.finish();
        assert_eq!(m.counter("pram.reads"), Some(5));
        assert_eq!(m.counter("pram.rab_hits"), Some(7));
    }

    #[test]
    fn finish_leaves_probes_harmless() {
        let hub = Telemetry::new(4);
        let p = hub.probe();
        p.count("c", 1);
        let (_, m) = hub.finish();
        assert_eq!(m.counter("c"), Some(1));
        // A straggler write after finish lands in the fresh buffer and
        // is simply never read — no panic, no corruption.
        p.count("c", 1);
    }
}
