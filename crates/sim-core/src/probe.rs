//! The runtime-switchable observability facade.
//!
//! A [`Telemetry`] hub owns one [`EventTracer`] ring buffer and one
//! [`MetricSet`]; components hold cheap [`Probe`] clones and record
//! spans, instants and latency samples against simulated [`Picos`]
//! time. A disabled probe (the default everywhere) is a `None` — every
//! recording call is a single enum check with no allocation and no
//! locking, so production sweeps pay effectively nothing for the
//! instrumentation being compiled in.
//!
//! One hub is created *per simulated cell* (inside the spec runner),
//! never shared across cells, so traced sweeps stay deterministic at
//! any worker-thread count: each cell's events and metrics are a pure
//! function of that cell's simulation.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use util::telemetry::{AttrCollector, AttrRecord, EventTracer, MetricSet, TraceEvent, Track};

use crate::time::Picos;

pub use util::telemetry::{AttrScope, AttrSummary, Cause, LatencySpan, NUM_CAUSES, NUM_SCOPES};

/// Latency-attribution state: the collector plus the `(scope, index)`
/// cursor issuing layers tag before servicing layers record. Atomics
/// only because the hub is `Sync`; within a cell everything is
/// single-threaded, so `Relaxed` ordering suffices.
#[derive(Debug)]
struct AttrState {
    collector: Mutex<AttrCollector>,
    scope: AtomicU8,
    index: AtomicU64,
    /// Per-scope next-ordinal counters for layers that number their own
    /// requests (offload segments, staging chunks).
    next: [AtomicU64; NUM_SCOPES],
    /// Owning tenant of the in-flight request on multi-tenant (fleet)
    /// runs; `NO_TENANT` outside fleet serving, so single-workload
    /// records stay untagged.
    tenant: AtomicU64,
}

/// Sentinel for "no tenant tagged" in [`AttrState::tenant`].
const NO_TENANT: u64 = u64::MAX;

#[derive(Debug)]
struct Hub {
    tracer: Mutex<EventTracer>,
    metrics: Mutex<MetricSet>,
    attr: Option<AttrState>,
}

/// A per-run telemetry hub: the owning side of a set of [`Probe`]s.
///
/// Create one per simulated run, hand [`probe`](Self::probe) clones to
/// components, then call [`finish`](Self::finish) to collect the trace
/// and live-recorded metrics.
#[derive(Debug)]
pub struct Telemetry {
    hub: Arc<Hub>,
}

impl Telemetry {
    /// A hub whose trace ring buffer holds at most `trace_capacity`
    /// events (metrics are unbounded — they are a small fixed set of
    /// names).
    pub fn new(trace_capacity: usize) -> Self {
        Self::build(trace_capacity, false)
    }

    /// A hub that additionally collects per-request latency
    /// attribution ([`Probe::attr_record`] and friends become live).
    pub fn with_attribution(trace_capacity: usize) -> Self {
        Self::build(trace_capacity, true)
    }

    fn build(trace_capacity: usize, attribution: bool) -> Self {
        Telemetry {
            hub: Arc::new(Hub {
                tracer: Mutex::new(EventTracer::new(trace_capacity)),
                metrics: Mutex::new(MetricSet::new()),
                attr: attribution.then(|| AttrState {
                    collector: Mutex::new(AttrCollector::default()),
                    scope: AtomicU8::new(AttrScope::Offload as u8),
                    index: AtomicU64::new(0),
                    next: [const { AtomicU64::new(0) }; NUM_SCOPES],
                    tenant: AtomicU64::new(NO_TENANT),
                }),
            }),
        }
    }

    /// A live probe feeding this hub.
    pub fn probe(&self) -> Probe {
        Probe(Some(Arc::clone(&self.hub)))
    }

    /// Folds a set of end-of-run metrics (component counters collected
    /// via `collect_metrics`) into the hub, merging with anything probes
    /// recorded live.
    pub fn merge_metrics(&self, other: &MetricSet) {
        self.hub.metrics.lock().expect("metrics lock").merge(other);
    }

    /// Drains the hub: time-sorted surviving events plus the metrics
    /// recorded through probes, including `trace.events_recorded` /
    /// `trace.events_dropped` bookkeeping.
    ///
    /// Outstanding probe clones keep working but feed a fresh, empty
    /// buffer; `finish` is called once, after the run completes.
    pub fn finish(&self) -> (Vec<TraceEvent>, MetricSet) {
        let tracer = std::mem::replace(
            &mut *self.hub.tracer.lock().expect("tracer lock"),
            EventTracer::new(0),
        );
        let mut metrics = std::mem::take(&mut *self.hub.metrics.lock().expect("metrics lock"));
        metrics.add("trace.events_recorded", tracer.recorded());
        metrics.add("trace.events_dropped", tracer.dropped());
        (tracer.finish(), metrics)
    }

    /// The latency-attribution summary, when this hub was created with
    /// [`with_attribution`](Self::with_attribution). Does not drain —
    /// callable alongside [`finish`](Self::finish) in either order.
    pub fn attribution(&self) -> Option<AttrSummary> {
        self.hub
            .attr
            .as_ref()
            .map(|a| a.collector.lock().expect("attr lock").summarize())
    }
}

/// The lone disabled probe with a `'static` home, for trait default
/// methods that hand out `&Probe` without storing one.
static DISABLED_PROBE: Probe = Probe(None);

/// A cheap, cloneable recording handle.
///
/// The default probe is disabled: every call short-circuits on a single
/// `Option` check. Probes are `Send + Sync` (the hub is mutex-guarded),
/// but within this workspace a probe never crosses a thread — hubs are
/// per-cell.
#[derive(Debug, Clone, Default)]
pub struct Probe(Option<Arc<Hub>>);

impl Probe {
    /// The no-op probe — what every component starts with.
    pub fn disabled() -> Self {
        Probe(None)
    }

    /// A `'static` disabled probe, for trait default methods returning
    /// `&Probe`.
    pub fn disabled_ref() -> &'static Probe {
        &DISABLED_PROBE
    }

    /// Whether recording calls will actually store anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records a `[start, end)` span on `track`.
    #[inline]
    pub fn span(&self, track: Track, name: &'static str, start: Picos, end: Picos) {
        if let Some(hub) = &self.0 {
            hub.tracer.lock().expect("tracer lock").record(TraceEvent {
                ts_ps: start.as_ps(),
                dur_ps: end.as_ps().saturating_sub(start.as_ps()),
                track,
                name,
                args: Vec::new(),
            });
        }
    }

    /// Records a span carrying small numeric args (byte counts, rows).
    #[inline]
    pub fn span_args(
        &self,
        track: Track,
        name: &'static str,
        start: Picos,
        end: Picos,
        args: &[(&'static str, u64)],
    ) {
        if let Some(hub) = &self.0 {
            hub.tracer.lock().expect("tracer lock").record(TraceEvent {
                ts_ps: start.as_ps(),
                dur_ps: end.as_ps().saturating_sub(start.as_ps()),
                track,
                name,
                args: args.to_vec(),
            });
        }
    }

    /// Records a zero-duration instant on `track`.
    #[inline]
    pub fn instant(&self, track: Track, name: &'static str, at: Picos) {
        if let Some(hub) = &self.0 {
            hub.tracer.lock().expect("tracer lock").record(TraceEvent {
                ts_ps: at.as_ps(),
                dur_ps: 0,
                track,
                name,
                args: Vec::new(),
            });
        }
    }

    /// Records `dur` into the latency histogram `name`.
    #[inline]
    pub fn latency(&self, name: &str, dur: Picos) {
        if let Some(hub) = &self.0 {
            hub.metrics
                .lock()
                .expect("metrics lock")
                .record_latency_ps(name, dur.as_ps());
        }
    }

    /// Adds `delta` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(hub) = &self.0 {
            hub.metrics.lock().expect("metrics lock").add(name, delta);
        }
    }

    // --- latency attribution -----------------------------------------
    //
    // The protocol: the layer that *issues* a request tags the cursor
    // (`attr_tag` with an explicit ordinal, or `attr_tag_next` for
    // self-numbering scopes), then the layer(s) that *service* it call
    // `attr_span` at issue time, bucket every advance of the returned
    // builder, and commit with `attr_record`. Nested servicing layers
    // record under the same cursor, so an SSD read inside a staging
    // chunk shares that chunk's (scope, index).

    /// Whether latency attribution is collected. A single check on the
    /// hot path: `None` hub short-circuits like every other probe call.
    #[inline]
    pub fn attr_on(&self) -> bool {
        matches!(&self.0, Some(hub) if hub.attr.is_some())
    }

    /// Sets the attribution cursor to `(scope, index)` — called by the
    /// issuing layer before the serviced request records.
    #[inline]
    pub fn attr_tag(&self, scope: AttrScope, index: u64) {
        if let Some(attr) = self.0.as_ref().and_then(|h| h.attr.as_ref()) {
            attr.scope.store(scope as u8, Ordering::Relaxed);
            attr.index.store(index, Ordering::Relaxed);
        }
    }

    /// Tags the cursor with `scope`'s next self-numbered ordinal.
    #[inline]
    pub fn attr_tag_next(&self, scope: AttrScope) {
        if let Some(attr) = self.0.as_ref().and_then(|h| h.attr.as_ref()) {
            let index = attr.next[scope as usize].fetch_add(1, Ordering::Relaxed);
            attr.scope.store(scope as u8, Ordering::Relaxed);
            attr.index.store(index, Ordering::Relaxed);
        }
    }

    /// Advances the cursor's request ordinal by one, keeping the scope
    /// — the batched-stream path's per-op step.
    #[inline]
    pub fn attr_advance(&self) {
        if let Some(attr) = self.0.as_ref().and_then(|h| h.attr.as_ref()) {
            attr.index.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Tags the cursor with the owning tenant of the in-flight request —
    /// the fleet dispatcher's per-request call. Records committed while
    /// the tag is set carry the tenant;
    /// [`attr_untag_tenant`](Self::attr_untag_tenant) clears it.
    #[inline]
    pub fn attr_tag_tenant(&self, tenant: u32) {
        if let Some(attr) = self.0.as_ref().and_then(|h| h.attr.as_ref()) {
            attr.tenant.store(u64::from(tenant), Ordering::Relaxed);
        }
    }

    /// Clears the tenant tag; subsequent records are untagged again.
    #[inline]
    pub fn attr_untag_tenant(&self) {
        if let Some(attr) = self.0.as_ref().and_then(|h| h.attr.as_ref()) {
            attr.tenant.store(NO_TENANT, Ordering::Relaxed);
        }
    }

    /// Starts a conserving span builder at `start`, or `None` when
    /// attribution is off — the servicing layer's single check.
    #[inline]
    pub fn attr_span(&self, start: Picos) -> Option<AttrSpan> {
        if self.attr_on() {
            Some(AttrSpan::new(start))
        } else {
            None
        }
    }

    /// Commits a finished span under the current cursor. The builder's
    /// cursor position is the request's completion time, so the record
    /// conserves by construction.
    pub fn attr_record(&self, source: &'static str, span: &AttrSpan) {
        if let Some(attr) = self.0.as_ref().and_then(|h| h.attr.as_ref()) {
            let tenant = attr.tenant.load(Ordering::Relaxed);
            let rec = AttrRecord {
                scope: AttrScope::from_u8(attr.scope.load(Ordering::Relaxed)),
                index: attr.index.load(Ordering::Relaxed),
                source,
                start_ps: span.start.as_ps(),
                dur_ps: span.cursor.as_ps().saturating_sub(span.start.as_ps()),
                span: span.span,
                tenant: (tenant != NO_TENANT).then_some(tenant as u32),
            };
            attr.collector.lock().expect("attr lock").record(rec);
        }
    }
}

/// A conserving per-request span builder: a monotone time cursor whose
/// every advance is bucketed into a [`Cause`], so the committed record's
/// causes sum exactly to its wall time by construction.
#[derive(Debug, Clone)]
pub struct AttrSpan {
    start: Picos,
    cursor: Picos,
    span: LatencySpan,
}

impl AttrSpan {
    /// A builder whose request was issued at `start`.
    pub fn new(start: Picos) -> Self {
        AttrSpan {
            start,
            cursor: start,
            span: LatencySpan::new(),
        }
    }

    /// Advances the cursor to `to`, attributing the elapsed time to
    /// `cause`. A `to` at or before the cursor attributes nothing (the
    /// resource was already free / the phase was skipped).
    #[inline]
    pub fn advance(&mut self, cause: Cause, to: Picos) {
        if to > self.cursor {
            self.span.add(cause, (to - self.cursor).as_ps());
            self.cursor = to;
        }
    }

    /// The cursor's current position.
    pub fn cursor(&self) -> Picos {
        self.cursor
    }

    /// The decomposition accumulated so far.
    pub fn span(&self) -> &LatencySpan {
        &self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        p.span(Track::new("t", 0), "e", Picos::ZERO, Picos::from_ns(1));
        p.latency("lat", Picos::from_ns(5));
        p.count("c", 1);
        // Nothing observable — and no hub exists to observe.
    }

    #[test]
    fn default_probe_is_disabled() {
        assert!(!Probe::default().is_enabled());
    }

    #[test]
    fn hub_collects_spans_and_metrics() {
        let hub = Telemetry::new(16);
        let p = hub.probe();
        assert!(p.is_enabled());
        let track = Track::new("partition", 2);
        p.span(track, "activate", Picos::from_ns(10), Picos::from_ns(25));
        p.instant(track, "rdb_hit", Picos::from_ns(30));
        p.latency("pram.read", Picos::from_ns(15));
        p.count("pram.requests", 3);

        let (events, metrics) = hub.finish();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "activate");
        assert_eq!(events[0].dur_ps, 15_000);
        assert_eq!(events[1].dur_ps, 0);
        assert_eq!(metrics.counter("pram.requests"), Some(3));
        assert_eq!(metrics.counter("trace.events_recorded"), Some(2));
        assert_eq!(metrics.counter("trace.events_dropped"), Some(0));
        assert_eq!(metrics.histogram("pram.read").unwrap().count(), 1);
    }

    #[test]
    fn merge_metrics_folds_component_counters_into_the_hub() {
        let hub = Telemetry::new(4);
        hub.probe().count("pram.reads", 2);
        let mut end_of_run = MetricSet::new();
        end_of_run.add("pram.reads", 3);
        end_of_run.add("pram.rab_hits", 7);
        hub.merge_metrics(&end_of_run);
        let (_, m) = hub.finish();
        assert_eq!(m.counter("pram.reads"), Some(5));
        assert_eq!(m.counter("pram.rab_hits"), Some(7));
    }

    #[test]
    fn attribution_records_under_the_tagged_cursor() {
        let hub = Telemetry::with_attribution(4);
        let p = hub.probe();
        assert!(p.attr_on());
        // Plain hubs and disabled probes stay inert.
        assert!(!Telemetry::new(4).probe().attr_on());
        assert!(Probe::disabled().attr_span(Picos::ZERO).is_none());
        assert!(!Probe::disabled_ref().attr_on());

        // Issue side tags, service side buckets a monotone cursor.
        p.attr_tag(AttrScope::Exec, 41);
        p.attr_tag_tenant(7);
        p.attr_advance(); // batched path steps to 42
        let at = Picos::from_ns(100);
        let mut span = p.attr_span(at).expect("attr on");
        span.advance(Cause::QueueWait, Picos::from_ns(130));
        span.advance(Cause::QueueWait, Picos::from_ns(120)); // backwards: no-op
        span.advance(Cause::ArrayAccess, Picos::from_ns(180));
        span.advance(Cause::DataBurst, Picos::from_ns(200));
        p.attr_record("pram.read", &span);

        // Self-numbering scopes hand out 0, 1, 2, ...; untagging the
        // tenant leaves later records untagged.
        p.attr_untag_tenant();
        p.attr_tag_next(AttrScope::StageIn);
        let mut s2 = p.attr_span(Picos::ZERO).expect("attr on");
        s2.advance(Cause::Media, Picos::from_ns(10));
        p.attr_record("ssd.read", &s2);

        let a = hub.attribution().expect("attribution collected");
        assert!(a.conserves(), "{a:?}");
        assert_eq!(a.records, 2);
        assert_eq!(a.wall_ps, 100_000 + 10_000);
        let exec = a.scopes.iter().find(|s| s.scope == AttrScope::Exec);
        assert_eq!(exec.expect("exec scope").records, 1);
        assert_eq!(a.top[0].index, 42, "tag + advance = batched ordinal");
        assert_eq!(a.top[0].source, "pram.read");
        assert_eq!(a.top[0].tenant, Some(7), "tenant tag rides the record");
        assert_eq!(a.top[1].index, 0, "stage_in numbered itself");
        assert_eq!(a.top[1].tenant, None, "untagged after attr_untag_tenant");
        assert!(Telemetry::new(4).attribution().is_none());
    }

    #[test]
    fn finish_leaves_probes_harmless() {
        let hub = Telemetry::new(4);
        let p = hub.probe();
        p.count("c", 1);
        let (_, m) = hub.finish();
        assert_eq!(m.counter("c"), Some(1));
        // A straggler write after finish lands in the fresh buffer and
        // is simply never read — no panic, no corruption.
        p.count("c", 1);
    }
}
