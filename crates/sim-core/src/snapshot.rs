//! Snapshotable simulation state: the [`Snapshot`] contract.
//!
//! Every stateful layer of the simulator — PRAM modules, the
//! controller, FTLs, page caches, the host staging stack, the execution
//! engine's cursor — implements [`Snapshot`]: it can serialize its
//! *complete* mutable state into a versioned, JSON-serializable
//! [`StateImage`] and later restore from one, such that a restored
//! instance continues byte-identically to the original. This is the
//! substrate of deterministic record/replay (checkpoint every N
//! requests, re-execute a window, compare fingerprints) and the
//! prerequisite for sharding one huge run across processes.
//!
//! Contract:
//!
//! * `restore(snapshot())` must be a semantic no-op: every subsequent
//!   access, energy charge and metric is identical to the uninterrupted
//!   run.
//! * Images are self-describing: a `kind` tag names the producing
//!   layer and a `version` gates schema evolution. Restoring a wrong
//!   kind or unknown version fails loudly with a typed
//!   [`SnapshotError`], never by silently misinterpreting fields.
//! * Derived state (probes, memoized pure caches, materialized energy
//!   ledgers) is *not* captured; restore leaves it untouched or resets
//!   it, and the contract above pins that this cannot change outputs.

use util::json::{FromJson, Json, JsonError, ToJson};

/// A versioned, JSON-serializable image of one component's state.
#[derive(Debug, Clone, PartialEq)]
pub struct StateImage {
    /// Schema version of `data` for this `kind`.
    pub version: u32,
    /// Which layer produced the image (e.g. `"pram-ctrl/controller"`).
    pub kind: String,
    /// The layer's serialized state.
    pub data: Json,
}

util::json_struct!(StateImage {
    version,
    kind,
    data
});

impl StateImage {
    /// Assembles an image.
    pub fn new(kind: &str, version: u32, data: Json) -> Self {
        StateImage {
            version,
            kind: kind.to_string(),
            data,
        }
    }

    /// Validates the envelope and hands back the payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::KindMismatch`] / [`SnapshotError::VersionMismatch`]
    /// when the image belongs to a different layer or schema revision.
    pub fn expect(&self, kind: &str, version: u32) -> Result<&Json, SnapshotError> {
        if self.kind != kind {
            return Err(SnapshotError::KindMismatch {
                expected: kind.to_string(),
                got: self.kind.clone(),
            });
        }
        if self.version != version {
            return Err(SnapshotError::VersionMismatch {
                kind: kind.to_string(),
                expected: version,
                got: self.version,
            });
        }
        Ok(&self.data)
    }
}

/// Why a snapshot could not be restored (or taken).
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The image belongs to a different layer.
    KindMismatch {
        /// The kind the restoring component expected.
        expected: String,
        /// The kind found in the image.
        got: String,
    },
    /// The image's schema revision is not the one this build writes.
    VersionMismatch {
        /// The image kind.
        kind: String,
        /// The schema version this build understands.
        expected: u32,
        /// The version found in the image.
        got: u32,
    },
    /// A payload field failed to parse back.
    Malformed {
        /// The image kind.
        kind: String,
        /// The underlying JSON conversion error.
        error: JsonError,
    },
    /// The component does not support snapshotting.
    Unsupported {
        /// A label naming the component.
        component: String,
    },
    /// The image's shape disagrees with the restoring component's
    /// static configuration (e.g. a different channel/module count).
    ShapeMismatch {
        /// The image kind.
        kind: String,
        /// What disagreed.
        detail: String,
    },
}

impl SnapshotError {
    /// Convenience constructor for [`SnapshotError::Malformed`].
    pub fn malformed(kind: &str, error: JsonError) -> Self {
        SnapshotError::Malformed {
            kind: kind.to_string(),
            error,
        }
    }

    /// Convenience constructor for [`SnapshotError::Unsupported`].
    pub fn unsupported(component: &str) -> Self {
        SnapshotError::Unsupported {
            component: component.to_string(),
        }
    }

    /// Convenience constructor for [`SnapshotError::ShapeMismatch`].
    pub fn shape(kind: &str, detail: impl Into<String>) -> Self {
        SnapshotError::ShapeMismatch {
            kind: kind.to_string(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::KindMismatch { expected, got } => {
                write!(f, "state image kind mismatch: expected {expected:?}, got {got:?}")
            }
            SnapshotError::VersionMismatch {
                kind,
                expected,
                got,
            } => write!(
                f,
                "state image {kind:?} version mismatch: this build writes v{expected}, image is v{got}"
            ),
            SnapshotError::Malformed { kind, error } => {
                write!(f, "malformed {kind:?} state image: {error}")
            }
            SnapshotError::Unsupported { component } => {
                write!(f, "{component} does not support state snapshots")
            }
            SnapshotError::ShapeMismatch { kind, detail } => {
                write!(f, "state image {kind:?} shape mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A component whose complete mutable state can round-trip through a
/// [`StateImage`].
pub trait Snapshot {
    /// Serializes the component's state.
    fn snapshot(&self) -> StateImage;

    /// Restores the component from `image`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the image belongs to a
    /// different layer, carries an unknown schema version, or fails to
    /// parse; the component is left unchanged on error where the
    /// implementation can afford it (envelope checks always precede
    /// mutation).
    fn restore(&mut self, image: &StateImage) -> Result<(), SnapshotError>;
}

/// Implements [`Snapshot`] for a type whose `ToJson`/`FromJson` pair
/// covers its complete mutable state: snapshot serializes `self`,
/// restore parses and replaces `*self` wholesale.
///
/// Only use this for types with no unserialized runtime attachments
/// (probes are the usual offender — types carrying one need a manual
/// impl that preserves it across restore).
#[macro_export]
macro_rules! snapshot_via_json {
    ($ty:ty, $kind:expr, $version:expr) => {
        impl $crate::snapshot::Snapshot for $ty {
            fn snapshot(&self) -> $crate::snapshot::StateImage {
                $crate::snapshot::StateImage::new(
                    $kind,
                    $version,
                    util::json::ToJson::to_json(self),
                )
            }

            fn restore(
                &mut self,
                image: &$crate::snapshot::StateImage,
            ) -> Result<(), $crate::snapshot::SnapshotError> {
                let data = image.expect($kind, $version)?;
                *self = <$ty as util::json::FromJson>::from_json(data)
                    .map_err(|e| $crate::snapshot::SnapshotError::malformed($kind, e))?;
                Ok(())
            }
        }
    };
}

/// Serializes any map-like sequence of `(u64, V)` pairs sorted by key,
/// so images are byte-stable regardless of hash-map iteration order.
pub fn sorted_pairs<V: ToJson>(iter: impl Iterator<Item = (u64, V)>) -> Json {
    let mut pairs: Vec<(u64, V)> = iter.collect();
    pairs.sort_by_key(|(k, _)| *k);
    Json::Arr(
        pairs
            .into_iter()
            .map(|(k, v)| Json::Arr(vec![Json::U64(k), v.to_json()]))
            .collect(),
    )
}

/// Parses what [`sorted_pairs`] wrote.
///
/// # Errors
///
/// Returns a [`JsonError`] when the value is not an array of
/// `[key, value]` pairs.
pub fn pairs_from<V: FromJson>(v: &Json) -> Result<Vec<(u64, V)>, JsonError> {
    Vec::<(u64, V)>::from_json(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Counter {
        count: u64,
        total: u64,
    }
    util::json_struct!(Counter { count, total });
    crate::snapshot_via_json!(Counter, "test/counter", 1);

    #[test]
    fn round_trip_is_identity() {
        let mut c = Counter { count: 3, total: 9 };
        let img = c.snapshot();
        c.count = 100;
        c.restore(&img).unwrap();
        assert_eq!(c, Counter { count: 3, total: 9 });
    }

    #[test]
    fn envelope_mismatches_are_loud_typed_errors() {
        let c = Counter { count: 1, total: 2 };
        let mut img = c.snapshot();
        img.kind = "test/other".into();
        let mut d = c.clone();
        assert!(matches!(
            d.restore(&img),
            Err(SnapshotError::KindMismatch { .. })
        ));

        let mut img = c.snapshot();
        img.version = 99;
        assert!(matches!(
            d.restore(&img),
            Err(SnapshotError::VersionMismatch { got: 99, .. })
        ));

        let mut img = c.snapshot();
        img.data = Json::Str("garbage".into());
        let err = d.restore(&img).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }));
        assert!(err.to_string().contains("test/counter"), "{err}");
    }

    #[test]
    fn images_round_trip_through_json_text() {
        let img = StateImage::new("test/counter", 1, Json::U64(7));
        let back = StateImage::from_json_str(&img.to_json_string()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn sorted_pairs_are_order_independent() {
        let a = sorted_pairs([(3u64, 30u64), (1, 10), (2, 20)].into_iter());
        let b = sorted_pairs([(1u64, 10u64), (2, 20), (3, 30)].into_iter());
        assert_eq!(a, b);
        let back = pairs_from::<u64>(&a).unwrap();
        assert_eq!(back, vec![(1, 10), (2, 20), (3, 30)]);
    }
}
