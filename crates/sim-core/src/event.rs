//! A minimal discrete-event queue.
//!
//! Event-driven embedders advance simulated time by repeatedly popping
//! the earliest pending [`Event`]. Events carry an opaque payload type
//! `T` chosen by the embedding simulator; ties at the same timestamp are
//! broken by insertion order so simulation stays deterministic.

use crate::time::Picos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence: a payload due at a simulated instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// When the event fires.
    pub at: Picos,
    /// Monotonic sequence number; breaks timestamp ties deterministically.
    pub seq: u64,
    /// The embedder-defined payload.
    pub payload: T,
}

/// Internal heap entry ordered as a *min*-heap on `(at, seq)`.
struct HeapEntry<T>(Event<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the earliest event first.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// A deterministic discrete-event priority queue.
///
/// # Examples
///
/// ```
/// use sim_core::event::EventQueue;
/// use sim_core::time::Picos;
///
/// let mut q = EventQueue::new();
/// q.push(Picos::from_ns(30), "late");
/// q.push(Picos::from_ns(10), "early");
/// q.push(Picos::from_ns(10), "early-second");
///
/// let e = q.pop().unwrap();
/// assert_eq!((e.at, e.payload), (Picos::from_ns(10), "early"));
/// let e = q.pop().unwrap();
/// assert_eq!(e.payload, "early-second"); // FIFO within a timestamp
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
    now: Picos,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for HeapEntry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEntry")
            .field("at", &self.0.at)
            .field("seq", &self.0.seq)
            .finish()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Picos::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the last popped event
    /// (or zero before any pop).
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulated time — the
    /// causality violation would silently corrupt results otherwise.
    pub fn push(&mut self, at: Picos, payload: T) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { at, seq, payload }));
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn push_after(&mut self, delay: Picos, payload: T) {
        self.push(self.now + delay, payload);
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let e = self.heap.pop()?.0;
        self.now = e.at;
        Some(e)
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Picos> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Picos::from_ns(5), 5u32);
        q.push(Picos::from_ns(1), 1);
        q.push(Picos::from_ns(3), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_broken_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(Picos::from_ns(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(Picos::from_ns(10), ());
        assert_eq!(q.now(), Picos::ZERO);
        q.pop();
        assert_eq!(q.now(), Picos::from_ns(10));
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(Picos::from_ns(10), "a");
        q.pop();
        q.push_after(Picos::from_ns(5), "b");
        assert_eq!(q.pop().unwrap().at, Picos::from_ns(15));
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Picos::from_ns(10), ());
        q.pop();
        q.push(Picos::from_ns(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(Picos::from_ns(1), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Picos::from_ns(1)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
