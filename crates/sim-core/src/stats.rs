//! Measurement primitives: counters, histograms and time-series.
//!
//! These feed the figure-regeneration benches: e.g. [`TimeSeries`] with a
//! fixed bucket width produces the IPC-over-time curves of Figs. 18–19 and
//! the power curves of Figs. 20–21.

use crate::time::Picos;
use std::fmt;

/// A monotonically increasing named counter.
///
/// # Examples
///
/// ```
/// use sim_core::stats::Counter;
///
/// let mut c = Counter::new("l2_misses");
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

util::json_struct!(Counter { name, value });

impl Counter {
    /// Creates a zeroed counter with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A fixed-bucket latency histogram over [`Picos`] samples.
///
/// Buckets are exponential (powers of two of nanoseconds) which spans the
/// nine decades between a 100 ns PRAM read and a 60 ms erase without
/// configuration.
///
/// # Examples
///
/// ```
/// use sim_core::{stats::Histogram, Picos};
///
/// let mut h = Histogram::new();
/// h.record(Picos::from_ns(100));
/// h.record(Picos::from_us(10));
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() > Picos::from_us(5));
/// assert_eq!(h.max(), Picos::from_us(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// bucket i counts samples with floor(log2(ns)) == i (ns < 1 goes to 0).
    buckets: Vec<u64>,
    count: u64,
    sum: Picos,
    min: Picos,
    max: Picos,
}

util::json_struct!(Histogram {
    buckets,
    count,
    sum,
    min,
    max
});

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Number of exponential buckets: 2^39 ns ≈ 9 minutes, ample headroom.
    const BUCKETS: usize = 40;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            sum: Picos::ZERO,
            min: Picos::MAX,
            max: Picos::ZERO,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Picos) {
        let ns = sample.as_ps() / 1_000;
        let idx = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(Self::BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> Picos {
        self.sum
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> Picos {
        if self.count == 0 {
            Picos::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> Picos {
        if self.count == 0 {
            Picos::ZERO
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Picos {
        self.max
    }

    /// Approximate quantile (bucket upper bound), `q` in `0.0..=1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Picos {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return Picos::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Picos::from_ns(1u64 << (i + 1));
            }
        }
        self.max
    }
}

/// A time-bucketed series of accumulating samples — the backbone of the
/// paper's IPC and power time-series figures.
///
/// Values added within the same `bucket` (of fixed width) accumulate; the
/// series exposes per-bucket sums and averages.
///
/// # Examples
///
/// ```
/// use sim_core::{stats::TimeSeries, Picos};
///
/// // One bucket per microsecond.
/// let mut ipc = TimeSeries::new(Picos::from_us(1));
/// ipc.add(Picos::from_ns(100), 2.0);
/// ipc.add(Picos::from_ns(900), 2.0);
/// ipc.add(Picos::from_us(1) + Picos::from_ns(1), 1.0);
/// assert_eq!(ipc.buckets().len(), 2);
/// assert_eq!(ipc.buckets()[0].1, 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    bucket_width: Picos,
    /// Sparse map from bucket index to accumulated value, kept sorted.
    data: Vec<(u64, f64)>,
}

util::json_struct!(TimeSeries { bucket_width, data });

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: Picos) -> Self {
        Self::with_capacity(bucket_width, 0)
    }

    /// Like [`TimeSeries::new`] with room for `capacity` non-empty
    /// buckets up front — hot producers (the execution engine's IPC and
    /// power curves) use this to avoid growth reallocations mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    pub fn with_capacity(bucket_width: Picos, capacity: usize) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be non-zero");
        TimeSeries {
            bucket_width,
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> Picos {
        self.bucket_width
    }

    /// Accumulates `value` into the bucket containing instant `at`.
    pub fn add(&mut self, at: Picos, value: f64) {
        // Producers overwhelmingly append in non-decreasing time order
        // (the execution engine always advances the earliest agent) and
        // mostly land in the tail bucket, so test the tail's time range
        // first — it avoids the 64-bit division on the hot path (the
        // engine calls this twice per executed op).
        let ps = at.as_ps();
        if let Some(&mut (last, ref mut v)) = self.data.last_mut() {
            let start = last * self.bucket_width.as_ps();
            if ps >= start && ps - start < self.bucket_width.as_ps() {
                *v += value;
                return;
            }
        }
        let idx = ps / self.bucket_width.as_ps();
        match self.data.last_mut() {
            Some(&mut (last, _)) if last < idx => self.data.push((idx, value)),
            None => self.data.push((idx, value)),
            _ => match self.data.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.data[pos].1 += value,
                Err(pos) => self.data.insert(pos, (idx, value)),
            },
        }
    }

    /// The non-empty buckets as `(bucket_start_time, accumulated_value)`,
    /// in time order.
    pub fn buckets(&self) -> Vec<(Picos, f64)> {
        self.data
            .iter()
            .map(|&(i, v)| (self.bucket_width * i, v))
            .collect()
    }

    /// A dense rendering over `[0, horizon)` with zeros for empty buckets —
    /// what the figure benches print.
    pub fn dense(&self, horizon: Picos) -> Vec<f64> {
        let n = horizon.as_ps().div_ceil(self.bucket_width.as_ps()) as usize;
        let mut out = vec![0.0; n];
        for &(i, v) in &self.data {
            if (i as usize) < n {
                out[i as usize] = v;
            }
        }
        out
    }

    /// Sum over all buckets.
    pub fn total(&self) -> f64 {
        self.data.iter().map(|&(_, v)| v).sum()
    }

    /// Highest non-empty bucket end time (zero when empty).
    pub fn horizon(&self) -> Picos {
        self.data
            .last()
            .map(|&(i, _)| self.bucket_width * (i + 1))
            .unwrap_or(Picos::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(10);
        assert_eq!(c.value(), 11);
        assert_eq!(c.to_string(), "x=11");
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 300, 400] {
            h.record(Picos::from_ns(ns));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Picos::from_ns(250));
        assert_eq!(h.min(), Picos::from_ns(100));
        assert_eq!(h.max(), Picos::from_ns(400));
        assert_eq!(h.sum(), Picos::from_ns(1000));
    }

    #[test]
    fn histogram_empty_is_well_behaved() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Picos::ZERO);
        assert_eq!(h.min(), Picos::ZERO);
        assert_eq!(h.max(), Picos::ZERO);
        assert_eq!(h.quantile(0.5), Picos::ZERO);
    }

    #[test]
    fn histogram_spans_erase_latency() {
        let mut h = Histogram::new();
        h.record(Picos::from_ms(60)); // PRAM erase
        h.record(Picos::from_ns(100)); // PRAM read
        assert_eq!(h.max(), Picos::from_ms(60));
        assert!(h.quantile(1.0) >= Picos::from_ms(60));
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Picos::from_ns(i));
        }
        let q10 = h.quantile(0.1);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q10 <= q50 && q50 <= q99);
    }

    #[test]
    fn timeseries_buckets_accumulate() {
        let mut ts = TimeSeries::new(Picos::from_ns(10));
        ts.add(Picos::from_ns(1), 1.0);
        ts.add(Picos::from_ns(9), 1.0);
        ts.add(Picos::from_ns(10), 5.0);
        ts.add(Picos::from_ns(35), 7.0);
        let b = ts.buckets();
        assert_eq!(
            b,
            vec![
                (Picos::from_ns(0), 2.0),
                (Picos::from_ns(10), 5.0),
                (Picos::from_ns(30), 7.0)
            ]
        );
        assert_eq!(ts.total(), 14.0);
        assert_eq!(ts.horizon(), Picos::from_ns(40));
    }

    #[test]
    fn timeseries_dense_fills_gaps() {
        let mut ts = TimeSeries::new(Picos::from_ns(10));
        ts.add(Picos::from_ns(25), 3.0);
        let d = ts.dense(Picos::from_ns(50));
        assert_eq!(d, vec![0.0, 0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn timeseries_out_of_order_adds() {
        let mut ts = TimeSeries::new(Picos::from_ns(10));
        ts.add(Picos::from_ns(95), 1.0);
        ts.add(Picos::from_ns(5), 1.0);
        ts.add(Picos::from_ns(45), 1.0);
        let b = ts.buckets();
        assert_eq!(b.len(), 3);
        assert!(b.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    #[should_panic(expected = "bucket width must be non-zero")]
    fn zero_bucket_width_rejected() {
        let _ = TimeSeries::new(Picos::ZERO);
    }
}
