//! Resource-occupancy timelines.
//!
//! The memory and storage subsystems in this reproduction are modeled as a
//! set of contended resources (a PRAM partition, a channel data bus, a
//! firmware core, a PCIe link, a flash die …). Each resource is a
//! [`Timeline`]: it remembers when it becomes free and how long it has been
//! busy in total. A request's latency is computed by *walking* its protocol
//! phases across the timelines it touches — exactly how the paper reasons
//! about its timing diagrams (Figs. 11–12).
//!
//! This resource-timeline style is deterministic, allocation-free on the
//! hot path, and makes overlap effects (the multi-resource aware
//! interleaving of §V-A) directly auditable in tests.

use crate::time::Picos;

/// A single contended resource.
///
/// # Examples
///
/// ```
/// use sim_core::{Timeline, Picos};
///
/// let mut bus = Timeline::new();
/// // First burst occupies [0, 40ns).
/// let start = bus.reserve(Picos::ZERO, Picos::from_ns(40));
/// assert_eq!(start, Picos::ZERO);
/// // A burst requested at 10ns must wait until the bus frees at 40ns.
/// let start = bus.reserve(Picos::from_ns(10), Picos::from_ns(40));
/// assert_eq!(start, Picos::from_ns(40));
/// assert_eq!(bus.free_at(), Picos::from_ns(80));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    free_at: Picos,
    busy_total: Picos,
    reservations: u64,
}

util::json_struct!(Timeline {
    free_at,
    busy_total,
    reservations
});

impl Timeline {
    /// Creates a timeline that is free from time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Earliest instant at which the resource is free.
    pub fn free_at(&self) -> Picos {
        self.free_at
    }

    /// Total time the resource has been occupied.
    pub fn busy_total(&self) -> Picos {
        self.busy_total
    }

    /// Number of reservations made so far.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Occupies the resource for `dur`, starting no earlier than `earliest`.
    ///
    /// Returns the actual start time (i.e. `max(earliest, free_at)`), and
    /// moves the free instant to `start + dur`.
    pub fn reserve(&mut self, earliest: Picos, dur: Picos) -> Picos {
        let start = earliest.max(self.free_at);
        self.free_at = start + dur;
        self.busy_total += dur;
        self.reservations += 1;
        start
    }

    /// Like [`reserve`](Self::reserve) but returns `(start, end)`.
    pub fn reserve_span(&mut self, earliest: Picos, dur: Picos) -> (Picos, Picos) {
        let start = self.reserve(earliest, dur);
        (start, start + dur)
    }

    /// When would a reservation start, without making it?
    pub fn probe(&self, earliest: Picos) -> Picos {
        earliest.max(self.free_at)
    }

    /// Forces the resource busy until at least `until` (used for long
    /// blocking operations such as a 60 ms PRAM erase that suspends the
    /// whole partition).
    pub fn block_until(&mut self, until: Picos) {
        if until > self.free_at {
            self.busy_total += until - self.free_at;
            self.free_at = until;
        }
    }

    /// Utilization over a window `[0, horizon]`, in `0.0..=1.0`.
    ///
    /// A zero-length window reports `0.0` (nothing can be busy over an
    /// empty window) rather than dividing by zero — degenerate horizons
    /// show up legitimately when a component never ran.
    pub fn utilization(&self, horizon: Picos) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        (self.busy_total.as_ps() as f64 / horizon.as_ps() as f64).min(1.0)
    }
}

/// A bank of identical timelines addressed by index, with helpers for
/// "first free" scheduling policies.
///
/// # Examples
///
/// ```
/// use sim_core::{timeline::TimelineBank, Picos};
///
/// let mut rdbs = TimelineBank::new(4);
/// rdbs.get_mut(0).reserve(Picos::ZERO, Picos::from_ns(100));
/// // Index 1 is free earliest.
/// assert_eq!(rdbs.first_free(Picos::ZERO), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineBank {
    lanes: Vec<Timeline>,
}

util::json_struct!(TimelineBank { lanes });

impl TimelineBank {
    /// Creates `n` fresh timelines.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a timeline bank needs at least one lane");
        TimelineBank {
            lanes: vec![Timeline::new(); n],
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the bank has no lanes (never true for a constructed bank).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Immutable lane access.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> &Timeline {
        &self.lanes[i]
    }

    /// Mutable lane access.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get_mut(&mut self, i: usize) -> &mut Timeline {
        &mut self.lanes[i]
    }

    /// Index of the lane that frees earliest; ties go to the lowest index.
    pub fn first_free(&self, earliest: Picos) -> usize {
        let mut best = 0usize;
        let mut best_t = self.lanes[0].probe(earliest);
        for (i, lane) in self.lanes.iter().enumerate().skip(1) {
            let t = lane.probe(earliest);
            if t < best_t {
                best = i;
                best_t = t;
            }
        }
        best
    }

    /// Iterates over lanes.
    pub fn iter(&self) -> std::slice::Iter<'_, Timeline> {
        self.lanes.iter()
    }

    /// Total busy time across all lanes.
    pub fn busy_total(&self) -> Picos {
        self.lanes.iter().map(|l| l.busy_total()).sum()
    }

    /// Latest free instant across the bank.
    pub fn all_free_at(&self) -> Picos {
        self.lanes
            .iter()
            .map(|l| l.free_at())
            .fold(Picos::ZERO, Picos::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_serializes_overlapping_requests() {
        let mut t = Timeline::new();
        let s1 = t.reserve(Picos::from_ns(0), Picos::from_ns(10));
        let s2 = t.reserve(Picos::from_ns(5), Picos::from_ns(10));
        let s3 = t.reserve(Picos::from_ns(50), Picos::from_ns(10));
        assert_eq!(s1, Picos::from_ns(0));
        assert_eq!(s2, Picos::from_ns(10)); // queued behind s1
        assert_eq!(s3, Picos::from_ns(50)); // idle gap preserved
        assert_eq!(t.busy_total(), Picos::from_ns(30));
        assert_eq!(t.reservations(), 3);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut t = Timeline::new();
        t.reserve(Picos::ZERO, Picos::from_ns(10));
        let before = t.clone();
        assert_eq!(t.probe(Picos::from_ns(3)), Picos::from_ns(10));
        assert_eq!(t, before);
    }

    #[test]
    fn block_until_extends_busy() {
        let mut t = Timeline::new();
        t.block_until(Picos::from_ms(60)); // a PRAM erase
        assert_eq!(t.free_at(), Picos::from_ms(60));
        assert_eq!(t.busy_total(), Picos::from_ms(60));
        // Blocking to an earlier time is a no-op.
        t.block_until(Picos::from_ms(1));
        assert_eq!(t.free_at(), Picos::from_ms(60));
    }

    #[test]
    fn utilization_bounds() {
        let mut t = Timeline::new();
        t.reserve(Picos::ZERO, Picos::from_ns(25));
        assert!((t.utilization(Picos::from_ns(100)) - 0.25).abs() < 1e-12);
        assert_eq!(t.utilization(Picos::from_ns(10)), 1.0); // clamped
    }

    #[test]
    fn utilization_of_zero_horizon_is_zero() {
        // Regression: a zero window used to be a division hazard; it
        // must report 0.0 (finite), busy or not.
        let mut t = Timeline::new();
        assert_eq!(t.utilization(Picos::ZERO), 0.0);
        t.reserve(Picos::ZERO, Picos::from_ns(25));
        assert_eq!(t.utilization(Picos::ZERO), 0.0);
        assert!(t.utilization(Picos::ZERO).is_finite());
    }

    #[test]
    fn bank_first_free_prefers_lowest_index_on_tie() {
        let bank = TimelineBank::new(3);
        assert_eq!(bank.first_free(Picos::ZERO), 0);
    }

    #[test]
    fn bank_first_free_finds_idle_lane() {
        let mut bank = TimelineBank::new(3);
        bank.get_mut(0).reserve(Picos::ZERO, Picos::from_ns(100));
        bank.get_mut(1).reserve(Picos::ZERO, Picos::from_ns(50));
        assert_eq!(bank.first_free(Picos::ZERO), 2);
        bank.get_mut(2).reserve(Picos::ZERO, Picos::from_ns(200));
        assert_eq!(bank.first_free(Picos::ZERO), 1);
    }

    #[test]
    fn bank_aggregates() {
        let mut bank = TimelineBank::new(2);
        bank.get_mut(0).reserve(Picos::ZERO, Picos::from_ns(10));
        bank.get_mut(1).reserve(Picos::ZERO, Picos::from_ns(30));
        assert_eq!(bank.busy_total(), Picos::from_ns(40));
        assert_eq!(bank.all_free_at(), Picos::from_ns(30));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_bank_rejected() {
        let _ = TimelineBank::new(0);
    }
}
