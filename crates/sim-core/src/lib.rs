#![warn(missing_docs)]

//! # sim-core
//!
//! Discrete-event simulation substrate shared by every crate in the
//! DRAM-less reproduction.
//!
//! The crate provides four building blocks:
//!
//! * [`time`] — a picosecond-resolution simulated clock ([`Picos`]) with
//!   exact representations of the paper's LPDDR2-NVM timing parameters
//!   (e.g. `tCK = 2.5 ns = 2500 ps`).
//! * [`event`] — a classic discrete-event queue ([`EventQueue`]) for
//!   event-driven embedders (the accelerator's engine uses an
//!   equivalent earliest-agent scan over a fixed agent set).
//! * [`timeline`] — resource-occupancy timelines ([`Timeline`]) used by the
//!   memory/storage subsystems to compute contention and overlap without a
//!   full event queue.
//! * [`stats`] / [`energy`] — counters, time-series and per-component
//!   energy accounting used to regenerate the paper's figures.
//! * [`probe`] — the runtime-switchable telemetry facade ([`Probe`] /
//!   [`Telemetry`]) over [`util::telemetry`]; disabled probes cost one
//!   `Option` check per call site.
//! * [`snapshot`] — the [`Snapshot`] trait and versioned
//!   [`StateImage`]s behind deterministic record/replay: every
//!   stateful layer can checkpoint its complete state and resume
//!   byte-identically.
//!
//! # Examples
//!
//! ```
//! use sim_core::time::Picos;
//!
//! let tck = Picos::from_ns_f64(2.5);
//! assert_eq!(tck.as_ps(), 2_500);
//! // A read preamble of RL = 6 cycles:
//! assert_eq!((tck * 6).as_ns_f64(), 15.0);
//! ```

pub mod energy;
pub mod event;
pub mod fault;
pub mod mem;
pub mod probe;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod time;
pub mod timeline;

pub use energy::{EnergyAccount, EnergyBook, Joules, Watts};
pub use event::{Event, EventQueue};
pub use fault::{FaultCounters, FaultPlan, PramFaults, ResiliencePolicy, SsdFaults};
pub use mem::{Access, FidelityTier, MemoryBackend};
pub use probe::{Probe, Telemetry};
pub use rng::SimRng;
pub use snapshot::{Snapshot, SnapshotError, StateImage};
pub use stats::{Counter, Histogram, TimeSeries};
pub use time::Picos;
pub use timeline::Timeline;
