#![warn(missing_docs)]

//! # flash
//!
//! A NAND-flash device model with a minimal page-mapping FTL, backing the
//! paper's flash-based comparison points: the external SSDs of the
//! *Hetero* / *Heterodirect* systems and the in-accelerator storage of
//! *Integrated-SLC/MLC/TLC* (Table I).
//!
//! The model captures the properties the evaluation depends on:
//!
//! * **Page-granular I/O** — reads and programs move whole 16 KB pages
//!   ("flash is well optimized for block interface operations");
//! * **Cell-kind latency tiers** — SLC/MLC/TLC read 25/50/80 µs, program
//!   300/800/1250 µs, erase 2000/3500/2274 µs (Table I);
//! * **Die-level parallelism** — independent dies service pages
//!   concurrently, which is why bulk transfers perform well while single
//!   page accesses "cannot reap the benefit of flash-level internal
//!   parallelism" (§VI-B);
//! * **Erase-before-program** — the FTL remaps writes to pre-erased pages
//!   and garbage-collects invalidated blocks.

pub mod device;
pub mod ftl;
pub mod geometry;
pub mod timing;

pub use device::{FlashDevice, FlashStats};
pub use ftl::{Ftl, FtlError, PhysPage};
pub use geometry::FlashGeometry;
pub use timing::{CellKind, FlashTiming};
