//! A minimal page-mapping flash translation layer.
//!
//! Writes never overwrite in place: each logical page programs into the
//! next free slot of a die's open block (dies rotate round-robin so bulk
//! writes engage all dies), and the previous mapping is invalidated.
//! When a die runs low on free blocks, a greedy garbage collector picks
//! the block with the fewest valid pages, relocates the survivors and
//! erases it.
//!
//! [`Ftl::write`] returns the physical operations the device must time —
//! including any GC reads/programs/erases — so the device model charges
//! exactly the work the FTL caused.

use crate::geometry::FlashGeometry;
use std::collections::HashMap;

/// Typed FTL request failures.
///
/// These used to be panics; fault injection (and hostile workloads)
/// can reach the write path, so they are surfaced as values the device
/// layer can propagate or contextualize instead of crashing the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The host addressed a logical page beyond the exported capacity.
    OvercapacityWrite {
        /// The offending logical page number.
        lpn: u64,
        /// First invalid logical page (exported capacity in pages).
        limit: u64,
    },
    /// A die ran out of free blocks — GC failed to keep headroom.
    NoFreeBlock {
        /// The die that has no free block left.
        die: usize,
    },
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FtlError::OvercapacityWrite { lpn, limit } => {
                write!(
                    f,
                    "logical page {lpn} beyond exported capacity ({limit} pages)"
                )
            }
            FtlError::NoFreeBlock { die } => {
                write!(
                    f,
                    "die {die} has no free block — GC failed to keep headroom"
                )
            }
        }
    }
}

impl std::error::Error for FtlError {}

/// A physical page location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysPage {
    /// Die index.
    pub die: usize,
    /// Block within the die.
    pub block: u32,
    /// Page within the block.
    pub page: u32,
}

util::json_struct!(PhysPage { die, block, page });

/// A physical operation the FTL requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlOp {
    /// Read a page (GC relocation source).
    Read(PhysPage),
    /// Program a page (host write or GC relocation destination).
    Program(PhysPage),
    /// Erase a block.
    Erase {
        /// Die index.
        die: usize,
        /// Block within the die.
        block: u32,
    },
}

impl util::json::ToJson for FtlOp {
    fn to_json(&self) -> util::json::Json {
        use util::json::Json;
        match *self {
            FtlOp::Read(p) => Json::Obj(vec![("Read".to_string(), p.to_json())]),
            FtlOp::Program(p) => Json::Obj(vec![("Program".to_string(), p.to_json())]),
            FtlOp::Erase { die, block } => Json::Obj(vec![(
                "Erase".to_string(),
                Json::Obj(vec![
                    ("die".to_string(), die.to_json()),
                    ("block".to_string(), block.to_json()),
                ]),
            )]),
        }
    }
}

impl util::json::FromJson for FtlOp {
    fn from_json(v: &util::json::Json) -> Result<Self, util::json::JsonError> {
        use util::json::{field, Json, JsonError};
        let pairs = match v {
            Json::Obj(pairs) if pairs.len() == 1 => pairs,
            _ => return Err(JsonError::new("expected single-key FtlOp object")),
        };
        let (tag, body) = &pairs[0];
        match tag.as_str() {
            "Read" => Ok(FtlOp::Read(PhysPage::from_json(body)?)),
            "Program" => Ok(FtlOp::Program(PhysPage::from_json(body)?)),
            "Erase" => Ok(FtlOp::Erase {
                die: field(body, "die")?,
                block: field(body, "block")?,
            }),
            other => Err(JsonError::new(format!("unknown FtlOp variant {other:?}"))),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Block {
    /// Next free page slot; `pages_per_block` means full.
    write_ptr: u32,
    /// Which logical page each slot holds (`None` = invalid/free).
    owners: Vec<Option<u64>>,
    valid: u32,
}

util::json_struct!(Block {
    write_ptr,
    owners,
    valid
});

impl Block {
    fn new(pages: u32) -> Self {
        Block {
            write_ptr: 0,
            owners: vec![None; pages as usize],
            valid: 0,
        }
    }

    fn is_free(&self) -> bool {
        self.write_ptr == 0 && self.valid == 0
    }

    fn is_full(&self, pages: u32) -> bool {
        self.write_ptr == pages
    }
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct DieState {
    open_block: Option<u32>,
}

util::json_struct!(DieState { open_block });

/// FTL statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host page writes accepted.
    pub host_programs: u64,
    /// Extra programs caused by GC relocation.
    pub gc_programs: u64,
    /// Blocks erased.
    pub erases: u64,
}

util::json_struct!(FtlStats {
    host_programs,
    gc_programs,
    erases
});

impl FtlStats {
    /// Write amplification factor: total programs / host programs.
    pub fn write_amplification(&self) -> f64 {
        if self.host_programs == 0 {
            1.0
        } else {
            (self.host_programs + self.gc_programs) as f64 / self.host_programs as f64
        }
    }
}

/// The page-mapping FTL.
#[derive(Debug, Clone, PartialEq)]
pub struct Ftl {
    geometry: FlashGeometry,
    map: HashMap<u64, PhysPage>,
    blocks: Vec<Vec<Block>>, // [die][block]
    dies: Vec<DieState>,
    /// Round-robin die cursor for host writes.
    next_die: usize,
    /// GC kicks in when a die has fewer free blocks than this.
    gc_low_water: u32,
    stats: FtlStats,
}

util::json_struct!(Ftl {
    geometry,
    map,
    blocks,
    dies,
    next_die,
    gc_low_water,
    stats
});

impl Ftl {
    /// Creates an FTL over `geometry`, garbage-collecting when a die
    /// drops below `gc_low_water` free blocks.
    ///
    /// # Panics
    ///
    /// Panics if `gc_low_water` is zero or leaves no writable blocks.
    pub fn new(geometry: FlashGeometry, gc_low_water: u32) -> Self {
        assert!(
            gc_low_water >= 1 && gc_low_water < geometry.blocks_per_die,
            "gc_low_water must be in 1..blocks_per_die"
        );
        Ftl {
            blocks: (0..geometry.dies)
                .map(|_| {
                    (0..geometry.blocks_per_die)
                        .map(|_| Block::new(geometry.pages_per_block))
                        .collect()
                })
                .collect(),
            dies: vec![DieState::default(); geometry.dies],
            map: HashMap::new(),
            next_die: 0,
            gc_low_water,
            geometry,
            stats: FtlStats::default(),
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Statistics.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Looks up where a logical page currently lives.
    pub fn translate(&self, lpn: u64) -> Option<PhysPage> {
        self.map.get(&lpn).copied()
    }

    /// Number of mapped logical pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    fn free_blocks(&self, die: usize) -> u32 {
        self.blocks[die].iter().filter(|b| b.is_free()).count() as u32
    }

    fn take_open_block(&mut self, die: usize) -> Result<u32, FtlError> {
        if let Some(b) = self.dies[die].open_block {
            if !self.blocks[die][b as usize].is_full(self.geometry.pages_per_block) {
                return Ok(b);
            }
            self.dies[die].open_block = None;
        }
        let b = self.blocks[die]
            .iter()
            .position(|b| b.is_free())
            .ok_or(FtlError::NoFreeBlock { die })? as u32;
        self.dies[die].open_block = Some(b);
        Ok(b)
    }

    fn program_into(&mut self, die: usize, lpn: u64) -> Result<PhysPage, FtlError> {
        let block = self.take_open_block(die)?;
        let blk = &mut self.blocks[die][block as usize];
        let page = blk.write_ptr;
        blk.write_ptr += 1;
        blk.owners[page as usize] = Some(lpn);
        blk.valid += 1;
        let loc = PhysPage { die, block, page };
        if let Some(old) = self.map.insert(lpn, loc) {
            let ob = &mut self.blocks[old.die][old.block as usize];
            ob.owners[old.page as usize] = None;
            ob.valid -= 1;
        }
        Ok(loc)
    }

    /// Records a host write of logical page `lpn`, returning the physical
    /// operations (program + any GC work) the device must execute, in
    /// order.
    ///
    /// # Errors
    ///
    /// [`FtlError::OvercapacityWrite`] for a logical page beyond the
    /// exported capacity; [`FtlError::NoFreeBlock`] if GC cannot keep
    /// headroom on the target die.
    pub fn write(&mut self, lpn: u64) -> Result<Vec<FtlOp>, FtlError> {
        let limit = self.geometry.logical_pages(10);
        if lpn >= limit {
            return Err(FtlError::OvercapacityWrite { lpn, limit });
        }
        let die = self.next_die;
        self.next_die = (self.next_die + 1) % self.geometry.dies;

        let mut ops = Vec::new();
        let loc = self.program_into(die, lpn)?;
        self.stats.host_programs += 1;
        ops.push(FtlOp::Program(loc));

        // Greedy GC to maintain headroom on this die.
        while self.free_blocks(die) < self.gc_low_water {
            let victim = self.pick_victim(die);
            let Some(victim) = victim else { break };
            // Relocate survivors.
            let owners: Vec<(u32, u64)> = self.blocks[die][victim as usize]
                .owners
                .iter()
                .enumerate()
                .filter_map(|(p, o)| o.map(|l| (p as u32, l)))
                .collect();
            for (page, l) in owners {
                ops.push(FtlOp::Read(PhysPage {
                    die,
                    block: victim,
                    page,
                }));
                let dst = self.program_into(die, l)?;
                self.stats.gc_programs += 1;
                ops.push(FtlOp::Program(dst));
            }
            let blk = &mut self.blocks[die][victim as usize];
            *blk = Block::new(self.geometry.pages_per_block);
            self.stats.erases += 1;
            ops.push(FtlOp::Erase { die, block: victim });
        }
        Ok(ops)
    }

    /// Victim = full, non-open block with the fewest valid pages.
    fn pick_victim(&self, die: usize) -> Option<u32> {
        let open = self.dies[die].open_block;
        self.blocks[die]
            .iter()
            .enumerate()
            .filter(|(i, b)| Some(*i as u32) != open && b.is_full(self.geometry.pages_per_block))
            .min_by_key(|(_, b)| b.valid)
            .map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> Ftl {
        Ftl::new(FlashGeometry::tiny(), 2)
    }

    #[test]
    fn first_write_maps_page() {
        let mut f = ftl();
        let ops = f.write(0).unwrap();
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], FtlOp::Program(_)));
        assert!(f.translate(0).is_some());
        assert_eq!(f.mapped_pages(), 1);
    }

    #[test]
    fn rewrite_moves_and_invalidates() {
        let mut f = ftl();
        f.write(7).unwrap();
        let first = f.translate(7).unwrap();
        f.write(7).unwrap();
        let second = f.translate(7).unwrap();
        assert_ne!(first, second, "no in-place overwrite on flash");
    }

    #[test]
    fn bulk_writes_rotate_dies() {
        let mut f = ftl();
        let mut dies = std::collections::HashSet::new();
        for lpn in 0..8 {
            f.write(lpn).unwrap();
            dies.insert(f.translate(lpn).unwrap().die);
        }
        assert_eq!(dies.len(), f.geometry().dies);
    }

    #[test]
    fn gc_reclaims_space_under_rewrite_pressure() {
        let mut f = ftl();
        // Hammer a small logical range far beyond raw capacity.
        let logical = 8u64;
        for round in 0..200 {
            for lpn in 0..logical {
                f.write(lpn).unwrap();
            }
            let _ = round;
        }
        let s = *f.stats();
        assert!(s.erases > 0, "GC must have erased blocks");
        assert!(s.write_amplification() >= 1.0);
        // All logical pages still resolvable.
        for lpn in 0..logical {
            assert!(f.translate(lpn).is_some());
        }
    }

    #[test]
    fn gc_relocation_preserves_mappings() {
        let mut f = ftl();
        // Fill a good portion of the device once (these stay valid) …
        let keep = 48u64;
        for lpn in 0..keep {
            f.write(lpn).unwrap();
        }
        // …then churn one hot page to force GC around the cold data.
        for _ in 0..2_000 {
            f.write(keep).unwrap();
        }
        for lpn in 0..=keep {
            assert!(f.translate(lpn).is_some(), "lost mapping for {lpn}");
        }
        // Mapped locations stay mutually distinct (bijectivity).
        let locs: std::collections::HashSet<_> =
            (0..=keep).map(|l| f.translate(l).unwrap()).collect();
        assert_eq!(locs.len() as u64, keep + 1);
    }

    #[test]
    fn write_amplification_grows_with_churn() {
        let mut f = ftl();
        for _ in 0..3_000 {
            f.write(3).unwrap();
        }
        assert!(f.stats().write_amplification() >= 1.0);
        assert!(f.stats().erases > 10);
    }

    #[test]
    fn overcapacity_write_rejected_with_typed_error() {
        let mut f = ftl();
        let limit = f.geometry().logical_pages(10);
        let err = f.write(limit).unwrap_err();
        assert_eq!(err, FtlError::OvercapacityWrite { lpn: limit, limit });
        assert!(err.to_string().contains("beyond exported capacity"));
        // The failed request mutated nothing.
        assert_eq!(f.mapped_pages(), 0);
        assert_eq!(f.stats().host_programs, 0);
    }
}
