//! Flash timing tiers (Table I).

use sim_core::time::Picos;

/// NAND cell density class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Single-level cell: fastest, used by "Integrated-SLC".
    Slc,
    /// Multi-level cell: the paper's default external SSD flash.
    Mlc,
    /// Triple-level cell: densest and slowest.
    Tlc,
}

util::json_unit_enum!(CellKind { Slc, Mlc, Tlc });

impl CellKind {
    /// All kinds in Table I order.
    pub const ALL: [CellKind; 3] = [CellKind::Slc, CellKind::Mlc, CellKind::Tlc];

    /// The figure label.
    pub fn label(self) -> &'static str {
        match self {
            CellKind::Slc => "SLC",
            CellKind::Mlc => "MLC",
            CellKind::Tlc => "TLC",
        }
    }
}

/// The timing of one flash device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Array-to-register page read time (tR).
    pub t_read: Picos,
    /// Register-to-array page program time (tPROG).
    pub t_program: Picos,
    /// Block erase time (tBERS).
    pub t_erase: Picos,
    /// Channel transfer bandwidth in bytes/second (ONFI-class bus).
    pub bus_bytes_per_sec: u64,
}

util::json_struct!(FlashTiming {
    t_read,
    t_program,
    t_erase,
    bus_bytes_per_sec
});

impl FlashTiming {
    /// Table I parameters for a cell kind.
    pub fn table1(kind: CellKind) -> Self {
        let (r, p, e) = match kind {
            CellKind::Slc => (25, 300, 2_000),
            CellKind::Mlc => (50, 800, 3_500),
            CellKind::Tlc => (80, 1_250, 2_274),
        };
        FlashTiming {
            t_read: Picos::from_us(r),
            t_program: Picos::from_us(p),
            t_erase: Picos::from_us(e),
            bus_bytes_per_sec: 800_000_000, // 800 MB/s ONFI channel
        }
    }

    /// Time to move `bytes` over the channel bus.
    pub fn transfer(&self, bytes: u32) -> Picos {
        // ps = bytes / (B/s) * 1e12
        Picos::from_ps((bytes as u64 * 1_000_000_000_000) / self.bus_bytes_per_sec)
    }

    /// Table I timing with array times divided by `divisor` — used when a
    /// configuration scales the page size down by the same factor, so
    /// per-byte bandwidth (and thus the paper's relative results) is
    /// preserved at reduced simulation footprints.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn table1_scaled(kind: CellKind, divisor: u64) -> Self {
        assert!(divisor > 0, "divisor must be non-zero");
        let t = Self::table1(kind);
        FlashTiming {
            t_read: t.t_read / divisor,
            t_program: t.t_program / divisor,
            t_erase: t.t_erase / divisor,
            bus_bytes_per_sec: t.bus_bytes_per_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latency_ordering() {
        let slc = FlashTiming::table1(CellKind::Slc);
        let mlc = FlashTiming::table1(CellKind::Mlc);
        let tlc = FlashTiming::table1(CellKind::Tlc);
        assert!(slc.t_read < mlc.t_read && mlc.t_read < tlc.t_read);
        assert!(slc.t_program < mlc.t_program && mlc.t_program < tlc.t_program);
        // TLC erase is the Table I oddity: shorter than MLC.
        assert!(tlc.t_erase < mlc.t_erase);
        assert_eq!(mlc.t_read, Picos::from_us(50));
        assert_eq!(mlc.t_program, Picos::from_us(800));
        assert_eq!(mlc.t_erase, Picos::from_us(3_500));
    }

    #[test]
    fn transfer_time_is_linear() {
        let t = FlashTiming::table1(CellKind::Slc);
        let one_page = t.transfer(16 * 1024);
        assert_eq!(t.transfer(32 * 1024), one_page * 2);
        // 16 KB at 800 MB/s = 20.48 us.
        assert_eq!(one_page, Picos::from_ps(20_480_000));
    }
}
