//! The flash device: FTL + die timelines + channel bus + functional store.

use crate::ftl::{Ftl, FtlError, FtlOp};
use crate::geometry::FlashGeometry;
use crate::timing::{CellKind, FlashTiming};
use sim_core::energy::{EnergyBook, Watts};
use sim_core::mem::Access;
use sim_core::time::Picos;
use sim_core::timeline::{Timeline, TimelineBank};
use std::collections::HashMap;

/// Active power of a die during array operations.
const P_ARRAY: Watts = Watts(0.030);
/// Power of the channel bus during transfers.
const P_BUS: Watts = Watts(0.200);
/// Erase pulse power.
const P_ERASE: Watts = Watts(0.045);

/// Operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashStats {
    /// Host page reads.
    pub page_reads: u64,
    /// Host page writes.
    pub page_writes: u64,
    /// GC page relocations executed.
    pub gc_moves: u64,
    /// Block erases executed.
    pub erases: u64,
}

util::json_struct!(FlashStats {
    page_reads,
    page_writes,
    gc_moves,
    erases
});

/// A timing + functional model of one NAND device (SSD back end or the
/// embedded flash of the Integrated-* accelerators).
///
/// # Examples
///
/// ```
/// use flash::{CellKind, FlashDevice, FlashGeometry};
/// use sim_core::Picos;
///
/// let mut dev = FlashDevice::new(FlashGeometry::tiny(), CellKind::Slc);
/// let page = vec![7u8; dev.page_bytes() as usize];
/// let w = dev.write_page(Picos::ZERO, 3, &page);
/// let (r, data) = dev.read_page(w.end, 3);
/// assert_eq!(data.unwrap(), page);
/// assert!(r.end > w.end);
/// ```
#[derive(Debug, Clone)]
pub struct FlashDevice {
    ftl: Ftl,
    timing: FlashTiming,
    kind: CellKind,
    dies: TimelineBank,
    bus: Timeline,
    /// Functional store, keyed by logical page (the FTL remap is
    /// transparent to contents).
    data: HashMap<u64, Vec<u8>>,
    stats: FlashStats,
    energy: EnergyBook,
}

util::json_struct!(FlashDevice {
    ftl,
    timing,
    kind,
    dies,
    bus,
    data,
    stats,
    energy
});

sim_core::snapshot_via_json!(FlashDevice, "flash/device", 1);

impl FlashDevice {
    /// Creates a device of the given geometry and cell kind with Table I
    /// timing.
    pub fn new(geometry: FlashGeometry, kind: CellKind) -> Self {
        Self::with_timing(geometry, kind, FlashTiming::table1(kind))
    }

    /// Creates a device with explicit timing (e.g.
    /// [`FlashTiming::table1_scaled`] for reduced page sizes).
    pub fn with_timing(geometry: FlashGeometry, kind: CellKind, timing: FlashTiming) -> Self {
        FlashDevice {
            dies: TimelineBank::new(geometry.dies),
            ftl: Ftl::new(geometry, 2),
            timing,
            kind,
            bus: Timeline::new(),
            data: HashMap::new(),
            stats: FlashStats::default(),
            energy: EnergyBook::new(),
        }
    }

    /// The cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u32 {
        self.ftl.geometry().page_bytes
    }

    /// Exported logical capacity in bytes (10% over-provisioned).
    pub fn logical_bytes(&self) -> u64 {
        self.ftl.geometry().logical_pages(10) * self.page_bytes() as u64
    }

    /// The timing in effect.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Counters.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// FTL statistics (write amplification etc.).
    pub fn ftl_stats(&self) -> &crate::ftl::FtlStats {
        self.ftl.stats()
    }

    /// Energy ledger snapshot.
    pub fn energy(&self) -> &EnergyBook {
        &self.energy
    }

    /// Reads logical page `lpn`: die array read (tR), then channel
    /// transfer. Returns `None` data for a never-written page (timing
    /// still charged — the device senses an erased page).
    pub fn read_page(&mut self, at: Picos, lpn: u64) -> (Access, Option<Vec<u8>>) {
        self.stats.page_reads += 1;
        let die = self.ftl.translate(lpn).map(|p| p.die).unwrap_or(0);
        let (start, sensed) = self.dies.get_mut(die).reserve_span(at, self.timing.t_read);
        self.energy
            .charge("flash.read", P_ARRAY * self.timing.t_read);
        let xfer = self.timing.transfer(self.page_bytes());
        let (_, end) = self.bus.reserve_span(sensed, xfer);
        self.energy.charge("flash.bus", P_BUS * xfer);
        (Access { start, end }, self.data.get(&lpn).cloned())
    }

    /// Writes logical page `lpn`: channel transfer, program (tPROG), plus
    /// any garbage-collection work the FTL scheduled behind it.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page, or on an FTL request
    /// failure ([`Self::try_write_page`] propagates it instead).
    pub fn write_page(&mut self, at: Picos, lpn: u64, data: &[u8]) -> Access {
        self.try_write_page(at, lpn, data)
            .unwrap_or_else(|e| panic!("flash write of lpn {lpn} failed: {e}"))
    }

    /// [`Self::write_page`] with FTL request failures surfaced as typed
    /// errors instead of panics. Timing already charged (bus transfer,
    /// completed FTL ops) stays charged — a rejected request still
    /// occupied the channel.
    ///
    /// # Errors
    ///
    /// Propagates [`FtlError`] from the mapping layer.
    pub fn try_write_page(&mut self, at: Picos, lpn: u64, data: &[u8]) -> Result<Access, FtlError> {
        assert_eq!(
            data.len(),
            self.page_bytes() as usize,
            "flash writes are page-granular"
        );
        self.stats.page_writes += 1;
        let xfer = self.timing.transfer(self.page_bytes());
        let (start, in_reg) = self.bus.reserve_span(at, xfer);
        self.energy.charge("flash.bus", P_BUS * xfer);

        let ops = self.ftl.write(lpn)?;
        let mut end = in_reg;
        let mut gc_reads = 0u64;
        for op in ops {
            match op {
                FtlOp::Program(p) => {
                    let (_, e) = self
                        .dies
                        .get_mut(p.die)
                        .reserve_span(end, self.timing.t_program);
                    self.energy
                        .charge("flash.program", P_ARRAY * self.timing.t_program);
                    end = e;
                }
                FtlOp::Read(p) => {
                    let (_, e) = self
                        .dies
                        .get_mut(p.die)
                        .reserve_span(end, self.timing.t_read);
                    self.energy
                        .charge("flash.read", P_ARRAY * self.timing.t_read);
                    gc_reads += 1;
                    end = e;
                }
                FtlOp::Erase { die, .. } => {
                    let (_, e) = self
                        .dies
                        .get_mut(die)
                        .reserve_span(end, self.timing.t_erase);
                    self.energy
                        .charge("flash.erase", P_ERASE * self.timing.t_erase);
                    self.stats.erases += 1;
                    end = e;
                }
            }
        }
        self.stats.gc_moves += gc_reads;
        self.data.insert(lpn, data.to_vec());
        Ok(Access { start, end })
    }

    /// Preloads data functionally without charging simulated time (models
    /// the pre-evaluation initialization: "we initialize the data and
    /// place it in the persistent storages").
    ///
    /// # Panics
    ///
    /// Panics on an FTL request failure (preloads address valid pages by
    /// construction).
    pub fn preload(&mut self, lpn: u64, data: &[u8]) {
        assert_eq!(data.len(), self.page_bytes() as usize);
        self.ftl
            .write(lpn)
            .unwrap_or_else(|e| panic!("flash preload of lpn {lpn} failed: {e}"));
        self.data.insert(lpn, data.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(kind: CellKind) -> FlashDevice {
        FlashDevice::new(FlashGeometry::tiny(), kind)
    }

    #[test]
    fn read_of_unwritten_page_returns_none() {
        let mut d = dev(CellKind::Slc);
        let (a, data) = d.read_page(Picos::ZERO, 5);
        assert!(data.is_none());
        assert!(a.end > a.start);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut d = dev(CellKind::Mlc);
        let page = vec![0xAB; d.page_bytes() as usize];
        let w = d.write_page(Picos::ZERO, 9, &page);
        let (_, back) = d.read_page(w.end, 9);
        assert_eq!(back.unwrap(), page);
    }

    #[test]
    fn read_latency_matches_table1_plus_transfer() {
        let mut d = dev(CellKind::Slc);
        let (a, _) = d.read_page(Picos::ZERO, 0);
        // tR 25 us + 16 KB @ 800 MB/s ≈ 20.5 us.
        let lat = a.end - a.start;
        assert!(
            lat > Picos::from_us(44) && lat < Picos::from_us(47),
            "{lat}"
        );
    }

    #[test]
    fn slc_faster_than_tlc() {
        let mut s = dev(CellKind::Slc);
        let mut t = dev(CellKind::Tlc);
        let page = vec![1; s.page_bytes() as usize];
        let ws = s.write_page(Picos::ZERO, 0, &page);
        let wt = t.write_page(Picos::ZERO, 0, &page);
        assert!(ws.end < wt.end);
    }

    #[test]
    fn writes_to_different_dies_overlap() {
        let mut d = dev(CellKind::Slc);
        let page = vec![1; d.page_bytes() as usize];
        // Round-robin FTL: consecutive lpns land on different dies.
        let w0 = d.write_page(Picos::ZERO, 0, &page);
        let w1 = d.write_page(Picos::ZERO, 1, &page);
        // Both programs overlap; the second is delayed only by the bus.
        assert!(w1.end < w0.end + Picos::from_us(50), "w0={w0:?} w1={w1:?}");
    }

    #[test]
    fn sustained_rewrites_trigger_gc_with_time_cost() {
        let mut d = dev(CellKind::Slc);
        let page = vec![2; d.page_bytes() as usize];
        let mut t = Picos::ZERO;
        for _ in 0..600 {
            let a = d.write_page(t, 1, &page);
            t = a.end;
        }
        assert!(d.stats().erases > 0);
        assert!(d.ftl_stats().write_amplification() >= 1.0);
        assert!(d.energy().energy_of("flash.erase").as_pj() > 0.0);
    }

    #[test]
    fn preload_is_functional_only() {
        let mut d = dev(CellKind::Mlc);
        let page = vec![3; d.page_bytes() as usize];
        d.preload(4, &page);
        let (_, back) = d.read_page(Picos::ZERO, 4);
        assert_eq!(back.unwrap(), page);
    }

    #[test]
    #[should_panic(expected = "page-granular")]
    fn partial_page_write_rejected() {
        let mut d = dev(CellKind::Slc);
        d.write_page(Picos::ZERO, 0, &[1, 2, 3]);
    }
}
