//! Flash array geometry.

/// Static layout of a flash device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Independent dies (parallel units).
    pub dies: usize,
    /// Erase blocks per die.
    pub blocks_per_die: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Page size in bytes (the paper's flash performs "16 KB parallel
    /// I/O").
    pub page_bytes: u32,
}

util::json_struct!(FlashGeometry {
    dies,
    blocks_per_die,
    pages_per_block,
    page_bytes
});

impl Default for FlashGeometry {
    fn default() -> Self {
        Self::ssd()
    }
}

impl FlashGeometry {
    /// An SSD-class geometry: 8 dies × 512 blocks × 256 pages × 16 KB
    /// = 16 GiB raw.
    pub const fn ssd() -> Self {
        FlashGeometry {
            dies: 8,
            blocks_per_die: 512,
            pages_per_block: 256,
            page_bytes: 16 * 1024,
        }
    }

    /// The in-accelerator geometry used by the system compositions:
    /// 8 dies × 64 blocks × 64 pages at the simulated page size.
    pub const fn accelerator(page_bytes: u32) -> Self {
        FlashGeometry {
            dies: 8,
            blocks_per_die: 64,
            pages_per_block: 64,
            page_bytes,
        }
    }

    /// A small geometry for fast tests (8 MiB raw).
    pub const fn tiny() -> Self {
        FlashGeometry {
            dies: 2,
            blocks_per_die: 16,
            pages_per_block: 16,
            page_bytes: 16 * 1024,
        }
    }

    /// Pages per die.
    pub fn pages_per_die(&self) -> u64 {
        self.blocks_per_die as u64 * self.pages_per_block as u64
    }

    /// Total physical pages.
    pub fn total_pages(&self) -> u64 {
        self.pages_per_die() * self.dies as u64
    }

    /// Raw capacity in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Logical capacity exposed after over-provisioning `op_percent`% of
    /// blocks for garbage collection.
    pub fn logical_pages(&self, op_percent: u32) -> u64 {
        self.total_pages() * (100 - op_percent as u64) / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_capacity() {
        let g = FlashGeometry::ssd();
        assert_eq!(g.total_pages(), 8 * 512 * 256);
        assert_eq!(g.raw_bytes(), 16u64 << 30);
    }

    #[test]
    fn overprovisioning_reduces_logical_space() {
        let g = FlashGeometry::ssd();
        assert!(g.logical_pages(10) < g.total_pages());
        assert_eq!(g.logical_pages(0), g.total_pages());
    }

    #[test]
    fn tiny_is_small() {
        assert_eq!(FlashGeometry::tiny().raw_bytes(), 8 << 20);
    }
}
