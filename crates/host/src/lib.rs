#![warn(missing_docs)]

//! # host
//!
//! The host-system model: everything the DRAM-less design removes.
//!
//! * [`stack`] — the software storage-stack cost model: syscalls,
//!   user/kernel mode switches, filesystem work and redundant memory
//!   copies, which §III-A identifies as the dominant waste in
//!   conventional accelerated systems;
//! * [`pcie`] — PCIe link timing for host↔SSD and host↔accelerator
//!   transfers;
//! * [`staging`] — the two data-staging paths of Figure 5a: the
//!   host-mediated path (SSD → kernel → user → pinned buffer →
//!   accelerator DRAM) used by *Hetero*, and the peer-to-peer DMA path
//!   (SSD → accelerator, no host copies) used by *Heterodirect*.

pub mod pcie;
pub mod stack;
pub mod staging;

pub use pcie::{PcieLink, PcieParams};
pub use stack::{HostStack, HostStackParams};
pub use staging::{Stager, StagingPath, StagingReport};
