//! Data staging between the SSD and the accelerator (Figure 5a).
//!
//! Two paths:
//!
//! * [`StagingPath::HostMediated`] (*Hetero*): for every I/O request the
//!   host pays the storage-stack software path, reads from the SSD into
//!   the page cache, copies to the user buffer, deserializes, copies into
//!   a pinned DMA buffer, and DMAs over PCIe to the accelerator;
//! * [`StagingPath::P2pDma`] (*Heterodirect*, Morpheus/NVMMU-style
//!   \[13\], \[14\]): the host only submits descriptors; data moves
//!   SSD → accelerator directly across the PCIe switch.

use crate::pcie::PcieLink;
use crate::stack::HostStack;
use sim_core::energy::EnergyBook;
use sim_core::mem::MemoryBackend;
use sim_core::probe::{AttrScope, AttrSpan, Cause, Probe};
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::time::Picos;
use util::telemetry::{MetricSet, Track};

/// Which staging datapath a heterogeneous system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagingPath {
    /// SSD → host DRAM (2 copies + deserialize) → PCIe → accelerator.
    HostMediated,
    /// SSD → PCIe switch → accelerator, zero host copies.
    P2pDma,
}

util::json_unit_enum!(StagingPath {
    HostMediated,
    P2pDma
});

impl StagingPath {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StagingPath::HostMediated => "host-mediated",
            StagingPath::P2pDma => "p2p-dma",
        }
    }
}

/// The outcome of moving one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagingReport {
    /// When the transfer finished.
    pub done: Picos,
    /// Bytes moved.
    pub bytes: u64,
    /// I/O requests issued to the SSD.
    pub requests: u64,
}

util::json_struct!(StagingReport {
    done,
    bytes,
    requests
});

/// The staging engine: owns the host stack and both PCIe links.
#[derive(Debug)]
pub struct Stager {
    /// The host software stack.
    pub stack: HostStack,
    /// Host/SSD link (also carries P2P traffic to the switch).
    pub link_ssd: PcieLink,
    /// Host/accelerator link.
    pub link_accel: PcieLink,
    path: StagingPath,
    probe: Probe,
}

/// The staging datapath's single trace lane.
const STAGING_TRACK: Track = Track::new("staging", 0);

/// Image tag for [`Stager`] snapshots.
const STAGING_KIND: &str = "host/staging";
/// Schema version of [`STAGING_KIND`] images.
const STAGING_VERSION: u32 = 1;

impl sim_core::Snapshot for Stager {
    fn snapshot(&self) -> StateImage {
        use util::json::ToJson;
        let data = util::json::Json::Obj(vec![
            ("stack".to_string(), self.stack.to_json()),
            ("link_ssd".to_string(), self.link_ssd.to_json()),
            ("link_accel".to_string(), self.link_accel.to_json()),
            ("path".to_string(), self.path.to_json()),
        ]);
        StateImage::new(STAGING_KIND, STAGING_VERSION, data)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        use util::json::field;
        let data = image.expect(STAGING_KIND, STAGING_VERSION)?;
        let m = |e| SnapshotError::malformed(STAGING_KIND, e);
        self.stack = field(data, "stack").map_err(m)?;
        self.link_ssd = field(data, "link_ssd").map_err(m)?;
        self.link_accel = field(data, "link_accel").map_err(m)?;
        self.path = field(data, "path").map_err(m)?;
        // `probe` is a runtime attachment, deliberately left untouched.
        Ok(())
    }
}

impl Stager {
    /// Creates a stager over `path` with default host parameters.
    pub fn new(path: StagingPath) -> Self {
        Self::with_stack(path, Default::default())
    }

    /// Creates a stager with explicit host-stack parameters (e.g. a
    /// scaled I/O request size).
    pub fn with_stack(path: StagingPath, stack: crate::stack::HostStackParams) -> Self {
        Stager {
            stack: HostStack::new(stack),
            link_ssd: PcieLink::new(Default::default()),
            link_accel: PcieLink::new(Default::default()),
            path,
            probe: Probe::disabled(),
        }
    }

    /// The configured path.
    pub fn path(&self) -> StagingPath {
        self.path
    }

    /// Installs a telemetry probe; each chunked I/O request becomes a
    /// span on the `staging/0` lane.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// Contributes host-side metrics (CPU busy time) into `out`.
    pub fn collect_metrics(&self, out: &mut MetricSet) {
        out.add("host.cpu_busy_ns", self.stack.cpu_busy().as_ps() / 1_000);
    }

    /// Moves `bytes` from `ssd` (starting at `addr`) into the accelerator
    /// memory, beginning at `at`.
    pub fn stage_in(
        &mut self,
        at: Picos,
        ssd: &mut dyn MemoryBackend,
        addr: u64,
        bytes: u64,
    ) -> StagingReport {
        self.stage(at, ssd, addr, bytes, true)
    }

    /// Moves `bytes` of results from the accelerator back to `ssd`.
    pub fn stage_out(
        &mut self,
        at: Picos,
        ssd: &mut dyn MemoryBackend,
        addr: u64,
        bytes: u64,
    ) -> StagingReport {
        self.stage(at, ssd, addr, bytes, false)
    }

    fn stage(
        &mut self,
        at: Picos,
        ssd: &mut dyn MemoryBackend,
        addr: u64,
        bytes: u64,
        inbound: bool,
    ) -> StagingReport {
        assert!(bytes > 0, "empty staging transfer");
        let attr_on = self.probe.attr_on();
        let scope = if inbound {
            AttrScope::StageIn
        } else {
            AttrScope::StageOut
        };
        let chunk = self.stack.params().io_request_bytes;
        let mut t = at;
        let mut requests = 0;
        let mut off = 0u64;
        while off < bytes {
            let n = chunk.min(bytes - off);
            let chunk_start = t;
            // Each chunked I/O request is one attributed unit; tagging
            // before the SSD call makes the device's own record share
            // this chunk's (scope, index).
            if attr_on {
                self.probe.attr_tag_next(scope);
            }
            let mut span = if attr_on {
                Some(AttrSpan::new(chunk_start))
            } else {
                None
            };
            match self.path {
                StagingPath::HostMediated => {
                    // Submission path through the kernel.
                    let (_, sw_done) = self.stack.request_overhead(t);
                    // Media access.
                    let io = if inbound {
                        ssd.read(sw_done, addr + off, n as u32)
                    } else {
                        ssd.write(sw_done, addr + off, n as u32)
                    };
                    // Page cache → user → pinned buffer (+deserialize when
                    // loading input objects).
                    let (_, copied) = self.stack.copy(io.end, n);
                    let t2 = if inbound {
                        self.stack.deserialize(copied, n).1
                    } else {
                        copied
                    };
                    // DMA across the accelerator link.
                    let dma = self.link_accel.dma(t2, n);
                    if let Some(sp) = span.as_mut() {
                        sp.advance(Cause::SoftwareStack, sw_done);
                        sp.advance(Cause::Media, io.end);
                        sp.advance(Cause::SoftwareStack, t2);
                        sp.advance(Cause::Dma, dma.end);
                    }
                    t = dma.end;
                }
                StagingPath::P2pDma => {
                    // Host only rings a doorbell; data crosses the switch
                    // once.
                    let bell = self.link_ssd.message(t);
                    let io = if inbound {
                        ssd.read(bell.end, addr + off, n as u32)
                    } else {
                        ssd.write(bell.end, addr + off, n as u32)
                    };
                    let dma = self.link_accel.dma(io.end, n);
                    if let Some(sp) = span.as_mut() {
                        sp.advance(Cause::SoftwareStack, bell.end);
                        sp.advance(Cause::Media, io.end);
                        sp.advance(Cause::Dma, dma.end);
                    }
                    t = dma.end;
                }
            }
            if let Some(sp) = &span {
                self.probe.attr_record("staging.chunk", sp);
            }
            self.probe.span_args(
                STAGING_TRACK,
                if inbound { "stage_in" } else { "stage_out" },
                chunk_start,
                t,
                &[("bytes", n)],
            );
            self.probe.latency("staging.request", t - chunk_start);
            self.probe.count("staging.requests", 1);
            self.probe.count("staging.bytes", n);
            requests += 1;
            off += n;
        }
        StagingReport {
            done: t,
            bytes,
            requests,
        }
    }

    /// Combined energy of stack + links.
    pub fn energy(&self) -> EnergyBook {
        let mut e = self.stack.energy().clone();
        e.merge(self.link_ssd.energy());
        e.merge(self.link_accel.energy());
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash::CellKind;
    use storage::ssd::{FlashSsd, SsdParams};

    fn ssd() -> FlashSsd {
        FlashSsd::new(SsdParams::tiny(CellKind::Mlc))
    }

    #[test]
    fn p2p_is_faster_than_host_mediated() {
        let bytes = 1u64 << 20;
        let mut host = Stager::new(StagingPath::HostMediated);
        let mut p2p = Stager::new(StagingPath::P2pDma);
        let mut ssd_a = ssd();
        let mut ssd_b = ssd();
        let ra = host.stage_in(Picos::ZERO, &mut ssd_a, 0, bytes);
        let rb = p2p.stage_in(Picos::ZERO, &mut ssd_b, 0, bytes);
        assert!(rb.done < ra.done, "p2p {:?} vs host {:?}", rb.done, ra.done);
        assert_eq!(ra.requests, rb.requests);
    }

    #[test]
    fn host_path_burns_cpu_p2p_does_not() {
        let bytes = 1u64 << 20;
        let mut host = Stager::new(StagingPath::HostMediated);
        let mut p2p = Stager::new(StagingPath::P2pDma);
        host.stage_in(Picos::ZERO, &mut ssd(), 0, bytes);
        p2p.stage_in(Picos::ZERO, &mut ssd(), 0, bytes);
        assert!(host.stack.cpu_busy() > Picos::from_us(100));
        assert_eq!(p2p.stack.cpu_busy(), Picos::ZERO);
    }

    #[test]
    fn staging_chunks_by_request_size() {
        let mut s = Stager::new(StagingPath::P2pDma);
        let r = s.stage_in(Picos::ZERO, &mut ssd(), 0, 300 * 1024);
        assert_eq!(r.requests, 3); // 128 KiB chunks
    }

    #[test]
    fn stage_out_writes_the_ssd() {
        let mut s = Stager::new(StagingPath::HostMediated);
        let mut dev = ssd();
        let r = s.stage_out(Picos::ZERO, &mut dev, 0, 64 * 1024);
        assert!(r.done > Picos::ZERO);
        assert!(dev.requests() > 0);
    }

    #[test]
    fn energy_includes_stack_and_links() {
        let mut s = Stager::new(StagingPath::HostMediated);
        s.stage_in(Picos::ZERO, &mut ssd(), 0, 1 << 20);
        let e = s.energy();
        assert!(e.energy_of("host.copy").as_pj() > 0.0);
        assert!(e.energy_of("pcie.xfer").as_pj() > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty staging transfer")]
    fn zero_bytes_rejected() {
        let mut s = Stager::new(StagingPath::P2pDma);
        s.stage_in(Picos::ZERO, &mut ssd(), 0, 0);
    }
}
