//! The host software storage-stack cost model.
//!
//! §III-A: "a CPU is required to frequently intervene to move the data
//! among multiple user applications and OS modules. As the hardware
//! accelerator and SSD devices employ different software stacks, such
//! interventions introduce many user/kernel mode switches and redundant
//! data copies, which result in the waste of many CPU cycles."
//!
//! [`HostStack`] charges those cycles: per-request syscall/filesystem/
//! driver work, mode switches, and bandwidth-limited memory copies — plus
//! the energy of a server-class CPU doing it.

use sim_core::energy::{EnergyBook, Watts};
use sim_core::time::Picos;
use sim_core::timeline::TimelineBank;

/// Stack cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostStackParams {
    /// Entering + leaving the kernel once.
    pub mode_switch: Picos,
    /// Syscall dispatch + VFS + filesystem + block layer per request.
    pub fs_request: Picos,
    /// NVMe driver submission/completion work per request.
    pub driver_request: Picos,
    /// Interrupt handling per completion.
    pub interrupt: Picos,
    /// Memcpy bandwidth (one copy) in bytes/second.
    pub copy_bytes_per_sec: u64,
    /// How many times each byte is copied on the host-mediated path
    /// (page cache → user buffer → pinned DMA buffer = 2).
    pub copies: u32,
    /// Request size the runtime issues to the SSD.
    pub io_request_bytes: u64,
    /// Active CPU power while executing stack code or copying.
    pub cpu_power: Watts,
    /// Host cores available to run storage-stack work concurrently.
    pub cores: usize,
}

util::json_struct!(HostStackParams {
    mode_switch,
    fs_request,
    driver_request,
    interrupt,
    copy_bytes_per_sec,
    copies,
    io_request_bytes,
    cpu_power,
    cores,
});

impl Default for HostStackParams {
    fn default() -> Self {
        HostStackParams {
            mode_switch: Picos::from_ns(800),
            fs_request: Picos::from_ns(1_500),
            driver_request: Picos::from_ns(1_000),
            interrupt: Picos::from_ns(700),
            copy_bytes_per_sec: 8_000_000_000,
            copies: 2,
            io_request_bytes: 128 * 1024,
            cpu_power: Watts::from_w(18.0),
            cores: 4,
        }
    }
}

impl HostStackParams {
    /// Default stack costs with an explicit I/O request size — how the
    /// system composer sets demand-paging vs. bulk-staging granularity.
    pub fn with_request_bytes(io_request_bytes: u64) -> Self {
        HostStackParams {
            io_request_bytes,
            ..Default::default()
        }
    }
}

/// The host CPU executing storage-stack work, with occupancy + energy.
#[derive(Debug, Clone)]
pub struct HostStack {
    params: HostStackParams,
    cpu: TimelineBank,
    energy: EnergyBook,
    requests: u64,
    bytes_copied: u64,
}

util::json_struct!(HostStack {
    params,
    cpu,
    energy,
    requests,
    bytes_copied
});

sim_core::snapshot_via_json!(HostStack, "host/stack", 1);

impl HostStack {
    /// Creates the stack model.
    pub fn new(params: HostStackParams) -> Self {
        HostStack {
            cpu: TimelineBank::new(params.cores.max(1)),
            params,
            energy: EnergyBook::new(),
            requests: 0,
            bytes_copied: 0,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &HostStackParams {
        &self.params
    }

    /// `(requests, bytes_copied)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.requests, self.bytes_copied)
    }

    /// Energy ledger.
    pub fn energy(&self) -> &EnergyBook {
        &self.energy
    }

    /// Total CPU busy time consumed by the stack (summed over cores).
    pub fn cpu_busy(&self) -> Picos {
        self.cpu.busy_total()
    }

    fn reserve(&mut self, at: Picos, dur: Picos) -> (Picos, Picos) {
        let core = self.cpu.first_free(at);
        self.cpu.get_mut(core).reserve_span(at, dur)
    }

    /// Charges the per-request software path (syscall, filesystem, driver,
    /// two mode switches, completion interrupt). Returns `(start, end)`
    /// of the CPU work.
    pub fn request_overhead(&mut self, at: Picos) -> (Picos, Picos) {
        let dur = self.params.mode_switch * 2
            + self.params.fs_request
            + self.params.driver_request
            + self.params.interrupt;
        let (s, e) = self.reserve(at, dur);
        self.energy
            .charge_power("host.stack", self.params.cpu_power, dur);
        self.requests += 1;
        (s, e)
    }

    /// Charges `copies` bandwidth-limited memcpy passes over `bytes`.
    pub fn copy(&mut self, at: Picos, bytes: u64) -> (Picos, Picos) {
        let one = Picos::from_ps(bytes * 1_000_000_000_000 / self.params.copy_bytes_per_sec);
        let dur = one * self.params.copies as u64;
        let (s, e) = self.reserve(at, dur);
        self.energy
            .charge_power("host.copy", self.params.cpu_power, dur);
        self.bytes_copied += bytes * self.params.copies as u64;
        (s, e)
    }

    /// Deserialization work turning file bytes into objects (§III-A
    /// "deserializes them as a representation of objects"): one more pass
    /// over the data at copy bandwidth.
    pub fn deserialize(&mut self, at: Picos, bytes: u64) -> (Picos, Picos) {
        let dur = Picos::from_ps(bytes * 1_000_000_000_000 / self.params.copy_bytes_per_sec);
        let (s, e) = self.reserve(at, dur);
        self.energy
            .charge_power("host.deserialize", self.params.cpu_power, dur);
        (s, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_overhead_is_microseconds_of_cpu() {
        let mut h = HostStack::new(HostStackParams::default());
        let (s, e) = h.request_overhead(Picos::ZERO);
        // 2×0.8 + 1.5 + 1.0 + 0.7 = 4.8 us.
        assert_eq!(e - s, Picos::from_ns(4_800));
        assert_eq!(h.counters().0, 1);
    }

    #[test]
    fn copies_pay_double_bandwidth() {
        let mut h = HostStack::new(HostStackParams::default());
        let (s, e) = h.copy(Picos::ZERO, 8_000_000); // 1 ms per pass
        assert_eq!(e - s, Picos::from_ms(2));
        assert_eq!(h.counters().1, 16_000_000);
    }

    #[test]
    fn stack_work_serializes_once_cores_are_busy() {
        let mut h = HostStack::new(HostStackParams {
            cores: 2,
            ..Default::default()
        });
        let (_, e1) = h.request_overhead(Picos::ZERO);
        let (s2, _) = h.request_overhead(Picos::ZERO); // second core
        assert_eq!(s2, Picos::ZERO);
        let (s3, _) = h.request_overhead(Picos::ZERO); // queues
        assert_eq!(s3, e1);
    }

    #[test]
    fn energy_attributed_by_activity() {
        let mut h = HostStack::new(HostStackParams::default());
        h.request_overhead(Picos::ZERO);
        h.copy(Picos::from_ms(1), 1 << 20);
        h.deserialize(Picos::from_ms(10), 1 << 20);
        let e = h.energy();
        assert!(e.energy_of("host.stack").as_pj() > 0.0);
        assert!(e.energy_of("host.copy").as_pj() > 0.0);
        assert!(e.energy_of("host.deserialize").as_pj() > 0.0);
        // Copying a MiB twice dwarfs one request's dispatch work.
        assert!(e.energy_of("host.copy") > e.energy_of("host.stack"));
    }
}
