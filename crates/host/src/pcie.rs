//! PCIe link timing.
//!
//! The paper's testbed connects the accelerator and the SSD "through two
//! different PCIe slots" \[17\]; every byte between them crosses at least
//! one link (two, when the host mediates).

use sim_core::energy::{EnergyBook, Joules};
use sim_core::time::Picos;
use sim_core::timeline::Timeline;

/// Energy per byte crossing the link (SerDes + switch).
const E_PER_BYTE: Joules = Joules::from_pj(35);

/// Link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieParams {
    /// Effective payload bandwidth in bytes/second.
    pub bytes_per_sec: u64,
    /// Per-transaction latency (TLP round trip + root-complex work).
    pub latency: Picos,
    /// DMA descriptor setup per transfer.
    pub dma_setup: Picos,
}

util::json_struct!(PcieParams {
    bytes_per_sec,
    latency,
    dma_setup
});

impl Default for PcieParams {
    fn default() -> Self {
        PcieParams {
            bytes_per_sec: 3_200_000_000, // Gen3 x4 effective
            latency: Picos::from_ns(900),
            dma_setup: Picos::from_ns(700),
        }
    }
}

/// One PCIe link with occupancy tracking.
///
/// # Examples
///
/// ```
/// use host::PcieLink;
/// use sim_core::Picos;
///
/// let mut link = PcieLink::new(Default::default());
/// let a = link.dma(Picos::ZERO, 1 << 20); // 1 MiB DMA
/// assert!(a.end > Picos::from_us(300));
/// ```
#[derive(Debug, Clone)]
pub struct PcieLink {
    params: PcieParams,
    lanes: Timeline,
    energy: EnergyBook,
    transfers: u64,
}

util::json_struct!(PcieLink {
    params,
    lanes,
    energy,
    transfers
});

sim_core::snapshot_via_json!(PcieLink, "host/pcie", 1);

impl PcieLink {
    /// Creates a link.
    pub fn new(params: PcieParams) -> Self {
        PcieLink {
            params,
            lanes: Timeline::new(),
            energy: EnergyBook::new(),
            transfers: 0,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &PcieParams {
        &self.params
    }

    /// Completed transfers.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Energy ledger.
    pub fn energy(&self) -> &EnergyBook {
        &self.energy
    }

    /// Performs a DMA transfer of `bytes`, returning its span.
    pub fn dma(&mut self, at: Picos, bytes: u64) -> sim_core::Access {
        let xfer = Picos::from_ps(bytes * 1_000_000_000_000 / self.params.bytes_per_sec);
        let dur = self.params.dma_setup + self.params.latency + xfer;
        let (start, end) = self.lanes.reserve_span(at, dur);
        self.energy.charge("pcie.xfer", E_PER_BYTE.scaled(bytes));
        self.transfers += 1;
        sim_core::Access { start, end }
    }

    /// A short message (doorbell, interrupt, completion): latency only.
    pub fn message(&mut self, at: Picos) -> sim_core::Access {
        let (start, end) = self.lanes.reserve_span(at, self.params.latency);
        self.energy.charge("pcie.msg", Joules::from_pj(500));
        sim_core::Access { start, end }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_time_is_setup_plus_bandwidth() {
        let mut l = PcieLink::new(PcieParams::default());
        let a = l.dma(Picos::ZERO, 3_200_000); // 1 ms worth of payload
        assert!(a.end >= Picos::from_us(1_000));
        assert!(a.end < Picos::from_us(1_010));
    }

    #[test]
    fn transfers_serialize_on_the_link() {
        let mut l = PcieLink::new(PcieParams::default());
        let a = l.dma(Picos::ZERO, 1 << 20);
        let b = l.dma(Picos::ZERO, 1 << 20);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn messages_are_cheap() {
        let mut l = PcieLink::new(PcieParams::default());
        let m = l.message(Picos::ZERO);
        assert_eq!(m.end, Picos::from_ns(900));
    }

    #[test]
    fn energy_scales_with_bytes() {
        let mut l = PcieLink::new(PcieParams::default());
        l.dma(Picos::ZERO, 1000);
        assert_eq!(l.energy().energy_of("pcie.xfer"), E_PER_BYTE.scaled(1000));
    }
}
