//! The 9x-nm parallel PRAM behind a serial-peripheral NOR-flash interface
//! ("NOR-intf" in Table I, Numonyx Omneo P8P-class \[43\]).
//!
//! Byte-addressable like DRAM-less's 3x-nm sample, but a generation older
//! and behind a legacy interface: "all PRAM write accesses are serialized
//! by 16-bit low-level memory operations, and its bandwidth for reads and
//! writes is 2× and 101× worse than flash's page-level bandwidth"
//! (§VI-A).
//!
//! Note on units: Table I prints the NOR device's NVM read latency as
//! "290" in a µs-labeled row, yet §VI-D measures NOR-intf reads only
//! "3× slower than our new PRAM" (~100 ns) and shows it sustaining ~2 IPC
//! on read-heavy kernels — impossible with 290 µs reads. The P8P
//! datasheet's initial-access time is ~115 ns. We therefore interpret the
//! figure as **290 ns per word access**, and keep writes at the quoted
//! 120 µs per word-buffer program; both interpretations are recorded in
//! EXPERIMENTS.md.

use sim_core::energy::{EnergyBook, Joules};
use sim_core::mem::{Access, MemoryBackend};
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::time::Picos;
use sim_core::timeline::TimelineBank;

/// Energy per 16-bit bus beat.
const E_BEAT: Joules = Joules::from_pj(15);
/// Energy per word program.
const E_PROGRAM: Joules = Joules::from_nj(30);

/// Construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NorPramParams {
    /// Initial array access per read request (interpreted from Table I,
    /// see module docs). Subsequent sequential words stream in burst
    /// mode, paying bus beats only — the P8P's synchronous burst read.
    pub t_access: Picos,
    /// Write-buffer program time (Table I: 120 µs).
    pub t_program: Picos,
    /// 16-bit bus beat time. Tuned so burst-read bandwidth lands at
    /// one half of flash's page-level read bandwidth, matching §VI-A's
    /// "2× worse" measurement.
    pub t_beat: Picos,
    /// Write-buffer size in bytes (the P8P programs through a small
    /// word buffer).
    pub buffer_bytes: u32,
    /// Parallel chips on the accelerator board ("9x-nm *parallel* PRAM"
    /// \[43\]): requests stripe across chips at buffer granularity, but
    /// each chip's interface is still 16-bit serialized.
    pub chips: usize,
}

util::json_struct!(NorPramParams {
    t_access,
    t_program,
    t_beat,
    buffer_bytes,
    chips
});

impl Default for NorPramParams {
    fn default() -> Self {
        NorPramParams {
            t_access: Picos::from_ns(290),
            t_program: Picos::from_us(120),
            t_beat: Picos::from_ns(6),
            buffer_bytes: 64,
            chips: 16,
        }
    }
}

/// The NOR-interface PRAM: a bank of serial chips with no internal
/// parallelism per chip.
#[derive(Debug, Clone)]
pub struct NorPram {
    params: NorPramParams,
    /// One serialized interface per chip.
    chips: TimelineBank,
    energy: EnergyBook,
    reads: u64,
    writes: u64,
}

util::json_struct!(NorPram {
    params,
    chips,
    energy,
    reads,
    writes
});

sim_core::snapshot_via_json!(NorPram, "storage/nor-intf", 1);

impl NorPram {
    /// Builds the device bank.
    pub fn new(params: NorPramParams) -> Self {
        NorPram {
            chips: TimelineBank::new(params.chips),
            params,
            energy: EnergyBook::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &NorPramParams {
        &self.params
    }

    /// `(reads, writes)` request counts.
    pub fn counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

impl MemoryBackend for NorPram {
    fn read(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        self.reads += 1;
        // Requests stripe across chips at buffer granularity; each chip
        // pays one initial array access plus a synchronous burst over its
        // 16-bit bus for its share.
        let bb = self.params.buffer_bytes as u64;
        let first = addr / bb;
        let last = (addr + len as u64 - 1) / bb;
        let mut start = Picos::MAX;
        let mut end = Picos::ZERO;
        for unit in first..=last {
            let chip = (unit % self.params.chips as u64) as usize;
            let lo = (unit * bb).max(addr);
            let hi = ((unit + 1) * bb).min(addr + len as u64);
            let beats = (hi - lo).div_ceil(2);
            let dur = self.params.t_access + self.params.t_beat * beats;
            let (s, e) = self.chips.get_mut(chip).reserve_span(at, dur);
            self.energy.charge("nor.read", E_BEAT.scaled(beats));
            start = start.min(s);
            end = end.max(e);
        }
        Access { start, end }
    }

    fn write(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        self.writes += 1;
        let bb = self.params.buffer_bytes as u64;
        let first = addr / bb;
        let last = (addr + len as u64 - 1) / bb;
        let beats_per_buffer = bb.div_ceil(2);
        // Fill the write buffer over the chip's 16-bit bus, then program;
        // buffers on the same chip serialize — the 101×-worse-than-flash
        // write path of §VI-A, spread over the chip bank.
        let per_buffer = self.params.t_beat * beats_per_buffer + self.params.t_program;
        let mut start = Picos::MAX;
        let mut end = Picos::ZERO;
        for unit in first..=last {
            let chip = (unit % self.params.chips as u64) as usize;
            let (s, e) = self.chips.get_mut(chip).reserve_span(at, per_buffer);
            self.energy.charge("nor.program", E_PROGRAM.scaled(1));
            start = start.min(s);
            end = end.max(e);
        }
        Access { start, end }
    }

    fn energy(&self) -> EnergyBook {
        self.energy.clone()
    }

    fn label(&self) -> &'static str {
        "nor-intf"
    }

    fn snapshot_state(&self) -> Result<StateImage, SnapshotError> {
        Ok(sim_core::Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        sim_core::Snapshot::restore(self, image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_read_is_sub_microsecond() {
        let mut n = NorPram::new(NorPramParams::default());
        let a = n.read(Picos::ZERO, 0, 32);
        // 290 ns access + 16 beats × 6 ns = 386 ns.
        assert_eq!(a.end, Picos::from_ns(386));
    }

    #[test]
    fn single_chip_burst_read_is_half_of_slc_page_bandwidth() {
        // §VI-A: NOR read bandwidth ≈ 2× worse than flash page reads
        // (SLC: 16 KB per ~45 µs ≈ 360 MB/s) — a per-interface figure,
        // so measure with one chip.
        let mut n = NorPram::new(NorPramParams {
            chips: 1,
            ..Default::default()
        });
        let a = n.read(Picos::ZERO, 0, 16 * 1024);
        let mbps = 16.0 * 1024.0 / a.end.as_secs_f64() / 1e6;
        // Per-buffer re-access overhead keeps a single chip somewhat
        // below the pure burst rate; the paper's "2x worse than flash"
        // band is ~150-360 MB/s.
        assert!((100.0..400.0).contains(&mbps), "burst read {mbps:.0} MB/s");
    }

    #[test]
    fn reads_on_the_same_chip_serialize() {
        let mut n = NorPram::new(NorPramParams::default());
        // Unit stride 64 B × 16 chips = same chip every 1024 B.
        let a = n.read(Picos::ZERO, 0, 32);
        let b = n.read(Picos::ZERO, 1024, 32);
        assert_eq!(b.start, a.end);
        // A different chip proceeds in parallel.
        let c = n.read(Picos::ZERO, 64, 32);
        assert_eq!(c.start, Picos::ZERO);
    }

    #[test]
    fn buffer_write_costs_120us() {
        let mut n = NorPram::new(NorPramParams::default());
        let a = n.write(Picos::ZERO, 0, 64);
        assert!(a.end > Picos::from_us(120));
        assert!(a.end < Picos::from_us(121));
    }

    #[test]
    fn write_bandwidth_is_dreadful() {
        // §VI-A: ~101× worse than flash page programs (MLC 16 KB/800 µs
        // = 20 MB/s → ≈ 0.2–0.6 MB/s here). 4 KB = 64 buffers × ~120 µs.
        let mut n = NorPram::new(NorPramParams::default());
        let a = n.write(Picos::ZERO, 0, 4096);
        // 64 buffers over 16 chips = 4 serial programs of ~120 us.
        assert!(a.end > Picos::from_us(470));
        let mbps = 4096.0 / a.end.as_secs_f64() / 1e6;
        assert!(mbps < 10.0, "aggregate write bw {mbps:.2} MB/s");
    }

    #[test]
    fn read_write_ratio_matches_paper_scale() {
        // §VI-D: NOR legacy read ≈ 3× slower than the 3x-nm PRAM read
        // (~100–150 ns), writes ~10× slower than 10–18 µs programs.
        let p = NorPramParams::default();
        assert!(p.t_access >= Picos::from_ns(250));
        assert!(p.t_program >= Picos::from_us(100));
    }

    #[test]
    fn random_word_reads_pay_the_access_each_time() {
        let mut n = NorPram::new(NorPramParams::default());
        let a = n.read(Picos::ZERO, 0, 8);
        let b = n.read(a.end, 4096, 8);
        assert_eq!(b.end - a.end, a.end - a.start);
    }

    #[test]
    fn burst_read_spreads_across_chips() {
        let mut one = NorPram::new(NorPramParams {
            chips: 1,
            ..Default::default()
        });
        let mut many = NorPram::new(NorPramParams::default());
        let a = one.read(Picos::ZERO, 0, 4096);
        let b = many.read(Picos::ZERO, 0, 4096);
        assert!(b.end * 10 < a.end, "striping should be ~16x faster");
    }
}
