#![warn(missing_docs)]

//! # storage
//!
//! Device-level storage models sitting between the raw media crates
//! ([`flash`], [`pram`]) and the system compositions:
//!
//! * [`dram`] — the internal DRAM buffer used by conventional
//!   accelerators and SSDs (Table I's "Internal DRAM" row);
//! * [`cache`] — a page-granular LRU buffer cache that fronts any
//!   [`PageStore`]; combining it with a flash device yields the
//!   *Integrated-SLC/MLC/TLC* storage stack, combining it with a PRAM
//!   page adapter yields *PAGE-buffer*;
//! * [`ssd`] — a flash SSD (flash device + DRAM buffer + command
//!   overhead), the external storage of *Hetero*/*Heterodirect*;
//! * [`optane`] — a PRAM-based SSD à la Intel Optane, the external
//!   storage of *Hetero-PRAM*/*Heterodirect-PRAM*, which serializes
//!   block requests into byte-granular PRAM operations;
//! * [`norintf`] — the 9x-nm parallel PRAM with a serial NOR-flash
//!   interface ("NOR-intf"): byte-addressable but 16-bit serialized.

pub mod cache;
pub mod dram;
pub mod norintf;
pub mod optane;
pub mod ssd;

pub use cache::{CachedStore, PageStore};
pub use dram::DramModel;
pub use norintf::NorPram;
pub use optane::PramSsd;
pub use ssd::FlashSsd;
