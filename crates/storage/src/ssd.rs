//! An NVMe-class flash SSD: flash device + 1 GB DRAM buffer + command
//! processing overhead.
//!
//! This is the external storage of *Hetero* and *Heterodirect* (the paper
//! uses an Intel SSD 750-class device \[16\] with MLC flash). The host (or
//! the peer-to-peer DMA engine) talks to it in block requests; internally
//! a DRAM buffer absorbs re-reads and coalesces writes.

use crate::cache::{CacheStats, CachedStore};
use crate::dram::DramParams;
use flash::{CellKind, FlashDevice, FlashGeometry, FlashTiming};
use sim_core::energy::{EnergyBook, Watts};
use sim_core::fault::{domain, FaultCounters, FaultPlan};
use sim_core::mem::{Access, MemoryBackend};
use sim_core::probe::{AttrSpan, Cause, Probe};
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::time::Picos;
use sim_core::timeline::TimelineBank;
use util::rng::stream_unit;
use util::telemetry::{MetricSet, Track};

/// SSD construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsdParams {
    /// Flash cell kind (Table I: Hetero uses MLC).
    pub kind: CellKind,
    /// Flash geometry.
    pub geometry: FlashGeometry,
    /// Internal DRAM buffer capacity in pages (paper: 1 GB).
    pub buffer_pages: usize,
    /// Controller command-processing time per request.
    pub command_overhead: Picos,
    /// Concurrent command contexts in the controller.
    pub queue_depth: usize,
}

util::json_struct!(SsdParams {
    kind,
    geometry,
    buffer_pages,
    command_overhead,
    queue_depth
});

impl SsdParams {
    /// An Intel SSD 750-class MLC device with a 1 GB buffer.
    pub fn intel750() -> Self {
        SsdParams {
            kind: CellKind::Mlc,
            geometry: FlashGeometry::ssd(),
            buffer_pages: (1 << 30) / (16 * 1024),
            command_overhead: Picos::from_us(8),
            queue_depth: 32,
        }
    }

    /// The Table I external SSD scaled to the simulated page size: the
    /// accelerator-class geometry, a 64-page buffer and NVMe-class
    /// command processing. Pair with `FlashTiming::table1_scaled` so
    /// per-byte bandwidth stays at the Table I level.
    pub fn table1(kind: CellKind, page_bytes: u32) -> Self {
        SsdParams {
            kind,
            geometry: FlashGeometry::accelerator(page_bytes),
            buffer_pages: 64,
            command_overhead: Picos::from_us(3),
            queue_depth: 32,
        }
    }

    /// A small configuration for tests.
    pub fn tiny(kind: CellKind) -> Self {
        SsdParams {
            kind,
            geometry: FlashGeometry::tiny(),
            buffer_pages: 16,
            command_overhead: Picos::from_us(8),
            queue_depth: 4,
        }
    }
}

/// The SSD device.
///
/// # Examples
///
/// ```
/// use storage::ssd::{FlashSsd, SsdParams};
/// use flash::CellKind;
/// use sim_core::{MemoryBackend, Picos};
///
/// let mut ssd = FlashSsd::new(SsdParams::tiny(CellKind::Mlc));
/// let w = ssd.write(Picos::ZERO, 0, 4096);
/// let r = ssd.read(w.end, 0, 4096);
/// assert!(r.end > w.end);
/// ```
#[derive(Debug, Clone)]
pub struct FlashSsd {
    cache: CachedStore<FlashDevice>,
    params: SsdParams,
    /// Controller command contexts.
    contexts: TimelineBank,
    ctrl_energy: EnergyBook,
    requests: u64,
    /// Transient-read fault injection (when a plan is attached).
    faults: Option<SsdFaultState>,
    probe: Probe,
}

/// Runtime fault state: draws are stateless hashes of
/// `(seed, SSD_READ, request index, attempt)`, so outcomes are
/// independent of simulation order and monotone in the configured rate.
#[derive(Debug, Clone)]
struct SsdFaultState {
    seed: u64,
    rate: f64,
    max_replays: u32,
    counters: FaultCounters,
}

util::json_struct!(SsdFaultState {
    seed,
    rate,
    max_replays,
    counters
});

/// The SSD datapath's single trace lane.
const SSD_TRACK: Track = Track::new("ssd", 0);

impl FlashSsd {
    /// Builds the SSD with Table I flash timing.
    pub fn new(params: SsdParams) -> Self {
        Self::with_timing(params, FlashTiming::table1(params.kind))
    }

    /// Builds the SSD with explicit flash timing (scaled page sizes).
    pub fn with_timing(params: SsdParams, timing: FlashTiming) -> Self {
        let dev = FlashDevice::with_timing(params.geometry, params.kind, timing);
        FlashSsd {
            cache: CachedStore::new(dev, DramParams::default(), params.buffer_pages),
            contexts: TimelineBank::new(params.queue_depth),
            params,
            ctrl_energy: EnergyBook::new(),
            requests: 0,
            faults: None,
            probe: Probe::disabled(),
        }
    }

    /// Attaches a fault-injection plan. Transient read failures are
    /// replayed by the controller (bounded by the plan's retry budget)
    /// and cost time only — data is never lost.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        self.faults = Some(SsdFaultState {
            seed: plan.seed,
            rate: plan.ssd.transient_read_rate.min(1.0),
            max_replays: plan.resilience.max_retries.max(1),
            counters: FaultCounters::default(),
        });
        self
    }

    /// The fault ledger, when a plan is attached.
    pub fn fault_counters(&self) -> Option<&FaultCounters> {
        self.faults.as_ref().map(|f| &f.counters)
    }

    /// The parameters.
    pub fn params(&self) -> &SsdParams {
        &self.params
    }

    /// Buffer-cache statistics.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Runs the controller front end, returning when a command context
    /// picked the request up (queueing resolved; command processing
    /// still ahead of it).
    fn admit(&mut self, at: Picos) -> Picos {
        self.requests += 1;
        let ctx = self.contexts.first_free(at);
        let start = self
            .contexts
            .get_mut(ctx)
            .reserve(at, self.params.command_overhead);
        self.ctrl_energy.charge_power(
            "ssd.ctrl",
            Watts::from_mw(500.0),
            self.params.command_overhead,
        );
        start
    }
}

/// Image tag for [`FlashSsd`] snapshots.
const SSD_KIND: &str = "storage/ssd";
/// Schema version of [`SSD_KIND`] images.
const SSD_VERSION: u32 = 1;

impl sim_core::Snapshot for FlashSsd {
    fn snapshot(&self) -> StateImage {
        use util::json::ToJson;
        let data = util::json::Json::Obj(vec![
            (
                "cache".to_string(),
                sim_core::Snapshot::snapshot(&self.cache).to_json(),
            ),
            ("params".to_string(), self.params.to_json()),
            ("contexts".to_string(), self.contexts.to_json()),
            ("ctrl_energy".to_string(), self.ctrl_energy.to_json()),
            ("requests".to_string(), self.requests.to_json()),
            ("faults".to_string(), self.faults.to_json()),
        ]);
        StateImage::new(SSD_KIND, SSD_VERSION, data)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        use util::json::field;
        let data = image.expect(SSD_KIND, SSD_VERSION)?;
        let m = |e| SnapshotError::malformed(SSD_KIND, e);
        let cache_img: StateImage = field(data, "cache").map_err(m)?;
        sim_core::Snapshot::restore(&mut self.cache, &cache_img)?;
        self.params = field(data, "params").map_err(m)?;
        self.contexts = field(data, "contexts").map_err(m)?;
        self.ctrl_energy = field(data, "ctrl_energy").map_err(m)?;
        self.requests = field(data, "requests").map_err(m)?;
        self.faults = field(data, "faults").map_err(m)?;
        // `probe` is a runtime attachment, deliberately left untouched.
        Ok(())
    }
}

impl MemoryBackend for FlashSsd {
    fn read(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        let mut attr = if self.probe.attr_on() {
            Some(AttrSpan::new(at))
        } else {
            None
        };
        let start = self.admit(at);
        let t = start + self.params.command_overhead;
        let a = self.cache.read(t, addr, len);
        // Transient read failures: the controller replays the request
        // (command overhead + media time again) until a replay draw
        // comes back clean or the replay budget runs out, after which
        // the recovered data is returned anyway — never a wrong result.
        let mut end = a.end;
        if let Some(fs) = self.faults.as_mut() {
            let req = self.requests;
            if fs.rate > 0.0 && stream_unit(fs.seed, &[domain::SSD_READ, req, 0]) < fs.rate {
                fs.counters.injected += 1;
                fs.counters.ssd_transient_faults += 1;
                let media = a.end.saturating_sub(t);
                for attempt in 1..=u64::from(fs.max_replays) {
                    fs.counters.ssd_retries += 1;
                    end = end + self.params.command_overhead + media;
                    if stream_unit(fs.seed, &[domain::SSD_READ, req, attempt]) >= fs.rate {
                        break;
                    }
                    fs.counters.injected += 1;
                    fs.counters.ssd_transient_faults += 1;
                }
                fs.counters.retry_stall_ps += (end - a.end).as_ps();
            }
        }
        if let Some(sp) = attr.as_mut() {
            sp.advance(Cause::QueueWait, start);
            sp.advance(Cause::SoftwareStack, t);
            sp.advance(Cause::Media, a.end);
            sp.advance(Cause::RetryStall, end);
        }
        self.probe
            .span_args(SSD_TRACK, "read", at, end, &[("bytes", len as u64)]);
        self.probe.latency("ssd.read", end.saturating_sub(at));
        if let Some(sp) = &attr {
            self.probe.attr_record("ssd.read", sp);
        }
        Access { start: at, end }
    }

    fn write(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        let mut attr = if self.probe.attr_on() {
            Some(AttrSpan::new(at))
        } else {
            None
        };
        let start = self.admit(at);
        let t = start + self.params.command_overhead;
        let a = self.cache.write(t, addr, len);
        if let Some(sp) = attr.as_mut() {
            sp.advance(Cause::QueueWait, start);
            sp.advance(Cause::SoftwareStack, t);
            sp.advance(Cause::Media, a.end);
        }
        self.probe
            .span_args(SSD_TRACK, "write", at, a.end, &[("bytes", len as u64)]);
        self.probe.latency("ssd.write", a.end.saturating_sub(at));
        if let Some(sp) = &attr {
            self.probe.attr_record("ssd.write", sp);
        }
        Access {
            start: at,
            end: a.end,
        }
    }

    fn energy(&self) -> EnergyBook {
        let mut e = self.ctrl_energy.clone();
        e.merge(&self.cache.energy());
        e
    }

    fn label(&self) -> &'static str {
        match self.params.kind {
            CellKind::Slc => "ssd-slc",
            CellKind::Mlc => "ssd-mlc",
            CellKind::Tlc => "ssd-tlc",
        }
    }

    fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    fn probe(&self) -> &Probe {
        &self.probe
    }

    fn collect_metrics(&self, out: &mut MetricSet) {
        // The internal buffer cache reports under `ssd.` so it never
        // collides with an accelerator-side page cache in the same
        // system.
        out.add("ssd.requests", self.requests);
        out.add("ssd.buffer_hits", self.cache.stats().hits);
        out.add("ssd.buffer_misses", self.cache.stats().misses);
        out.add("ssd.buffer_writebacks", self.cache.stats().writebacks);
        if let Some(fs) = &self.faults {
            out.add("fault.injected", fs.counters.injected);
            out.add("ssd.transient_faults", fs.counters.ssd_transient_faults);
            out.add("ssd.retries", fs.counters.ssd_retries);
            out.add("ssd.retry_stall_ns", fs.counters.retry_stall_ps / 1000);
        }
    }

    fn collect_faults(&self, out: &mut FaultCounters) {
        if let Some(fs) = &self.faults {
            out.merge(&fs.counters);
        }
    }

    fn snapshot_state(&self) -> Result<StateImage, SnapshotError> {
        Ok(sim_core::Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        sim_core::Snapshot::restore(self, image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_pays_flash_hot_read_pays_dram() {
        let mut ssd = FlashSsd::new(SsdParams::tiny(CellKind::Mlc));
        let cold = ssd.read(Picos::ZERO, 0, 4096);
        let cold_lat = cold.end;
        // MLC tR 50 us + transfer + command overhead.
        assert!(cold_lat > Picos::from_us(50), "{cold_lat}");
        let hot = ssd.read(cold.end, 0, 4096);
        let hot_lat = hot.end - cold.end;
        assert!(hot_lat < Picos::from_us(15), "{hot_lat}");
    }

    #[test]
    fn command_overhead_always_charged() {
        let mut ssd = FlashSsd::new(SsdParams::tiny(CellKind::Slc));
        ssd.read(Picos::ZERO, 0, 64);
        let a = ssd.read(Picos::from_ms(1), 0, 64);
        assert!(a.end - Picos::from_ms(1) >= ssd.params().command_overhead);
        assert_eq!(ssd.requests(), 2);
    }

    #[test]
    fn buffered_writes_are_fast_until_eviction() {
        let mut ssd = FlashSsd::new(SsdParams::tiny(CellKind::Mlc));
        let a = ssd.write(Picos::ZERO, 0, 4096);
        // Absorbs into the buffer after one page fetch (RMW).
        let b = ssd.write(a.end, 0, 4096);
        assert!(b.end - a.end < Picos::from_us(10), "{:?}", b.end - a.end);
    }

    #[test]
    fn transient_read_faults_cost_time_only() {
        let plan = FaultPlan {
            ssd: sim_core::fault::SsdFaults {
                transient_read_rate: 0.5,
            },
            ..Default::default()
        };
        let mut clean = FlashSsd::new(SsdParams::tiny(CellKind::Mlc));
        let mut faulty = FlashSsd::new(SsdParams::tiny(CellKind::Mlc)).with_faults(&plan);
        let mut inert =
            FlashSsd::new(SsdParams::tiny(CellKind::Mlc)).with_faults(&FaultPlan::default());
        let (mut tc, mut tf, mut ti) = (Picos::ZERO, Picos::ZERO, Picos::ZERO);
        for i in 0..16u64 {
            tc = clean.read(tc, i * 512, 512).end;
            tf = faulty.read(tf, i * 512, 512).end;
            ti = inert.read(ti, i * 512, 512).end;
        }
        assert!(tf > tc, "replays must cost time: {tf} vs {tc}");
        assert_eq!(ti, tc, "an inert plan must not change timing");
        assert!(inert.fault_counters().unwrap().is_zero());
        let f = *faulty.fault_counters().unwrap();
        assert!(f.ssd_transient_faults > 0 && f.ssd_retries > 0, "{f:?}");
        let mut m = MetricSet::new();
        faulty.collect_metrics(&mut m);
        assert_eq!(m.counter("ssd.retries"), Some(f.ssd_retries));
        let mut ledger = FaultCounters::default();
        faulty.collect_faults(&mut ledger);
        assert_eq!(ledger, f);
    }

    #[test]
    fn energy_ledger_spans_ctrl_dram_flash() {
        let mut ssd = FlashSsd::new(SsdParams::tiny(CellKind::Mlc));
        ssd.read(Picos::ZERO, 0, 4096);
        let e = ssd.energy();
        assert!(e.energy_of("ssd.ctrl").as_pj() > 0.0);
        assert!(e.energy_of("flash.read").as_pj() > 0.0);
        assert!(e.energy_of("dram.access").as_pj() > 0.0);
    }
}
